"""Unit tests for the set-associative cache."""

import pytest

from repro.cpu.cache import Cache
from repro.errors import ConfigError


@pytest.fixture
def cache():
    return Cache(size_bytes=1024, assoc=2, line_bytes=64)  # 8 sets


def test_cold_miss_then_hit(cache):
    hit, victim = cache.access(0, is_write=False)
    assert not hit and victim is None
    hit, _ = cache.access(0, is_write=False)
    assert hit
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_same_line_different_offset_hits(cache):
    cache.access(0, False)
    hit, _ = cache.access(63, False)
    assert hit


def test_adjacent_lines_are_different(cache):
    cache.access(0, False)
    hit, _ = cache.access(64, False)
    assert not hit


def test_lru_eviction_order(cache):
    # Set 0 holds line addresses 0, 512 (8 sets x 64B).  Fill both ways.
    stride = cache.num_sets * cache.line_bytes
    cache.access(0 * stride, False)
    cache.access(1 * stride, False)
    cache.access(0 * stride, False)  # touch way 0: now MRU
    cache.access(2 * stride, False)  # evicts way 1 (LRU)
    assert cache.probe(0 * stride)
    assert not cache.probe(1 * stride)
    assert cache.probe(2 * stride)


def test_dirty_eviction_reports_victim_address(cache):
    stride = cache.num_sets * cache.line_bytes
    cache.access(0, is_write=True)
    cache.access(stride, False)
    _, victim = cache.access(2 * stride, False)
    assert victim == 0
    assert cache.stats.writebacks == 1


def test_clean_eviction_no_writeback(cache):
    stride = cache.num_sets * cache.line_bytes
    cache.access(0, False)
    cache.access(stride, False)
    _, victim = cache.access(2 * stride, False)
    assert victim is None


def test_write_hit_marks_dirty(cache):
    stride = cache.num_sets * cache.line_bytes
    cache.access(0, False)
    cache.access(0, True)  # hit, now dirty
    cache.access(stride, False)
    _, victim = cache.access(2 * stride, False)
    assert victim == 0


def test_miss_rate(cache):
    cache.access(0, False)
    cache.access(0, False)
    cache.access(64, False)
    assert cache.stats.miss_rate == pytest.approx(2 / 3)


def test_probe_does_not_touch_stats(cache):
    cache.access(0, False)
    before = cache.stats.accesses
    cache.probe(0)
    cache.probe(4096)
    assert cache.stats.accesses == before


def test_invalidate_all(cache):
    cache.access(0, False)
    cache.invalidate_all()
    assert not cache.probe(0)
    assert cache.occupied_lines == 0


def test_occupancy_capped_by_capacity(cache):
    for i in range(100):
        cache.access(i * 64, False)
    assert cache.occupied_lines <= 16  # 8 sets x 2 ways


def test_config_validation():
    with pytest.raises(ConfigError):
        Cache(size_bytes=0, assoc=2)
    with pytest.raises(ConfigError):
        Cache(size_bytes=1000, assoc=3, line_bytes=64)  # not divisible
    with pytest.raises(ConfigError):
        Cache(size_bytes=64 * 3 * 2, assoc=2, line_bytes=64)  # 3 sets
