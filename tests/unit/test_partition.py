"""Unit tests for the Algorithm 2 partitioning allocator."""

import itertools
import pytest

from repro.config.dram_configs import DramOrganization
from repro.dram.address import AddressMapping
from repro.errors import OutOfMemoryError
from repro.os.page import PhysicalMemory
from repro.os.partition import PartitioningAllocator, PartitionPolicy
from repro.os.task import Task


def build(policy=PartitionPolicy.SOFT, rows_per_bank=8):
    mapping = AddressMapping(DramOrganization(), total_rows_per_bank=rows_per_bank)
    memory = PhysicalMemory(mapping)
    return memory, PartitioningAllocator(memory, policy)


_ids = itertools.count()


def make_task(banks=None, name="t"):
    return Task(name, workload=None,
                possible_banks=frozenset(banks) if banks is not None else None,
                task_id=next(_ids))


class TestUnpartitioned:
    def test_none_policy_ignores_bank_vector(self):
        memory, allocator = build(PartitionPolicy.NONE)
        task = make_task(banks={0})
        for _ in range(4):
            allocator.alloc_page(task)
        # Bank-oblivious: consecutive buddy frames stripe across banks.
        assert len(task.pages_per_bank) == 4

    def test_frames_claimed_in_memory(self):
        memory, allocator = build(PartitionPolicy.NONE)
        task = make_task()
        frame = allocator.alloc_page(task)
        assert memory.owner(frame) == task.task_id


class TestPartitionedAllocation:
    def test_pages_land_only_in_allowed_banks(self):
        memory, allocator = build()
        task = make_task(banks={2, 5, 11})
        for _ in range(12):
            allocator.alloc_page(task)
        assert set(task.pages_per_bank) <= {2, 5, 11}

    def test_round_robin_across_allowed_banks(self):
        memory, allocator = build()
        task = make_task(banks={1, 4, 9})
        banks = [
            memory.bank_of_frame(allocator.alloc_page(task)) for _ in range(6)
        ]
        # lastAllocedBank rotation: consecutive allocations hit different
        # banks, cycling through the allowed set (Algorithm 2 lines 10-11).
        assert banks == [1, 4, 9, 1, 4, 9]

    def test_per_bank_cache_fills_and_hits(self):
        memory, allocator = build()
        task = make_task(banks={3})
        allocator.alloc_page(task)
        # Pulling from buddy passed through banks 0..2 -> cached.
        assert allocator.cache_fills >= 3
        before = allocator.cache_hits
        other = make_task(banks={0})
        allocator.alloc_page(other)
        assert allocator.cache_hits == before + 1  # served from the cache

    def test_soft_spills_when_partition_full(self):
        memory, allocator = build(rows_per_bank=4)
        task = make_task(banks={0})  # only 4 frames allowed
        for _ in range(6):
            allocator.alloc_page(task)
        assert task.pages_per_bank[0] == 4
        assert allocator.spills == 2
        assert sum(task.pages_per_bank.values()) == 6

    def test_hard_raises_when_partition_full(self):
        memory, allocator = build(PartitionPolicy.HARD, rows_per_bank=4)
        task = make_task(banks={0})
        for _ in range(4):
            allocator.alloc_page(task)
        with pytest.raises(OutOfMemoryError):
            allocator.alloc_page(task)

    def test_true_oom_even_soft(self):
        memory, allocator = build(rows_per_bank=2)  # 32 frames total
        task = make_task(banks={0})
        for _ in range(32):
            allocator.alloc_page(task)
        with pytest.raises(OutOfMemoryError):
            allocator.alloc_page(task)


class TestFootprintHelpers:
    def test_alloc_footprint_counts(self):
        memory, allocator = build()
        task = make_task(banks={0, 1})
        assert allocator.alloc_footprint(task, 10) == 10
        assert len(task.frames) == 10

    def test_alloc_footprint_stops_at_hard_limit(self):
        memory, allocator = build(PartitionPolicy.HARD, rows_per_bank=4)
        task = make_task(banks={0})
        assert allocator.alloc_footprint(task, 10) == 4

    def test_free_task_returns_everything(self):
        memory, allocator = build()
        task = make_task(banks={0, 8})
        allocator.alloc_footprint(task, 12)
        free_before = allocator.free_frames()
        allocator.free_task(task)
        assert allocator.free_frames() == free_before + 12
        assert task.frames == []
        assert memory.used_frames() == 0

    def test_free_frames_counts_cached_pages(self):
        memory, allocator = build()
        task = make_task(banks={7})
        allocator.alloc_page(task)
        # Total free = buddy free + cached; one frame allocated.
        assert allocator.free_frames() == memory.total_frames - 1


class TestSharedSoftPartitions:
    def test_two_tasks_share_bank_group(self):
        memory, allocator = build()
        a = make_task(banks={2, 3}, name="a")
        b = make_task(banks={2, 3}, name="b")
        allocator.alloc_footprint(a, 6)
        allocator.alloc_footprint(b, 6)
        assert set(a.pages_per_bank) <= {2, 3}
        assert set(b.pages_per_bank) <= {2, 3}
        # No frame shared.
        assert not (set(a.frames) & set(b.frames))
