"""Unit tests for subarray-granularity refresh (Section 7 extension)."""

import pytest

from repro.config.dram_configs import DramOrganization
from repro.config.system_configs import default_system_config
from repro.core.engine import Engine
from repro.dram.address import AddressMapping, DramCoordinate
from repro.dram.bank import Bank, ChannelBus, Rank
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest, RequestType
from repro.dram.timing import DramTiming
from repro.errors import ConfigError


@pytest.fixture
def timing():
    return DramTiming.from_config(default_system_config(refresh_scale=1024))


def make_request(row, arrive=0):
    coord = DramCoordinate(channel=0, rank=0, bank=0, row=row, column=0)
    req = MemoryRequest(RequestType.READ, 0, coord)
    req.arrive_time = arrive
    return req


def make_bank(num_subarrays=4, rows=64):
    return Bank(0, 0, 0, 0, num_subarrays=num_subarrays, rows_per_bank=rows)


class TestSubarrayMapping:
    def test_rows_partition_into_contiguous_subarrays(self):
        bank = make_bank(num_subarrays=4, rows=64)
        assert bank.subarray_of_row(0) == 0
        assert bank.subarray_of_row(15) == 0
        assert bank.subarray_of_row(16) == 1
        assert bank.subarray_of_row(63) == 3

    def test_single_subarray_everything_is_zero(self):
        bank = make_bank(num_subarrays=1, rows=64)
        assert bank.subarray_of_row(63) == 0

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            DramOrganization(subarrays_per_bank=0).validate()


class TestSubarrayRefreshBlocking:
    def test_blocks_only_the_refreshing_subarray(self, timing):
        bank, rank, bus = make_bank(), Rank(0, 0), ChannelBus()
        end = bank.begin_refresh(0, timing.trfc_pb, subarray=0)
        # Row 5 is in subarray 0 -> blocked.
        blocked = bank.service(make_request(row=5), 0, timing, rank, bus)
        assert blocked.cas_time >= end
        # Row 40 is in subarray 2 -> unaffected (fresh bank for clean timing).
        bank2, rank2, bus2 = make_bank(), Rank(0, 0), ChannelBus()
        bank2.begin_refresh(0, timing.trfc_pb, subarray=0)
        free = bank2.service(make_request(row=40), 0, timing, rank2, bus2)
        assert free.finish < end

    def test_stall_attribution_for_subarray_block(self, timing):
        bank, rank, bus = make_bank(), Rank(0, 0), ChannelBus()
        end = bank.begin_refresh(0, 1000, subarray=1)
        req = make_request(row=20, arrive=100)  # subarray 1
        bank.service(req, 100, timing, rank, bus)
        assert req.refresh_stall == 900

    def test_open_row_in_other_subarray_survives(self, timing):
        bank, rank, bus = make_bank(), Rank(0, 0), ChannelBus()
        bank.service(make_request(row=40), 0, timing, rank, bus)  # subarray 2
        bank.begin_refresh(10_000, 500, subarray=0)
        assert bank.open_row == 40

    def test_open_row_in_refreshing_subarray_closed(self, timing):
        bank, rank, bus = make_bank(), Rank(0, 0), ChannelBus()
        bank.service(make_request(row=5), 0, timing, rank, bus)  # subarray 0
        bank.begin_refresh(10_000, 500, subarray=0)
        assert bank.open_row is None

    def test_full_bank_refresh_still_blocks_everything(self, timing):
        bank, rank, bus = make_bank(), Rank(0, 0), ChannelBus()
        end = bank.begin_refresh(0, timing.trfc_pb)  # no subarray arg
        service = bank.service(make_request(row=40), 0, timing, rank, bus)
        assert service.cas_time >= end


class TestSchedulerIntegration:
    def build(self, scheduler_name):
        from repro.dram.refresh import make_scheduler

        config = default_system_config(
            refresh_scale=1024,
            organization=DramOrganization(subarrays_per_bank=8),
        )
        timing = DramTiming.from_config(config)
        engine = Engine()
        mapping = AddressMapping(config.organization, total_rows_per_bank=64)
        mc = MemoryController(engine, timing, config.organization, mapping)
        sched = make_scheduler(scheduler_name)
        sched.attach(mc, engine, timing)
        return engine, timing, mc, sched

    @pytest.mark.parametrize("name", ["same_bank", "per_bank"])
    def test_subarray_refresh_walks_all_subarrays(self, name):
        engine, timing, mc, sched = self.build(name)
        seen = set()
        original = mc.refresh_bank

        def spy(channel, rank, bank, trfc, subarray=None):
            seen.add(subarray)
            return original(channel, rank, bank, trfc, subarray=subarray)

        mc.refresh_bank = spy
        sched.start()
        engine.run_until(timing.trefw - 1)
        assert None not in seen
        assert seen == set(range(8))

    def test_subarray_mode_reduces_refresh_stalls_end_to_end(self):
        from repro import run_simulation

        common = dict(num_windows=1.0, warmup_windows=0.25, refresh_scale=512)
        plain = run_simulation("WL-1", "per_bank", **common)
        salp = run_simulation(
            "WL-1",
            "per_bank",
            organization=DramOrganization(subarrays_per_bank=8),
            **common,
        )
        assert salp.refresh_stalled_reads < plain.refresh_stalled_reads
        assert salp.hmean_ipc >= plain.hmean_ipc
