"""Unit tests for the address mapping."""

import pytest

from repro.config.dram_configs import DramOrganization
from repro.dram.address import AddressMapping, DramCoordinate
from repro.errors import AddressMapError


@pytest.fixture
def mapping():
    return AddressMapping(DramOrganization(), total_rows_per_bank=64)


def test_total_frames(mapping):
    assert mapping.total_frames == 1 * 2 * 8 * 64
    assert mapping.total_bytes == mapping.total_frames * 4096


def test_consecutive_frames_stripe_across_banks(mapping):
    # The DRAM-oblivious layout: frames 0..7 land in banks 0..7 of rank 0.
    banks = [mapping.frame_to_coordinate(f).bank for f in range(8)]
    assert banks == list(range(8))
    # Frame 8 wraps to bank 0 of the next rank.
    coord = mapping.frame_to_coordinate(8)
    assert (coord.rank, coord.bank) == (1, 0)


def test_frame_roundtrip(mapping):
    for frame in range(0, mapping.total_frames, 13):
        coord = mapping.frame_to_coordinate(frame)
        assert mapping.coordinate_to_frame(coord) == frame


def test_frame_out_of_range(mapping):
    with pytest.raises(AddressMapError):
        mapping.frame_to_coordinate(mapping.total_frames)
    with pytest.raises(AddressMapError):
        mapping.frame_to_coordinate(-1)


def test_address_decodes_column(mapping):
    address = mapping.frame_offset_to_address(5, 3 * 64)
    coord = mapping.address_to_coordinate(address)
    assert coord.column == 3
    assert coord.bank == mapping.frame_to_coordinate(5).bank


def test_address_out_of_range(mapping):
    with pytest.raises(AddressMapError):
        mapping.address_to_coordinate(mapping.total_bytes)


def test_offset_out_of_page(mapping):
    with pytest.raises(AddressMapError):
        mapping.frame_offset_to_address(0, 4096)


def test_flat_bank_index_roundtrip(mapping):
    for flat in range(16):
        channel, rank, bank = mapping.unflatten_bank_index(flat)
        assert mapping.flat_bank_index(channel, rank, bank) == flat


def test_flat_bank_order_is_rank_major(mapping):
    # Flat banks 0..7 = rank 0, 8..15 = rank 1 (matches stretch order).
    assert mapping.unflatten_bank_index(0) == (0, 0, 0)
    assert mapping.unflatten_bank_index(7) == (0, 0, 7)
    assert mapping.unflatten_bank_index(8) == (0, 1, 0)
    assert mapping.unflatten_bank_index(15) == (0, 1, 7)


def test_bank_of_flat_index(mapping):
    assert mapping.bank_of_flat_index(3) == 3
    assert mapping.bank_of_flat_index(11) == 3


def test_frame_to_bank_index_consistency(mapping):
    for frame in range(0, mapping.total_frames, 7):
        coord = mapping.frame_to_coordinate(frame)
        assert mapping.frame_to_bank_index(frame) == mapping.flat_bank_index(
            coord.channel, coord.rank, coord.bank
        )


def test_frames_distribute_evenly_across_banks(mapping):
    counts = {}
    for frame in range(mapping.total_frames):
        counts[mapping.frame_to_bank_index(frame)] = (
            counts.get(mapping.frame_to_bank_index(frame), 0) + 1
        )
    assert len(counts) == 16
    assert set(counts.values()) == {64}


def test_unflatten_out_of_range(mapping):
    with pytest.raises(AddressMapError):
        mapping.unflatten_bank_index(16)


def test_multi_channel_layout():
    mapping = AddressMapping(
        DramOrganization(channels=2), total_rows_per_bank=16
    )
    # Consecutive frames alternate channels first.
    assert mapping.frame_to_coordinate(0).channel == 0
    assert mapping.frame_to_coordinate(1).channel == 1
    assert mapping.frame_to_coordinate(2).bank == 1


def test_coordinate_validation():
    mapping = AddressMapping(DramOrganization(), total_rows_per_bank=4)
    with pytest.raises(AddressMapError):
        mapping.coordinate_to_frame(
            DramCoordinate(channel=0, rank=0, bank=0, row=4, column=0)
        )
