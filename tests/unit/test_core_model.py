"""Unit tests for the interval core model (MLP, ROB, context switches)."""


import pytest

from repro.config.dram_configs import DramOrganization
from repro.config.system_configs import default_system_config
from repro.core.engine import Engine
from repro.cpu.core import Core
from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.timing import DramTiming
from repro.os.task import Task
from repro.workloads.benchmark import MemAccess


class ScriptedWorkload:
    """Deterministic workload for driving the core in tests."""

    def __init__(self, accesses, mlp=2, name="scripted"):
        self.accesses = list(accesses)
        self.mlp = mlp
        self.name = name
        self._i = 0

    def next_access(self, task) -> MemAccess:
        access = self.accesses[self._i % len(self.accesses)]
        self._i += 1
        return access


@pytest.fixture
def setup():
    config = default_system_config(refresh_scale=1024)
    timing = DramTiming.from_config(config)
    engine = Engine()
    org = DramOrganization()
    mapping = AddressMapping(org, total_rows_per_bank=64)
    mc = MemoryController(engine, timing, org, mapping)
    return engine, mapping, mc, timing


def make_task(workload) -> Task:
    import random

    task = Task("t", workload, task_id=0)
    task.rng = random.Random(7)
    return task


def address(mapping, frame, column=0):
    return mapping.frame_offset_to_address(frame, column * 64)


def test_compute_only_task_credits_instructions(setup):
    engine, mapping, mc, _ = setup
    workload = ScriptedWorkload([MemAccess(100, 50, None)])
    task = make_task(workload)
    core = Core(0, engine, mc)
    core.run_task(task)
    engine.run_until(500)
    core.preempt()
    # 10 gaps of 50 cycles = 500 cycles -> 1000 instructions.
    assert task.stats.instructions == pytest.approx(1000, abs=100)
    assert task.stats.scheduled_cycles == 500
    assert task.stats.reads_issued == 0


def test_memory_task_issues_requests(setup):
    engine, mapping, mc, _ = setup
    workload = ScriptedWorkload([MemAccess(10, 20, address(mapping, 0))])
    task = make_task(workload)
    core = Core(0, engine, mc)
    core.run_task(task)
    engine.run_until(5_000)
    core.preempt()
    assert task.stats.reads_issued > 0
    assert task.stats.reads_completed > 0
    assert task.stats.avg_read_latency > 0


def test_mlp_limits_outstanding(setup):
    engine, mapping, mc, _ = setup
    # Huge memory latency exposure: all to one bank row-conflicts.
    accesses = [
        MemAccess(1, 1, address(mapping, 0)),
        MemAccess(1, 1, address(mapping, 16)),
    ]
    workload = ScriptedWorkload(accesses, mlp=2)
    task = make_task(workload)
    core = Core(0, engine, mc)
    core.run_task(task)
    engine.run_until(50)
    # With mlp=2 only two requests can be in flight this early.
    assert task.stats.reads_issued <= 2
    assert task.stats.mlp_stalls >= 1


def test_rob_blocks_front_end(setup):
    engine, mapping, mc, _ = setup
    # Each miss carries a 100-instruction gap; ROB of 128 allows only ~1
    # outstanding miss beyond the head even though MLP is 8.
    workload = ScriptedWorkload([MemAccess(100, 10, address(mapping, 0))], mlp=8)
    task = make_task(workload)
    core = Core(0, engine, mc, rob_entries=128)
    core.run_task(task)
    engine.run_until(30)
    assert task.stats.reads_issued <= 3


def test_large_rob_allows_more_mlp(setup):
    engine, mapping, mc, _ = setup
    issued = {}
    for rob in (128, 4096):
        workload = ScriptedWorkload(
            [MemAccess(100, 10, address(mapping, 0))], mlp=8
        )
        task = make_task(workload)
        core = Core(0, Engine(), mc, rob_entries=rob)
        # fresh engine per run to keep timing isolated
        eng = core.engine
        mc2 = MemoryController(eng, mc.timing, mc.org, mc.mapping)
        core.controller = mc2
        core.run_task(task)
        eng.run_until(60)
        issued[rob] = task.stats.reads_issued
    assert issued[4096] > issued[128]


def test_preempt_credits_partial_gap(setup):
    engine, mapping, mc, _ = setup
    workload = ScriptedWorkload([MemAccess(1000, 1000, None)])
    task = make_task(workload)
    core = Core(0, engine, mc)
    core.run_task(task)
    engine.run_until(500)  # halfway through the first gap
    core.preempt()
    assert task.stats.instructions == pytest.approx(500, abs=5)


def test_preempt_rounding_credits_half_up(setup):
    """Regression: a 3-instruction gap preempted halfway credits 2
    instructions (1.5 rounded half-up); bare int() used to truncate to 1."""
    engine, mapping, mc, _ = setup
    workload = ScriptedWorkload([MemAccess(3, 1000, None)])
    task = make_task(workload)
    core = Core(0, engine, mc)
    core.run_task(task)
    engine.run_until(500)
    core.preempt()
    assert task.stats.instructions == 2


def test_compute_chain_fast_forward_credits_exactly(setup):
    """Folded compute chains process far fewer events but credit exactly
    the instructions the one-event-per-gap schedule credited."""
    engine, mapping, mc, _ = setup
    workload = ScriptedWorkload([MemAccess(100, 50, None)])
    task = make_task(workload)
    core = Core(0, engine, mc)
    core.run_task(task)
    engine.run_until(50 * 1000)  # 1000 gaps
    core.preempt()
    assert task.stats.instructions == 100 * 1000
    assert engine.events_processed < 40  # ~1 event per 65 folded gaps


def test_sync_accounting_matches_per_gap_credit(setup):
    engine, mapping, mc, _ = setup
    workload = ScriptedWorkload([MemAccess(100, 50, None)])
    task = make_task(workload)
    core = Core(0, engine, mc)
    core.run_task(task)
    engine.run_until(125)  # halfway through the third gap
    core.sync_accounting()
    # Only the two fully elapsed gaps are credited; the in-progress gap
    # is left to preemption proration, exactly like the unfolded schedule.
    assert task.stats.instructions == 200


def test_fast_forward_respects_quantum_boundary(setup):
    engine, mapping, mc, _ = setup
    workload = ScriptedWorkload([MemAccess(10, 100, None)])
    task = make_task(workload)
    core = Core(0, engine, mc)
    core.run_task(task, quantum_end=350)
    # Gaps end at 100/200/300/400...; only those strictly inside the
    # quantum are folded, plus the one in-flight crossing access.
    assert workload._i == 4


def test_preempt_and_resume_roundtrip(setup):
    engine, mapping, mc, _ = setup
    workload = ScriptedWorkload([MemAccess(10, 20, address(mapping, 1))])
    task = make_task(workload)
    core = Core(0, engine, mc)
    core.run_task(task)
    engine.run_until(1_000)
    returned = core.preempt()
    assert returned is task
    assert core.is_idle
    engine.run_until(2_000)
    issued_before = task.stats.reads_issued
    core.run_task(task)
    engine.run_until(3_000)
    core.preempt()
    assert task.stats.reads_issued > issued_before
    assert task.stats.scheduled_cycles == 2_000


def test_stale_completions_ignored_after_switch(setup):
    engine, mapping, mc, _ = setup
    workload_a = ScriptedWorkload([MemAccess(1, 1, address(mapping, 0))], mlp=4)
    workload_b = ScriptedWorkload([MemAccess(50, 100, None)])
    a, b = make_task(workload_a), make_task(workload_b)
    core = Core(0, engine, mc)
    core.run_task(a)
    engine.run_until(3)  # a has requests in flight
    core.preempt()
    core.run_task(b)
    engine.run_until(10_000)  # a's completions arrive while b runs
    core.preempt()
    # b was never blocked or corrupted by a's stale completions.
    assert b.stats.instructions > 0
    assert a.stats.reads_completed > 0  # stale completions still recorded


def test_idle_core_accumulates_idle_cycles(setup):
    engine, mapping, mc, _ = setup
    core = Core(0, engine, mc)
    core.run_task(None)
    engine.run_until(100)
    workload = ScriptedWorkload([MemAccess(10, 10, None)])
    task = make_task(workload)
    core._epoch += 0  # no-op; just ensure attribute exists
    core.current_task = None
    core.run_task(task)
    assert core.idle_cycles == 100


def test_double_run_task_raises(setup):
    from repro.errors import SimulationError

    engine, mapping, mc, _ = setup
    workload = ScriptedWorkload([MemAccess(10, 10, None)])
    core = Core(0, engine, mc)
    core.run_task(make_task(workload))
    with pytest.raises(SimulationError):
        core.run_task(make_task(workload))
