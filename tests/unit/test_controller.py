"""Unit tests for the memory controller (FR-FCFS, drain, refresh entry)."""

import pytest

from repro.config.dram_configs import DramOrganization
from repro.config.system_configs import default_system_config
from repro.core.engine import Engine
from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest, RequestType
from repro.dram.timing import DramTiming


@pytest.fixture
def timing():
    return DramTiming.from_config(default_system_config(refresh_scale=1024))


@pytest.fixture
def setup(timing):
    engine = Engine()
    org = DramOrganization()
    mapping = AddressMapping(org, total_rows_per_bank=64)
    mc = MemoryController(engine, timing, org, mapping)
    return engine, mapping, mc


def read_to(mapping, frame, column=0, on_complete=None):
    address = mapping.frame_offset_to_address(frame, column * 64)
    return MemoryRequest(
        RequestType.READ, address, mapping.address_to_coordinate(address),
        on_complete=on_complete,
    )


def write_to(mapping, frame, column=0):
    address = mapping.frame_offset_to_address(frame, column * 64)
    return MemoryRequest(
        RequestType.WRITE, address, mapping.address_to_coordinate(address)
    )


def test_single_read_completes_with_callback(setup, timing):
    engine, mapping, mc = setup
    done = []
    mc.enqueue(read_to(mapping, 0, on_complete=lambda r: done.append(r)))
    engine.run_until(100_000)
    assert len(done) == 1
    req = done[0]
    assert req.finish_time == timing.tRCD + timing.tCL + timing.tBL
    assert req.latency == req.finish_time
    assert mc.stats.reads_completed == 1


def test_row_hit_prioritized_over_older_conflict(setup, timing):
    engine, mapping, mc = setup
    order = []
    # Frames 0 and 16 share bank 0 (16 banks): rows 0 and 1.
    first = read_to(mapping, 0, on_complete=lambda r: order.append("row0"))
    conflict = read_to(mapping, 16, on_complete=lambda r: order.append("row1"))
    hit = read_to(mapping, 0, 5, on_complete=lambda r: order.append("row0hit"))
    mc.enqueue(first)
    mc.enqueue(conflict)
    mc.enqueue(hit)
    engine.run_until(100_000)
    # FR-FCFS: the hit to the open row jumps the older conflict.
    assert order == ["row0", "row0hit", "row1"]


def test_requests_to_different_banks_overlap(setup, timing):
    engine, mapping, mc = setup
    finishes = {}
    for frame in (0, 1):  # banks 0 and 1
        mc.enqueue(
            read_to(
                mapping, frame,
                on_complete=lambda r, f=frame: finishes.__setitem__(f, r.finish_time),
            )
        )
    engine.run_until(100_000)
    serial = 2 * (timing.tRCD + timing.tCL + timing.tBL)
    assert max(finishes.values()) < serial


def test_same_bank_requests_serialize_on_bank(setup, timing):
    engine, mapping, mc = setup
    finishes = []
    for column in (0, 1):
        mc.enqueue(
            read_to(mapping, 0, column,
                    on_complete=lambda r: finishes.append(r.finish_time))
        )
    engine.run_until(100_000)
    assert finishes[1] >= finishes[0] + timing.tBL


def test_write_queue_drain_mode(setup, timing):
    engine, mapping, mc = setup
    # Fill past the high watermark -> drain engages.
    for i in range(mc.write_drain_high):
        mc.enqueue(write_to(mapping, i % 32, i // 32))
    assert mc.drain_mode
    engine.run_until(2_000_000)
    assert not mc.drain_mode
    assert mc.stats.writes_completed == mc.write_drain_high
    assert mc.write_count == 0


def test_drain_prioritizes_writes_over_reads(setup, timing):
    engine, mapping, mc = setup
    order = []
    for i in range(mc.write_drain_high):
        mc.enqueue(write_to(mapping, i % 16))
    assert mc.drain_mode
    mc.enqueue(read_to(mapping, 0, 7, on_complete=lambda r: order.append("read")))
    engine.run_until(3_000_000)
    assert order == ["read"]
    # The read completed but writes on its bank went first while draining.
    assert mc.stats.writes_completed == mc.write_drain_high


def test_opportunistic_write_when_no_reads(setup):
    engine, mapping, mc = setup
    mc.enqueue(write_to(mapping, 3))
    assert not mc.drain_mode
    engine.run_until(100_000)
    assert mc.stats.writes_completed == 1


def test_refresh_bank_blocks_only_that_bank(setup, timing):
    engine, mapping, mc = setup
    end = mc.refresh_bank(0, 0, 0, timing.trfc_pb)
    finishes = {}
    mc.enqueue(read_to(mapping, 0, on_complete=lambda r: finishes.__setitem__(0, r)))
    mc.enqueue(read_to(mapping, 1, on_complete=lambda r: finishes.__setitem__(1, r)))
    engine.run_until(200_000)
    assert finishes[0].start_time >= end  # bank 0 waited
    assert finishes[1].finish_time < end  # bank 1 unaffected
    assert finishes[0].refresh_stall > 0


def test_refresh_rank_blocks_all_banks_in_rank(setup, timing):
    engine, mapping, mc = setup
    end = mc.refresh_rank(0, 0, timing.trfc_ab)
    finishes = {}
    mc.enqueue(read_to(mapping, 0, on_complete=lambda r: finishes.__setitem__("r0", r)))
    # Frame 8 -> rank 1 bank 0 (other rank, unaffected).
    mc.enqueue(read_to(mapping, 8, on_complete=lambda r: finishes.__setitem__("r1", r)))
    engine.run_until(200_000)
    assert finishes["r0"].start_time >= end
    assert finishes["r1"].finish_time < end
    assert mc.stats.rank_refreshes == 1


def test_refresh_waits_for_open_row_precharge(setup, timing):
    engine, mapping, mc = setup
    done = []
    mc.enqueue(read_to(mapping, 0, on_complete=lambda r: done.append(r)))
    engine.run_until(10)  # the read has been scheduled (row open)
    end = mc.refresh_bank(0, 0, 0, timing.trfc_pb)
    # Refresh must start after the in-flight activate's tRAS + tRP.
    assert end >= timing.tRAS + timing.tRP + timing.trfc_pb


def test_queued_requests_per_bank(setup):
    engine, mapping, mc = setup
    for _ in range(3):
        mc.enqueue(read_to(mapping, 2))  # bank 2
    mc.enqueue(write_to(mapping, 5))  # bank 5
    counts = mc.queued_requests_per_bank()
    # One read may already have been issued by the time we look.
    assert counts[2] >= 2
    assert counts[5] >= 0
    assert sum(counts) >= 3


def test_admission_helpers(setup):
    engine, mapping, mc = setup
    assert mc.can_accept_read()
    assert mc.can_accept_write()
    mc.read_count = mc.read_queue_depth
    assert not mc.can_accept_read()


def test_stats_row_hit_rate(setup):
    engine, mapping, mc = setup
    done = []
    mc.enqueue(read_to(mapping, 0, 0, on_complete=lambda r: done.append(r)))
    mc.enqueue(read_to(mapping, 0, 1, on_complete=lambda r: done.append(r)))
    engine.run_until(100_000)
    assert mc.stats.reads_completed == 2
    assert mc.stats.row_hits == 1
    assert mc.stats.row_hit_rate == pytest.approx(0.5)
