"""Unit tests for the repro.api facade and its deprecation shims."""

import json
import warnings

import pytest

from repro import api

FAST = dict(num_windows=0.25, warmup_windows=0.05, refresh_scale=1024)


def _canon(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def test_facade_exports_are_importable():
    for name in api.__all__:
        assert getattr(api, name) is not None


def test_introspection_helpers():
    assert "codesign" in api.available_scenarios()
    assert "WL-6" in api.available_workloads()
    assert "same_bank" in api.available_policies()


def test_api_run_is_warning_free():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        result = api.run("WL-9", "per_bank", **FAST)
    assert result.workload == "WL-9"
    assert result.hmean_ipc > 0


def test_run_simulation_shim_warns_but_matches():
    from repro.core.simulator import run_simulation

    with pytest.warns(DeprecationWarning, match="repro.api.run"):
        old = run_simulation("WL-9", "per_bank", **FAST)
    new = api.run("WL-9", "per_bank", **FAST)
    assert _canon(old) == _canon(new)


def test_package_level_run_simulation_also_warns():
    import repro

    with pytest.warns(DeprecationWarning):
        repro.run_simulation("WL-9", "per_bank", **FAST)


def test_figure_module_import_shim_warns():
    import repro.experiments
    import sys

    # Force the shim path even if another test already bound the module.
    repro.experiments.__dict__.pop("figure9", None)
    sys.modules.pop("repro.experiments.figure9", None)
    with pytest.warns(DeprecationWarning, match="repro.api.figure"):
        from repro.experiments import figure9  # noqa: F401


def test_figure_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown figure"):
        api.figure("figure99")


def test_api_sweep_matches_run(tmp_path):
    results = api.sweep(
        ["WL-9"], ["all_bank", "per_bank"], jobs=1, use_cache=False,
        out=tmp_path / "out", **FAST,
    )
    assert len(results) == 2
    direct = api.run("WL-9", "all_bank", **FAST)
    spec = api.make_run_spec("WL-9", "all_bank", **FAST)
    assert _canon(results[spec.content_hash()]) == _canon(direct)
    assert len(list((tmp_path / "out").glob("*.json"))) == 2


def test_api_diff_dispatches_on_path_kind(tmp_path):
    api.sweep(["WL-9"], ["per_bank"], jobs=1, use_cache=False,
              out=tmp_path / "a", **FAST)
    api.sweep(["WL-9"], ["per_bank"], jobs=1, use_cache=False,
              out=tmp_path / "b", **FAST)
    assert api.diff(tmp_path / "a", tmp_path / "b").exit_code == 0
    file_a = next((tmp_path / "a").glob("*.json"))
    with pytest.raises(ValueError, match="not one of each"):
        api.diff(tmp_path / "a", file_a)
    assert api.diff(file_a, file_a).exit_code == 0


def test_api_warm_start_returns_state_and_provenance(tmp_path):
    from repro.core.checkpoint import CheckpointStore
    from repro.core.simulator import sweep_specs

    (spec,) = sweep_specs(
        ["WL-9"], ["codesign"], warmup_scenario="per_bank", **FAST
    )
    state, provenance = api.warm_start(spec, CheckpointStore(tmp_path))
    assert isinstance(state, dict) and state
    key, _, cycle = provenance.partition("@")
    assert len(key) == 16 and int(cycle) > 0


def test_api_submit_round_trip(tmp_path):
    from repro.service import SweepService, serve_in_thread

    service = SweepService(cache_dir=tmp_path)
    server, thread = serve_in_thread(service)
    try:
        spec = api.make_run_spec("WL-9", "per_bank", **FAST)
        served = api.submit(spec, port=server.port)
        assert _canon(served) == _canon(api.run_spec(spec))
        outcome = api.submit([spec], port=server.port)
        assert outcome.ok
        assert outcome.sources[spec.content_hash()] == "memo"
    finally:
        server.stop()
        thread.join(timeout=10)
