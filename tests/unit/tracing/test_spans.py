"""Unit tests for deterministic trace ids and span lifecycles."""

import pytest

from repro.tracing import (
    TRACE_ID_LEN,
    JobTrace,
    mint_trace_id,
    request_digest,
)


class FakeClock:
    """Injectable nanosecond clock advancing a fixed step per call."""

    def __init__(self, start_ns=1_000_000, step_ns=5_000):
        self.now = start_ns
        self.step = step_ns

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def _trace(events, clock=None):
    return JobTrace(
        "t" * TRACE_ID_LEN, "job1", events.append,
        clock=clock or FakeClock(),
    )


def test_mint_trace_id_is_deterministic_and_sequenced():
    a1 = mint_trace_id("seed", 1)
    a2 = mint_trace_id("seed", 2)
    assert a1 == mint_trace_id("seed", 1)
    assert a1 != a2
    assert len(a1) == TRACE_ID_LEN
    assert a1 != mint_trace_id("other", 1)


def test_request_digest_ignores_transport_keys():
    payload = {"spec": {"workload": "WL-9"}, "monitors": "collect"}
    with_transport = {"id": 42, "v": 2, "stream": True, **payload}
    assert request_digest(payload) == request_digest(with_transport)
    assert request_digest(payload) != request_digest(
        {**payload, "monitors": "strict"}
    )


def test_span_ids_sequential_in_open_order():
    events = []
    trace = _trace(events)
    root = trace.span("resolve")
    child = trace.span("execute", parent=root.span_id)
    grandchild = trace.span("run_spec", parent=child.span_id)
    assert (root.span_id, child.span_id, grandchild.span_id) == (0, 1, 2)
    # Close out of open order: ids keep the allocation order.
    grandchild.close()
    child.close()
    root.close()
    assert [e.span_id for e in events] == [2, 1, 0]
    assert [e.parent for e in events] == [1, 0, None]
    assert all(e.trace_id == "t" * TRACE_ID_LEN for e in events)
    assert all(e.job == "job1" for e in events)


def test_span_emits_once_and_rejects_double_close():
    events = []
    trace = _trace(events)
    span = trace.span("memo")
    span.set(cycles=4096, detail="abc").close()
    assert len(events) == 1
    assert (events[0].cycles, events[0].detail) == (4096, "abc")
    with pytest.raises(RuntimeError, match="already closed"):
        span.close()


def test_span_context_manager_closes_on_exit():
    events = []
    trace = _trace(events)
    with trace.span("cache") as span:
        span.set(detail="hit")
    assert [e.name for e in events] == ["cache"]
    assert events[0].detail == "hit"


def test_wall_fields_come_from_injected_clock():
    events = []
    clock = FakeClock(start_ns=2_000_000, step_ns=7_000)
    trace = _trace(events, clock=clock)
    trace.span("execute").close()
    (event,) = events
    assert event.wall_start_us == 2_000_000 // 1000
    assert event.wall_dur_us == 7_000 // 1000


def test_deterministic_fields_agree_across_different_clocks():
    """Two runs with different wall clocks differ ONLY in wall fields."""

    def run(clock):
        events = []
        trace = _trace(events, clock=clock)
        with trace.span("resolve") as root:
            with trace.span("execute", parent=root.span_id) as ex:
                ex.set(cycles=100, detail="k")
            root.set(cycles=100, detail="executed")
        return events

    fast = run(FakeClock(step_ns=1_000))
    slow = run(FakeClock(start_ns=9_000_000, step_ns=900_000))
    wall = {"wall_start_us", "wall_dur_us"}

    def det(event):
        return {k: v for k, v in event.to_dict().items() if k not in wall}

    assert [det(e) for e in fast] == [det(e) for e in slow]
    assert [e.to_dict() for e in fast] != [e.to_dict() for e in slow]
