"""Unit tests for the structured JSONL log."""

import io
import json

from repro.tracing import StructuredLog


def _clock():
    state = {"now": 1000}

    def tick():
        state["now"] += 1
        return state["now"]

    return tick


def test_records_carry_level_context_and_sorted_fields():
    log = StructuredLog(clock=_clock())
    record = log.info("served", trace="abc", job="j1", tier="memo", seq=2)
    assert record["level"] == "info"
    assert record["msg"] == "served"
    assert (record["trace"], record["job"]) == ("abc", "j1")
    # Extra fields land in sorted key order after the fixed prefix.
    assert list(record)[-2:] == ["seq", "tier"]
    assert log.warn("w")["level"] == "warn"
    assert log.error("e")["level"] == "error"


def test_stream_gets_one_canonical_json_line_per_record():
    stream = io.StringIO()
    log = StructuredLog(stream=stream, clock=_clock())
    log.info("listening", port=7341)
    log.error("boom", trace="t1")
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    for line in lines:
        record = json.loads(line)
        # Canonical form: re-dumping with sorted keys reproduces the line.
        assert json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ) == line
    assert json.loads(lines[0])["port"] == 7341


def test_path_logging_appends_jsonl(tmp_path):
    path = tmp_path / "service.jsonl"
    with StructuredLog(path=str(path), clock=_clock()) as log:
        log.info("one")
        log.info("two")
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["msg"] for r in records] == ["one", "two"]
    assert records[0]["ts"] < records[1]["ts"]


def test_in_memory_ring_keeps_the_tail():
    log = StructuredLog(clock=_clock(), keep=3)
    for i in range(7):
        log.info(f"m{i}")
    assert [r["msg"] for r in log.records] == ["m4", "m5", "m6"]
