"""Unit tests for the CFS load balancer."""

import itertools
import random

import pytest

from repro.config.dram_configs import DramOrganization
from repro.config.system_configs import default_system_config
from repro.core.engine import Engine
from repro.cpu.core import Core
from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.timing import DramTiming
from repro.os.loadbalance import LoadBalancer
from repro.os.scheduler import CfsScheduler
from repro.os.task import Task
from repro.workloads.benchmark import MemAccess


class ComputeWorkload:
    mlp = 1
    name = "compute"

    def next_access(self, task):
        return MemAccess(100, 100, None)


def build(num_cores=2, quantum=1000):
    config = default_system_config(refresh_scale=1024)
    engine = Engine()
    org = DramOrganization()
    mapping = AddressMapping(org, total_rows_per_bank=16)
    mc = MemoryController(engine, DramTiming.from_config(config), org, mapping)
    cores = [Core(i, engine, mc) for i in range(num_cores)]
    return engine, CfsScheduler(engine, cores, quantum)


_ids = itertools.count()


def make_task(name, banks=None):
    task = Task(name, ComputeWorkload(),
                possible_banks=frozenset(banks) if banks else None,
                task_id=next(_ids))
    task.rng = random.Random(1)
    return task


def test_rebalance_equalizes_queues():
    engine, scheduler = build()
    for i in range(6):
        scheduler.add_task(make_task(f"t{i}"), cpu=0)  # all on cpu0
    balancer = LoadBalancer(scheduler)
    moved = balancer.rebalance()
    assert moved == 3
    assert scheduler.runqueues[0].nr_running == 3
    assert scheduler.runqueues[1].nr_running == 3


def test_balanced_queues_untouched():
    engine, scheduler = build()
    for i in range(4):
        scheduler.add_task(make_task(f"t{i}"))
    balancer = LoadBalancer(scheduler)
    assert balancer.rebalance() == 0
    assert balancer.migrations == 0


def test_off_by_one_tolerated():
    engine, scheduler = build()
    for i in range(3):
        scheduler.add_task(make_task(f"t{i}"), cpu=0)
    scheduler.add_task(make_task("t3"), cpu=1)
    scheduler.add_task(make_task("t4"), cpu=1)
    balancer = LoadBalancer(scheduler)
    assert balancer.rebalance() == 0  # 3 vs 2: within tolerance


def test_periodic_balancing_via_engine():
    engine, scheduler = build(quantum=100)
    for i in range(6):
        scheduler.add_task(make_task(f"t{i}"), cpu=0)
    balancer = LoadBalancer(scheduler, interval_quanta=2)
    balancer.start()
    scheduler.start()
    engine.run_until(100 * 6 + 1)  # several balancing passes
    total = [
        rq.nr_running + (0 if core.is_idle else 1)
        for rq, core in zip(scheduler.runqueues, scheduler.cores)
    ]
    # Tasks per core (queued + running) converge to balance.
    assert abs(total[0] - total[1]) <= 1
    assert balancer.migrations >= 2


def test_naive_migration_picks_longest_waiting():
    engine, scheduler = build()
    tasks = [make_task(f"t{i}") for i in range(4)]
    for i, t in enumerate(tasks):
        t.vruntime = float(i)
        scheduler.add_task(t, cpu=0)
    balancer = LoadBalancer(scheduler)
    balancer.rebalance()
    migrated = scheduler.runqueues[1].tasks()
    assert tasks[3] in migrated  # max vruntime went first


def test_bank_aware_prefers_redundant_and_useful():
    engine, scheduler = build()
    all_banks = set(range(16))
    # Source core: two tasks excluding {0,1} (redundant pair), one excluding
    # {2,3} (unique).  Destination: one task excluding {0,1}.
    a1 = make_task("a1", banks=all_banks - {0, 1})
    a2 = make_task("a2", banks=all_banks - {0, 1})
    unique = make_task("unique", banks=all_banks - {2, 3})
    dest = make_task("dest", banks=all_banks - {0, 1})
    for t in (a1, a2, unique):
        scheduler.add_task(t, cpu=0)
    scheduler.add_task(dest, cpu=1)

    # Give the unique task the highest vruntime: the naive policy would
    # migrate it, breaking source coverage of banks {2,3}.
    unique.vruntime = 100.0

    balancer = LoadBalancer(scheduler, bank_aware=True)
    balancer.rebalance()
    migrated = scheduler.runqueues[1].tasks()
    assert unique not in migrated
    assert a1 in migrated or a2 in migrated


def test_invalid_interval():
    engine, scheduler = build()
    with pytest.raises(ValueError):
        LoadBalancer(scheduler, interval_quanta=0)
