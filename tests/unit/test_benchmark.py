"""Unit tests for benchmark specs and the statistical workload model."""

import random

import pytest

from repro.config.dram_configs import DramOrganization
from repro.dram.address import AddressMapping
from repro.errors import ConfigError
from repro.os.task import Task
from repro.workloads.benchmark import (
    AccessPattern,
    BenchmarkSpec,
    MpkiClass,
    StatisticalWorkload,
)


@pytest.fixture
def mapping():
    return AddressMapping(DramOrganization(), total_rows_per_bank=64)


def make_task(mapping, spec, num_pages=32, seed=5):
    workload = StatisticalWorkload(spec, mapping)
    task = Task(spec.name, workload, task_id=0)
    task.rng = random.Random(seed)
    for frame in range(num_pages):
        task.add_frame(frame, mapping.frame_to_bank_index(frame))
    return task


class TestMpkiClass:
    def test_table2_boundaries(self):
        assert MpkiClass.of(35.0) is MpkiClass.HIGH
        assert MpkiClass.of(10.1) is MpkiClass.HIGH
        assert MpkiClass.of(10.0) is MpkiClass.MEDIUM
        assert MpkiClass.of(1.0) is MpkiClass.MEDIUM
        assert MpkiClass.of(0.5) is MpkiClass.LOW


class TestBenchmarkSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            BenchmarkSpec("x", mpki=-1, footprint_bytes=1).validate()
        with pytest.raises(ConfigError):
            BenchmarkSpec("x", mpki=1, footprint_bytes=0).validate()
        with pytest.raises(ConfigError):
            BenchmarkSpec("x", mpki=1, footprint_bytes=1, mlp=0).validate()
        with pytest.raises(ConfigError):
            BenchmarkSpec("x", mpki=1, footprint_bytes=1, row_locality=1.5).validate()

    def test_instructions_per_miss(self):
        spec = BenchmarkSpec("x", mpki=10.0, footprint_bytes=4096)
        assert spec.instructions_per_miss() == 100.0
        zero = BenchmarkSpec("z", mpki=0.0, footprint_bytes=4096)
        assert zero.instructions_per_miss() == float("inf")


class TestStatisticalWorkload:
    def test_mean_gap_matches_mpki(self, mapping):
        spec = BenchmarkSpec("x", mpki=20.0, footprint_bytes=4096, mlp=4)
        task = make_task(mapping, spec)
        total_instr = 0
        n = 4000
        for _ in range(n):
            total_instr += task.workload.next_access(task).instructions
        mean = total_instr / n
        # Burst structure preserves 1000/MPKI = 50 instructions per miss.
        assert mean == pytest.approx(50, rel=0.15)

    def test_addresses_within_task_frames(self, mapping):
        spec = BenchmarkSpec("x", mpki=10.0, footprint_bytes=4096)
        task = make_task(mapping, spec, num_pages=8)
        frames = set(task.frames)
        for _ in range(200):
            access = task.workload.next_access(task)
            assert access.address is not None
            frame = access.address // mapping.page_bytes
            assert frame in frames

    def test_zero_mpki_yields_compute_gaps(self, mapping):
        spec = BenchmarkSpec("x", mpki=0.0, footprint_bytes=4096)
        task = make_task(mapping, spec)
        access = task.workload.next_access(task)
        assert access.address is None
        assert access.instructions == StatisticalWorkload.MAX_GAP_INSTRUCTIONS

    def test_no_frames_yields_compute_gaps(self, mapping):
        spec = BenchmarkSpec("x", mpki=10.0, footprint_bytes=4096)
        workload = StatisticalWorkload(spec, mapping)
        task = Task("x", workload, task_id=0)
        task.rng = random.Random(1)
        assert workload.next_access(task).address is None

    def test_row_locality_produces_page_reuse(self, mapping):
        high = BenchmarkSpec("h", mpki=10, footprint_bytes=4096, row_locality=0.95)
        low = BenchmarkSpec("l", mpki=10, footprint_bytes=4096, row_locality=0.0)

        def distinct_pages(spec):
            task = make_task(mapping, spec, num_pages=16)
            pages = [
                task.workload.next_access(task).address // mapping.page_bytes
                for _ in range(100)
            ]
            return len(set(pages))

        assert distinct_pages(high) < distinct_pages(low)

    def test_sequential_pattern_walks_pages_in_order(self, mapping):
        spec = BenchmarkSpec(
            "s", mpki=10, footprint_bytes=4096, row_locality=0.0,
            pattern=AccessPattern.SEQUENTIAL,
        )
        task = make_task(mapping, spec, num_pages=8)
        pages = [
            task.workload.next_access(task).address // mapping.page_bytes
            for _ in range(8)
        ]
        assert pages == task.frames[:8]

    def test_write_fraction_generates_writebacks(self, mapping):
        spec = BenchmarkSpec("w", mpki=10, footprint_bytes=4096, write_fraction=1.0)
        task = make_task(mapping, spec)
        task.workload.next_access(task)  # prime recent pages
        writebacks = sum(
            1 for _ in range(50)
            if task.workload.next_access(task).writeback_address is not None
        )
        assert writebacks == 50

    def test_zero_write_fraction_no_writebacks(self, mapping):
        spec = BenchmarkSpec("r", mpki=10, footprint_bytes=4096, write_fraction=0.0)
        task = make_task(mapping, spec)
        for _ in range(50):
            assert task.workload.next_access(task).writeback_address is None

    def test_burst_structure(self, mapping):
        spec = BenchmarkSpec("b", mpki=10, footprint_bytes=4096, mlp=4)
        task = make_task(mapping, spec)
        gaps = [task.workload.next_access(task).instructions for _ in range(16)]
        # Pattern: long, short x3, long, short x3 ...
        intra = task.workload._intra_instr
        for i, gap in enumerate(gaps):
            if i % 4 != 0:
                assert gap == intra

    def test_deterministic_given_seed(self, mapping):
        spec = BenchmarkSpec("d", mpki=10, footprint_bytes=4096)
        a = make_task(mapping, spec, seed=9)
        b = make_task(mapping, spec, seed=9)
        for _ in range(50):
            x, y = a.workload.next_access(a), b.workload.next_access(b)
            assert (x.instructions, x.address) == (y.instructions, y.address)
