"""Unit tests for DRAM configuration presets (Table 1 values)."""

import pytest

from repro.config.dram_configs import (
    DDR3_1600,
    DENSITIES,
    DensityConfig,
    DramOrganization,
    DramTimingSpec,
    FgrMode,
    density,
)
from repro.errors import ConfigError


class TestDramTimingSpec:
    def test_ddr3_defaults_match_table1(self):
        assert DDR3_1600.bus_mhz == 800.0
        assert DDR3_1600.tCL == 11
        assert DDR3_1600.tRC == DDR3_1600.tRAS + DDR3_1600.tRP

    def test_validate_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            DramTimingSpec(tCL=0).validate()

    def test_validate_rejects_tras_below_trcd(self):
        with pytest.raises(ConfigError):
            DramTimingSpec(tRAS=5, tRCD=11).validate()


class TestDensityConfig:
    def test_table1_trfc_values(self):
        assert density(16).trfc_ab_ns == 530.0
        assert density(24).trfc_ab_ns == 710.0
        assert density(32).trfc_ab_ns == 890.0
        assert density(8).trfc_ab_ns == 350.0

    def test_table1_rows_per_bank(self):
        assert density(16).rows_per_bank == 256 * 1024
        assert density(24).rows_per_bank == 384 * 1024
        assert density(32).rows_per_bank == 512 * 1024

    def test_per_bank_trfc_ratio(self):
        # tRFC_ab-to-tRFC_pb ratio = 2.3 (Table 1, from Chang et al.)
        for cfg in DENSITIES.values():
            assert cfg.trfc_pb_ns == pytest.approx(cfg.trfc_ab_ns / 2.3)

    def test_trfc_grows_with_density(self):
        values = [density(d).trfc_ab_ns for d in (8, 16, 24, 32)]
        assert values == sorted(values)

    def test_unknown_density_raises(self):
        with pytest.raises(ConfigError):
            density(12)

    def test_validate_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            DensityConfig(density_gbit=0, trfc_ab_ns=100, rows_per_bank=1).validate()
        with pytest.raises(ConfigError):
            DensityConfig(density_gbit=8, trfc_ab_ns=-1, rows_per_bank=1).validate()


class TestFgrMode:
    def test_trefi_divisors(self):
        assert FgrMode.X1.trefi_divisor == 1
        assert FgrMode.X2.trefi_divisor == 2
        assert FgrMode.X4.trefi_divisor == 4

    def test_trfc_divisors_from_mukundan(self):
        # tRFC scales only by 1.35x/1.63x in 2x/4x modes (Section 6.3).
        assert FgrMode.X2.trfc_divisor == 1.35
        assert FgrMode.X4.trfc_divisor == 1.63

    def test_finer_modes_cost_more_total_refresh_time(self):
        # commands x tRFC grows: 2/1.35 > 1, 4/1.63 > 2/1.35.
        cost = {m: m.trefi_divisor / m.trfc_divisor for m in FgrMode}
        assert cost[FgrMode.X1] < cost[FgrMode.X2] < cost[FgrMode.X4]


class TestDramOrganization:
    def test_table1_defaults(self):
        org = DramOrganization()
        assert org.channels == 1
        assert org.ranks_per_channel == 2
        assert org.banks_per_rank == 8
        assert org.total_banks == 16
        assert org.row_size_bytes == 4096

    def test_columns_per_row(self):
        assert DramOrganization().columns_per_row == 64

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            DramOrganization(banks_per_rank=6).validate()

    def test_rejects_misaligned_row(self):
        with pytest.raises(ConfigError):
            DramOrganization(row_size_bytes=1000).validate()
