"""FR-FCFS ordering invariants, pinned before the array-backed rewrite.

These tests are mutation-style: they assert *exact* completion orders
and exact drain-mode transition points, so any rewrite of
``MemoryController._pick``/``_select`` that changes the pop order — even
one that still services every request — must fail here.  They are the
behavioral contract the flat-array hot path is held to.

Pinned invariants:

* oldest-first among same-row hits (a younger hit never jumps an older
  hit to the same row);
* FIFO fallback when no queued request hits the open row;
* write-drain hysteresis enters exactly at the high watermark and exits
  exactly at the low watermark;
* opportunistic writes are serviced on banks with no queued reads even
  outside drain mode, while reads win when both are present;
* a dead pick (bank woken with nothing to do) still occupies its
  same-cycle arbitration slot, so bus grant order is unchanged by
  whether an idle bank was woken.
"""

import pytest

from repro.config.dram_configs import DramOrganization
from repro.config.system_configs import default_system_config
from repro.core.engine import Engine
from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest, RequestType
from repro.dram.timing import DramTiming


@pytest.fixture
def timing():
    return DramTiming.from_config(default_system_config(refresh_scale=1024))


@pytest.fixture
def setup(timing):
    engine = Engine()
    org = DramOrganization()
    mapping = AddressMapping(org, total_rows_per_bank=64)
    mc = MemoryController(engine, timing, org, mapping)
    return engine, mapping, mc


def request(mapping, frame, column=0, is_read=True, tag=None, log=None):
    address = mapping.frame_offset_to_address(frame, column * 64)
    rtype = RequestType.READ if is_read else RequestType.WRITE
    on_complete = None
    if log is not None:
        on_complete = lambda r, t=tag: log.append(t)  # noqa: E731
    return MemoryRequest(
        rtype, address, mapping.address_to_coordinate(address),
        on_complete=on_complete,
    )


# With the default organization (1ch x 2rk x 8bk = 16 banks, interleaved
# layout) consecutive frames stripe banks then ranks; frames f and
# f + 16 share a bank and differ in row.
BANK_STRIDE = 16


def test_oldest_first_among_same_row_hits(setup):
    """Three hits to the open row complete strictly in arrival order."""
    engine, mapping, mc = setup
    order = []
    # Opens row 0 of bank 0.
    mc.enqueue(request(mapping, 0, 0, tag="opener", log=order))
    # A conflicting row arrives *before* the hits: FR-FCFS lets every
    # (older and younger) hit to row 0 jump it.
    mc.enqueue(request(mapping, BANK_STRIDE, 0, tag="conflict", log=order))
    for column in (1, 2, 3):
        mc.enqueue(
            request(mapping, 0, column, tag=f"hit{column}", log=order)
        )
    engine.run_until(1_000_000)
    assert order == ["opener", "hit1", "hit2", "hit3", "conflict"]


def test_fifo_fallback_when_no_row_hits(setup):
    """All-distinct rows on one bank: strict arrival order (FIFO)."""
    engine, mapping, mc = setup
    order = []
    # Enqueue in a deliberately non-monotonic row order so that any
    # "lowest row first" or "last in first out" mutation shows up.
    for i, row in enumerate((5, 2, 9, 0, 7)):
        mc.enqueue(
            request(mapping, row * BANK_STRIDE, 0, tag=f"r{row}", log=order)
        )
    engine.run_until(1_000_000)
    assert order == ["r5", "r2", "r9", "r0", "r7"]


def test_drain_enters_exactly_at_high_watermark(setup):
    engine, mapping, mc = setup
    # Park every write on a refreshing bank so nothing drains while we
    # fill: the occupancy stays exactly what we enqueued.
    mc.refresh_bank(0, 0, 0, 200_000)
    for i in range(mc.write_drain_high - 1):
        mc.enqueue(request(mapping, 0, i % 64, is_read=False))
        assert not mc.drain_mode, f"drain engaged early at {i + 1} writes"
    mc.enqueue(request(mapping, 0, 63, is_read=False))
    assert mc.drain_mode, "drain did not engage at the high watermark"


def test_drain_exits_exactly_at_low_watermark(setup):
    """Stepping the drain: drain_mode clears on the pop that reaches the
    low watermark, not one earlier or later."""
    engine, mapping, mc = setup
    for i in range(mc.write_drain_high):
        # Spread over banks so service is fast and the hysteresis is the
        # only thing controlling drain_mode.
        mc.enqueue(request(mapping, i % 16, i // 16, is_read=False))
    assert mc.drain_mode
    seen = []  # (write_count after step, drain_mode)
    while engine.step():
        seen.append((mc.write_count, mc.drain_mode))
        if not mc.drain_mode:
            break
    assert seen, "engine made no progress"
    exit_count, _ = seen[-1]
    assert exit_count == mc.write_drain_low
    # Every observation above the low watermark was still drain mode.
    for count, mode in seen[:-1]:
        assert mode, f"drain dropped early at write_count={count}"


def test_opportunistic_write_on_read_empty_bank(setup):
    """A lone write on bank A is serviced immediately (no drain mode)
    while reads are in flight on bank B; on a bank with both, the read
    goes first."""
    engine, mapping, mc = setup
    order = []
    # Bank 1: a read; bank 2: a write only (opportunistic); bank 3:
    # write enqueued *before* the read, read must still win.
    mc.enqueue(request(mapping, 1, 0, tag="readB1", log=order))
    mc.enqueue(request(mapping, 2, 0, is_read=False, tag="writeB2", log=order))
    mc.enqueue(request(mapping, 3, 0, is_read=False, tag="writeB3", log=order))
    mc.enqueue(request(mapping, 3, 1, tag="readB3", log=order))
    assert not mc.drain_mode
    engine.run_until(1_000_000)
    assert mc.stats.writes_completed == 2
    assert order.index("readB3") < order.index("writeB3")


def test_dead_pick_keeps_bus_arbitration_slot(setup, timing):
    """Same-cycle wakeups: an idle bank's dead pick must not shift the
    grant order of the banks behind it in the cycle bucket.

    Both banks 0 and 1 (same rank) are woken by the same rank-refresh
    completion; only bank 1 has a request.  The request's service timing
    must be identical to a run where bank 0 also has a request that is
    popped first — i.e. the dead pick occupies slot 0 either way.
    """
    engine, mapping, mc = setup

    def run_case(with_bank0_request):
        eng = Engine()
        org = DramOrganization()
        mapp = AddressMapping(org, total_rows_per_bank=64)
        con = MemoryController(eng, timing, org, mapp)
        done = {}
        end = con.refresh_rank(0, 0, timing.trfc_ab)
        if with_bank0_request:
            con.enqueue(
                MemoryRequest(
                    RequestType.READ,
                    mapp.frame_offset_to_address(0, 0),
                    mapp.address_to_coordinate(
                        mapp.frame_offset_to_address(0, 0)
                    ),
                    on_complete=lambda r: done.setdefault("b0", r),
                )
            )
        address = mapp.frame_offset_to_address(1, 0)
        con.enqueue(
            MemoryRequest(
                RequestType.READ, address, mapp.address_to_coordinate(address),
                on_complete=lambda r: done.setdefault("b1", r),
            )
        )
        eng.run_until(end + 500_000)
        return done

    lone = run_case(with_bank0_request=False)
    paired = run_case(with_bank0_request=True)
    # Bank 1's start time is bus-arbitration-dependent: with a bank-0
    # request present, bank 0 wins slot 0 and bank 1 is pushed behind its
    # burst.  The dead pick (no request) must release the bus, so bank 1
    # starts *earlier* alone — but still from the same slot sequence.
    assert "b0" not in lone
    # Slot 0 is the same schedule whichever bank occupies it: bank 1
    # alone starts exactly where bank 0 starts in the paired run.
    assert lone["b1"].start_time == paired["b0"].start_time
    # The paired case pins the exact two-access schedule (ACT-to-ACT
    # tRRD or burst tBL, whichever binds); if dead picks ever re-ordered
    # the bucket, bank 1 would win slot 0 and this gap would collapse.
    gap = paired["b1"].start_time - paired["b0"].start_time
    assert gap == max(timing.tRRD, timing.tBL)


def test_refresh_deferred_pick_resumes_after_refresh(setup, timing):
    """A pick landing mid-refresh re-arms for the refresh end, and the
    request is serviced immediately at that boundary."""
    engine, mapping, mc = setup
    end = mc.refresh_bank(0, 0, 0, timing.trfc_pb)
    done = []
    mc.enqueue(request(mapping, 0, 0, tag="r", log=done))
    engine.run_until(end + 100_000)
    assert done == ["r"]
    assert mc.stats.refresh_stalled_reads == 1
