"""Unit tests for Elastic Refresh (Stuecheli et al., MICRO 2010)."""


from repro.config.dram_configs import DramOrganization
from repro.config.system_configs import default_system_config
from repro.core.engine import Engine
from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.refresh import make_scheduler
from repro.dram.refresh.elastic import ElasticRefresh
from repro.dram.request import MemoryRequest, RequestType
from repro.dram.timing import DramTiming


def build(refresh_scale=1024):
    config = default_system_config(refresh_scale=refresh_scale)
    timing = DramTiming.from_config(config)
    engine = Engine()
    org = DramOrganization()
    mapping = AddressMapping(org, total_rows_per_bank=16)
    mc = MemoryController(engine, timing, org, mapping)
    sched = make_scheduler("elastic")
    sched.attach(mc, engine, timing)
    return engine, timing, mc, sched


def test_idle_system_refreshes_eagerly():
    engine, timing, mc, sched = build()
    sched.start()
    engine.run_until(timing.trefw - 1)
    # With no demand traffic every obligation is met via idle issues.
    assert sched.idle_refreshes > 0
    assert sched.forced_refreshes == 0
    n = timing.refreshes_per_bank
    for flat in range(16):
        assert sched.stats.per_bank_commands.get(flat, 0) >= n - 1


def test_debt_never_exceeds_jedec_budget():
    # Finer scale: the window must span well over 8 tREFIs so the
    # postponement budget can actually run out.
    engine, timing, mc, sched = build(refresh_scale=256)
    # Constant demand traffic: rank never idle -> refreshes get forced.
    address = mc.mapping.frame_offset_to_address(0, 0)

    def traffic():
        # Heavier than the bus can drain: the ranks are never idle.
        for frame in range(16):
            a = mc.mapping.frame_offset_to_address(frame, 0)
            mc.enqueue(
                MemoryRequest(RequestType.READ, a,
                              mc.mapping.address_to_coordinate(a))
            )
        engine.schedule(100, traffic)

    engine.schedule(0, traffic)
    sched.start()
    max_debt = 0

    def watch():
        nonlocal max_debt
        max_debt = max(max_debt, max(sched._debt.values()))
        engine.schedule(timing.trefi_ab // 4, watch)

    engine.schedule(1, watch)
    engine.run_until(timing.trefw)
    assert max_debt <= ElasticRefresh.MAX_POSTPONED + 1
    assert sched.forced_refreshes > 0


def test_coverage_maintained_under_load():
    engine, timing, mc, sched = build()

    def traffic():
        import random

        rng = random.Random(9)

        def fire():
            frame = rng.randrange(mc.mapping.total_frames)
            a = mc.mapping.frame_offset_to_address(frame, 0)
            mc.enqueue(
                MemoryRequest(RequestType.READ, a,
                              mc.mapping.address_to_coordinate(a))
            )
            engine.schedule(rng.randrange(100, 400), fire)

        fire()

    engine.schedule(0, traffic)
    sched.start()
    engine.run_until(timing.trefw - 1)
    n = timing.refreshes_per_bank
    for flat in range(16):
        # Postponement may defer up to MAX_POSTPONED obligations past the
        # window edge, never more.
        assert sched.stats.per_bank_commands.get(flat, 0) >= n - (
            ElasticRefresh.MAX_POSTPONED + 1
        )


def test_elastic_scenario_runs_end_to_end():
    from repro import run_simulation

    result = run_simulation(
        "WL-9", "elastic", num_windows=0.5, warmup_windows=0.1,
        refresh_scale=512,
    )
    assert result.hmean_ipc > 0
    assert result.refresh_commands > 0
