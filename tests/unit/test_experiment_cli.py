"""Unit tests for the experiment CLI plumbing."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main
from repro.experiments.runner import (
    FULL_PROFILE,
    QUICK_PROFILE,
    SweepRunner,
    active_profile,
)


def test_every_figure_registered():
    expected = {f"figure{n}" for n in (3, 4, 5, 9, 10, 11, 12, 13, 14, 15)}
    expected.add("ablations")
    assert set(EXPERIMENTS) == expected


def test_cli_rejects_unknown_experiment(capsys):
    with pytest.raises(SystemExit):
        main(["figure99"])


def test_cli_runs_figure5(capsys):
    assert main(["figure5"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "average @ 32Gb" in out


def test_profiles():
    assert QUICK_PROFILE.refresh_scale > FULL_PROFILE.refresh_scale
    assert QUICK_PROFILE.num_windows <= FULL_PROFILE.num_windows
    assert active_profile().name in ("quick", "full")


def test_profile_env_selection(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "full")
    assert active_profile() is FULL_PROFILE
    monkeypatch.setenv("REPRO_PROFILE", "quick")
    assert active_profile() is QUICK_PROFILE
    monkeypatch.setenv("REPRO_PROFILE", "bogus")
    assert active_profile() is QUICK_PROFILE


def test_runner_uses_profile_workloads():
    runner = SweepRunner(QUICK_PROFILE)
    assert runner.profile.workloads == tuple(
        f"WL-{i}" for i in range(1, 11)
    )
