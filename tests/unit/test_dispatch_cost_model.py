"""The controller's cycles-per-dispatch cost model and the bench kernels
that export it.

Every quantity in :meth:`MemoryController.dispatch_cost_model` is a pure
function of the workload — no wall clocks — so these tests can assert
exact identities (picks = serviced + dead + deferred, pops partition
into row-hit and FIFO) and exact run-to-run agreement.
"""

from repro.bench.kernels import (
    _drain_storm,
    _request_stream,
    _row_hit_locality,
    controller_cost_models,
)


def test_request_stream_model_identities():
    completed, mc = _request_stream()
    model = mc.dispatch_cost_model()
    assert completed == 2000
    assert model["serviced"] == completed
    assert model["picks"] == (
        model["serviced"]
        + model["dead_picks"]
        + model["refresh_deferred_picks"]
    )
    assert model["row_hit_pops"] + model["fifo_pops"] == model["serviced"]
    assert 0.0 <= model["dead_pick_ratio"] < 1.0
    assert 0.0 <= model["row_hit_pop_ratio"] <= 1.0


def test_drain_storm_toggles_drain_once_per_wave():
    """2048 requests in completion-paced waves of 64 (60 writes + 4
    reads): each wave crosses the high watermark on enqueue and empties
    through the low one, so drain mode toggles exactly 2048/64 times."""
    completed, mc = _drain_storm()
    model = mc.dispatch_cost_model()
    assert completed == 2048
    assert model["drain_entries"] == 2048 // 64
    assert model["drain_exits"] == model["drain_entries"]
    assert not mc.drain_mode


def test_row_hit_locality_pops_mostly_from_open_row_index():
    _, random_mc = _request_stream()
    _, burst_mc = _row_hit_locality()
    random_model = random_mc.dispatch_cost_model()
    burst_model = burst_mc.dispatch_cost_model()
    assert burst_model["row_hit_pop_ratio"] > 0.8
    assert burst_model["row_hit_pop_ratio"] > random_model["row_hit_pop_ratio"]


def test_cost_models_are_deterministic():
    first = controller_cost_models()
    second = controller_cost_models()
    assert first == second
    assert set(first) == {
        "controller_request_stream",
        "controller_drain_storm",
        "controller_row_hit_locality",
    }


def test_cost_model_counters_stay_out_of_snapshots():
    """The counters are process-local diagnostics: a snapshot/restore
    round trip must neither serialize them nor disturb them."""
    _, mc = _request_stream()
    state = mc.snapshot_state()
    assert not any("cost" in key or key.startswith("_cm") for key in state)
    before = mc.dispatch_cost_model()
    mc.restore_state(state, {})
    assert mc.dispatch_cost_model() == before
