"""Unit tests for the bank state machine and DDR timing math."""

import pytest

from repro.config.system_configs import default_system_config
from repro.dram.address import DramCoordinate
from repro.dram.bank import Bank, ChannelBus, Rank
from repro.dram.request import MemoryRequest, RequestType
from repro.dram.timing import DramTiming
from repro.errors import ProtocolError


@pytest.fixture
def timing():
    return DramTiming.from_config(default_system_config(refresh_scale=1024))


def make_request(row=0, column=0, is_read=True, arrive=0):
    coord = DramCoordinate(channel=0, rank=0, bank=0, row=row, column=column)
    req = MemoryRequest(
        RequestType.READ if is_read else RequestType.WRITE, 0, coord
    )
    req.arrive_time = arrive
    return req


@pytest.fixture
def parts():
    return Bank(0, 0, 0, 0), Rank(0, 0), ChannelBus()


class TestDemandAccess:
    def test_cold_access_is_row_miss(self, parts, timing):
        bank, rank, bus = parts
        service = bank.service(make_request(row=3), 0, timing, rank, bus)
        assert not service.row_hit
        # ACT at 0, CAS at tRCD, data at +tCL, done at +tBL.
        assert service.cas_time == timing.tRCD
        assert service.finish == timing.tRCD + timing.tCL + timing.tBL
        assert bank.open_row == 3
        assert bank.stats.row_misses == 1

    def test_second_access_same_row_hits(self, parts, timing):
        bank, rank, bus = parts
        first = bank.service(make_request(row=3), 0, timing, rank, bus)
        second = bank.service(
            make_request(row=3, column=5), first.finish, timing, rank, bus
        )
        assert second.row_hit
        assert bank.stats.row_hits == 1

    def test_row_conflict_pays_precharge(self, parts, timing):
        bank, rank, bus = parts
        first = bank.service(make_request(row=3), 0, timing, rank, bus)
        t = first.finish + timing.tRAS  # safely past tRAS
        conflict = bank.service(make_request(row=9), t, timing, rank, bus)
        assert not conflict.row_hit
        assert conflict.cas_time >= t + timing.tRP + timing.tRCD
        assert bank.stats.row_conflicts == 1
        assert bank.open_row == 9

    def test_row_hit_faster_than_conflict(self, parts, timing):
        bank, rank, bus = parts
        bank.service(make_request(row=1), 0, timing, rank, bus)
        start = 10_000
        hit = bank.service(make_request(row=1), start, timing, rank, bus)
        bank2, rank2, bus2 = Bank(0, 0, 1, 1), Rank(0, 0), ChannelBus()
        bank2.service(make_request(row=1), 0, timing, rank2, bus2)
        conflict = bank2.service(make_request(row=2), start, timing, rank2, bus2)
        assert hit.finish - start < conflict.finish - start

    def test_trc_limits_back_to_back_activates(self, parts, timing):
        bank, rank, bus = parts
        bank.service(make_request(row=1), 0, timing, rank, bus)
        conflict = bank.service(make_request(row=2), 1, timing, rank, bus)
        # Second ACT must wait for tRC after the first (plus PRE path).
        assert conflict.cas_time >= timing.tRC - timing.tRCD

    def test_write_updates_write_stats_and_recovery(self, parts, timing):
        bank, rank, bus = parts
        service = bank.service(
            make_request(row=2, is_read=False), 0, timing, rank, bus
        )
        assert bank.stats.writes == 1
        # Write recovery pushes the earliest precharge past data + tWR.
        assert bank.pre_ready >= service.data_start + timing.tBL + timing.tWR


class TestRefresh:
    def test_refresh_blocks_bank(self, parts, timing):
        bank, rank, bus = parts
        end = bank.begin_refresh(100, timing.trfc_pb)
        assert end == 100 + timing.trfc_pb
        assert bank.is_refreshing(100)
        assert bank.is_refreshing(end - 1)
        assert not bank.is_refreshing(end)

    def test_refresh_closes_open_row(self, parts, timing):
        bank, rank, bus = parts
        bank.service(make_request(row=5), 0, timing, rank, bus)
        bank.begin_refresh(bank.pre_ready + timing.tRP, timing.trfc_pb)
        assert bank.open_row is None

    def test_access_after_refresh_waits(self, parts, timing):
        bank, rank, bus = parts
        end = bank.begin_refresh(0, timing.trfc_pb)
        req = make_request(row=1, arrive=10)
        service = bank.service(req, 10, timing, rank, bus)
        assert service.cas_time >= end
        assert req.refresh_stall == end - 10

    def test_refresh_start_respects_open_row(self, parts, timing):
        bank, rank, bus = parts
        bank.service(make_request(row=5), 0, timing, rank, bus)
        start = bank.refresh_start_time(1, timing)
        # Must precharge first: at least tRAS after ACT plus tRP.
        assert start >= timing.tRAS + timing.tRP

    def test_refresh_stats(self, parts, timing):
        bank, rank, bus = parts
        bank.begin_refresh(0, 100)
        bank.begin_refresh(200, 100)
        assert bank.stats.refreshes == 2
        assert bank.stats.refresh_busy_cycles == 200

    def test_zero_trfc_rejected(self, parts, timing):
        bank, _, _ = parts
        with pytest.raises(ProtocolError):
            bank.begin_refresh(0, 0)

    def test_refresh_stall_attribution_for_late_arrival(self, parts, timing):
        bank, rank, bus = parts
        end = bank.begin_refresh(0, 1000)
        # Arrives mid-refresh: only the remaining overlap is attributed.
        req = make_request(row=1, arrive=600)
        bank.service(req, end, timing, rank, bus)
        assert req.refresh_stall == 400


class TestRank:
    def test_trrd_spacing(self, timing):
        rank = Rank(0, 0)
        rank.record_activate(0, timing)
        assert rank.earliest_activate(0, timing) == timing.tRRD

    def test_tfaw_window(self, timing):
        rank = Rank(0, 0)
        for i in range(4):
            rank.record_activate(i * timing.tRRD, timing)
        earliest = rank.earliest_activate(3 * timing.tRRD + 1, timing)
        assert earliest >= timing.tFAW  # 5th ACT waits for the window

    def test_no_constraint_when_idle(self, timing):
        rank = Rank(0, 0)
        assert rank.earliest_activate(42, timing) == 42


class TestChannelBus:
    def test_serializes_bursts(self, timing):
        bus = ChannelBus()
        a = bus.reserve(0, True, (0, 0), timing)
        b = bus.reserve(0, True, (0, 0), timing)
        assert b >= a + timing.tBL

    def test_write_to_read_turnaround(self, timing):
        bus = ChannelBus()
        bus.reserve(0, False, (0, 0), timing)
        t = bus.reserve(0, True, (0, 0), timing)
        assert t >= timing.tBL + timing.tWTR

    def test_rank_switch_penalty(self, timing):
        bus = ChannelBus()
        bus.reserve(0, True, (0, 0), timing)
        t = bus.reserve(0, True, (0, 1), timing)
        assert t >= timing.tBL + timing.tRTRS

    def test_utilization(self, timing):
        bus = ChannelBus()
        bus.reserve(0, True, (0, 0), timing)
        assert bus.utilization(timing.tBL) == pytest.approx(1.0)
        assert bus.utilization(0) == 0.0
