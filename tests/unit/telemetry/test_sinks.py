"""Event sinks: ring-buffer eviction, JSONL round-trip, Chrome traces."""

import json

import pytest

from repro.errors import ConfigError
from repro.telemetry import (
    CallbackSink,
    ChromeTraceSink,
    DramCommandEvent,
    JsonlSink,
    NullSink,
    PageAllocEvent,
    RefreshCommandEvent,
    RefreshStretchBeginEvent,
    RefreshStretchEndEvent,
    RingBufferSink,
    SchedulerPickEvent,
    TaskMigrationEvent,
    Telemetry,
    TraceEvent,
    read_jsonl,
)


def sample_events():
    return [
        RefreshStretchBeginEvent(time=0, bank=3),
        RefreshCommandEvent(
            time=10, channel=0, rank=0, bank=3, duration=40, all_bank=False
        ),
        DramCommandEvent(
            time=90, op="RD", channel=0, rank=0, bank=5, row_hit=True,
            task_id=2, latency=30, refresh_stall=0,
        ),
        SchedulerPickEvent(
            time=100, core_id=1, task_id=4, task_name="mcf",
            refresh_bank=3, conflict=False, quantum_cycles=1000,
        ),
        RefreshStretchEndEvent(time=500, bank=3),
        PageAllocEvent(time=600, task_id=2, frame=17, bank=5, spilled=True),
        TaskMigrationEvent(time=700, task_id=4, src_cpu=0, dst_cpu=1),
    ]


# -- hub -----------------------------------------------------------------------


def test_hub_enabled_tracks_subscriptions():
    hub = Telemetry()
    assert not hub.enabled
    sink = hub.subscribe(NullSink())
    assert hub.enabled
    hub.unsubscribe(sink)
    assert not hub.enabled
    hub.unsubscribe(sink)  # unknown: ignored
    assert not hub.enabled


def test_hub_fans_out_to_every_sink():
    hub = Telemetry()
    seen_a, seen_b = [], []
    hub.subscribe(CallbackSink(seen_a.append))
    hub.subscribe(CallbackSink(seen_b.append))
    for event in sample_events():
        hub.emit(event)
    assert len(seen_a) == len(seen_b) == len(sample_events())


# -- ring buffer ---------------------------------------------------------------


def test_ring_buffer_keeps_newest_and_counts_evictions():
    ring = RingBufferSink(capacity=3)
    events = sample_events()
    for event in events:
        ring.emit(event)
    assert ring.emitted == len(events)
    assert ring.evicted == len(events) - 3
    assert ring.events() == events[-3:]
    ring.clear()
    assert ring.events() == [] and ring.emitted == 0


def test_ring_buffer_rejects_zero_capacity():
    with pytest.raises(ValueError):
        RingBufferSink(capacity=0)


# -- JSONL ---------------------------------------------------------------------


def test_jsonl_round_trip_preserves_types(tmp_path):
    path = tmp_path / "events.jsonl"
    sink = JsonlSink(path)
    events = sample_events()
    for event in events:
        sink.emit(event)
    sink.close()
    assert sink.written == len(events)
    reloaded = read_jsonl(path)
    assert reloaded == events
    assert [type(e) for e in reloaded] == [type(e) for e in events]


def test_jsonl_context_manager_flushes_on_mid_run_exception(tmp_path):
    """A run killed mid-stream must leave complete, parseable records —
    the with-block closes (and so flushes) the file on the way out."""
    from repro.core.engine import Engine

    path = tmp_path / "aborted.jsonl"
    engine = Engine()
    hub = Telemetry()
    emitted = []

    def emit_one(k):
        event = RefreshStretchBeginEvent(time=engine.now, bank=k)
        hub.emit(event)
        emitted.append(event)

    def explode():
        raise RuntimeError("simulated mid-run crash")

    with pytest.raises(RuntimeError, match="mid-run crash"):
        with JsonlSink(path) as sink:
            hub.subscribe(sink)
            for k in range(100):
                engine.schedule_at(k + 1, emit_one, k)
            engine.schedule_at(50, explode)
            engine.run()

    # 50 events fired before the crash; every written line parses and
    # matches what was emitted, in order — no truncated tail.
    reloaded = read_jsonl(path)
    assert len(reloaded) == 50
    assert reloaded == emitted


def test_jsonl_flush_makes_records_visible_without_close(tmp_path):
    path = tmp_path / "live.jsonl"
    with JsonlSink(path) as sink:
        sink.emit(RefreshStretchBeginEvent(time=0, bank=1))
        sink.flush()
        assert len(read_jsonl(path)) == 1
    assert len(read_jsonl(path)) == 1


def test_event_round_trip_via_dict():
    for event in sample_events():
        assert TraceEvent.from_dict(event.to_dict()) == event


def test_unknown_event_kind_rejected():
    with pytest.raises(ConfigError, match="unknown event kind"):
        TraceEvent.from_dict({"kind": "dram.teleport", "time": 0})


def test_malformed_event_payload_rejected():
    with pytest.raises(ConfigError, match="malformed payload"):
        TraceEvent.from_dict({"kind": "refresh.stretch_begin", "time": 0})


# -- Chrome trace --------------------------------------------------------------


def test_chrome_trace_pairs_stretches_and_skips_idle():
    sink = ChromeTraceSink()
    for event in sample_events():
        sink.emit(event)
    sink.emit(
        SchedulerPickEvent(
            time=2000, core_id=0, task_id=None, task_name="(idle)",
            refresh_bank=None, conflict=False, quantum_cycles=1000,
        )
    )
    trace = sink.trace()
    slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    stretch = [s for s in slices if s["tid"] == ChromeTraceSink.TID_STRETCH
               and s["pid"] == ChromeTraceSink.PID_DRAM]
    assert len(stretch) == 1
    assert stretch[0]["name"] == "refresh b3"
    assert stretch[0]["ts"] == 0 and stretch[0]["dur"] == 500
    picks = [s for s in slices if s["pid"] == ChromeTraceSink.PID_CPU]
    assert len(picks) == 1  # the idle quantum is skipped
    instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    assert len(instants) == 1 and instants[0]["tid"] == 1
    # DRAM commands are dropped unless opted in; allocs always drop.
    assert sink.dropped == 2


def test_chrome_trace_can_include_dram_commands():
    sink = ChromeTraceSink(include_dram_commands=True)
    for event in sample_events():
        sink.emit(event)
    names = {e["name"] for e in sink.trace()["traceEvents"]}
    assert "RD" in names
    assert sink.dropped == 1  # only the alloc event has no track


def test_chrome_trace_json_is_deterministic(tmp_path):
    def build():
        sink = ChromeTraceSink()
        for event in sample_events():
            sink.emit(event)
        return sink.to_json()

    assert build() == build()
    path = tmp_path / "trace.json"
    sink = ChromeTraceSink()
    for event in sample_events():
        sink.emit(event)
    sink.write(path)
    assert json.loads(path.read_text())["traceEvents"]


def test_chrome_trace_declares_track_names():
    sink = ChromeTraceSink()
    for event in sample_events():
        sink.emit(event)
    meta = [e for e in sink.trace()["traceEvents"] if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta}
    assert {"dram", "cpu", "refresh stretches", "refresh commands"} <= names
    assert "core 1" in names
