"""Event sinks: ring-buffer eviction, JSONL round-trip, Chrome traces."""

import json

import pytest

from repro.errors import ConfigError
from repro.telemetry import (
    CallbackSink,
    ChromeTraceSink,
    DramCommandEvent,
    JsonlSink,
    NullSink,
    PageAllocEvent,
    RefreshCommandEvent,
    RefreshStretchBeginEvent,
    RefreshStretchEndEvent,
    RingBufferSink,
    SchedulerPickEvent,
    TaskMigrationEvent,
    Telemetry,
    TraceEvent,
    read_jsonl,
)


def sample_events():
    return [
        RefreshStretchBeginEvent(time=0, bank=3),
        RefreshCommandEvent(
            time=10, channel=0, rank=0, bank=3, duration=40, all_bank=False
        ),
        DramCommandEvent(
            time=90, op="RD", channel=0, rank=0, bank=5, row_hit=True,
            task_id=2, latency=30, refresh_stall=0,
        ),
        SchedulerPickEvent(
            time=100, core_id=1, task_id=4, task_name="mcf",
            refresh_bank=3, conflict=False, quantum_cycles=1000,
        ),
        RefreshStretchEndEvent(time=500, bank=3),
        PageAllocEvent(time=600, task_id=2, frame=17, bank=5, spilled=True),
        TaskMigrationEvent(time=700, task_id=4, src_cpu=0, dst_cpu=1),
    ]


# -- hub -----------------------------------------------------------------------


def test_hub_enabled_tracks_subscriptions():
    hub = Telemetry()
    assert not hub.enabled
    sink = hub.subscribe(NullSink())
    assert hub.enabled
    hub.unsubscribe(sink)
    assert not hub.enabled
    hub.unsubscribe(sink)  # unknown: ignored
    assert not hub.enabled


def test_hub_fans_out_to_every_sink():
    hub = Telemetry()
    seen_a, seen_b = [], []
    hub.subscribe(CallbackSink(seen_a.append))
    hub.subscribe(CallbackSink(seen_b.append))
    for event in sample_events():
        hub.emit(event)
    assert len(seen_a) == len(seen_b) == len(sample_events())


# -- ring buffer ---------------------------------------------------------------


def test_ring_buffer_keeps_newest_and_counts_evictions():
    ring = RingBufferSink(capacity=3)
    events = sample_events()
    for event in events:
        ring.emit(event)
    assert ring.emitted == len(events)
    assert ring.evicted == len(events) - 3
    assert ring.events() == events[-3:]
    ring.clear()
    assert ring.events() == [] and ring.emitted == 0


def test_ring_buffer_rejects_zero_capacity():
    with pytest.raises(ValueError):
        RingBufferSink(capacity=0)


# -- JSONL ---------------------------------------------------------------------


def test_jsonl_round_trip_preserves_types(tmp_path):
    path = tmp_path / "events.jsonl"
    sink = JsonlSink(path)
    events = sample_events()
    for event in events:
        sink.emit(event)
    sink.close()
    assert sink.written == len(events)
    reloaded = read_jsonl(path)
    assert reloaded == events
    assert [type(e) for e in reloaded] == [type(e) for e in events]


def test_jsonl_context_manager_flushes_on_mid_run_exception(tmp_path):
    """A run killed mid-stream must leave complete, parseable records —
    the with-block closes (and so flushes) the file on the way out."""
    from repro.core.engine import Engine

    path = tmp_path / "aborted.jsonl"
    engine = Engine()
    hub = Telemetry()
    emitted = []

    def emit_one(k):
        event = RefreshStretchBeginEvent(time=engine.now, bank=k)
        hub.emit(event)
        emitted.append(event)

    def explode():
        raise RuntimeError("simulated mid-run crash")

    with pytest.raises(RuntimeError, match="mid-run crash"):
        with JsonlSink(path) as sink:
            hub.subscribe(sink)
            for k in range(100):
                engine.schedule_at(k + 1, emit_one, k)
            engine.schedule_at(50, explode)
            engine.run()

    # 50 events fired before the crash; every written line parses and
    # matches what was emitted, in order — no truncated tail.
    reloaded = read_jsonl(path)
    assert len(reloaded) == 50
    assert reloaded == emitted


def test_jsonl_flush_makes_records_visible_without_close(tmp_path):
    path = tmp_path / "live.jsonl"
    with JsonlSink(path) as sink:
        sink.emit(RefreshStretchBeginEvent(time=0, bank=1))
        sink.flush()
        assert len(read_jsonl(path)) == 1
    assert len(read_jsonl(path)) == 1


def test_event_round_trip_via_dict():
    for event in sample_events():
        assert TraceEvent.from_dict(event.to_dict()) == event


def test_unknown_event_kind_rejected():
    with pytest.raises(ConfigError, match="unknown event kind"):
        TraceEvent.from_dict({"kind": "dram.teleport", "time": 0})


def test_malformed_event_payload_rejected():
    with pytest.raises(ConfigError, match="malformed payload"):
        TraceEvent.from_dict({"kind": "refresh.stretch_begin", "time": 0})


# -- Chrome trace --------------------------------------------------------------


def test_chrome_trace_pairs_stretches_and_skips_idle():
    sink = ChromeTraceSink()
    for event in sample_events():
        sink.emit(event)
    sink.emit(
        SchedulerPickEvent(
            time=2000, core_id=0, task_id=None, task_name="(idle)",
            refresh_bank=None, conflict=False, quantum_cycles=1000,
        )
    )
    trace = sink.trace()
    slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    stretch = [s for s in slices if s["tid"] == ChromeTraceSink.TID_STRETCH
               and s["pid"] == ChromeTraceSink.PID_DRAM]
    assert len(stretch) == 1
    assert stretch[0]["name"] == "refresh b3"
    assert stretch[0]["ts"] == 0 and stretch[0]["dur"] == 500
    picks = [s for s in slices if s["pid"] == ChromeTraceSink.PID_CPU]
    assert len(picks) == 1  # the idle quantum is skipped
    instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    assert len(instants) == 1 and instants[0]["tid"] == 1
    # DRAM commands are dropped unless opted in; allocs always drop.
    assert sink.dropped == 2


def test_chrome_trace_can_include_dram_commands():
    sink = ChromeTraceSink(include_dram_commands=True)
    for event in sample_events():
        sink.emit(event)
    names = {e["name"] for e in sink.trace()["traceEvents"]}
    assert "RD" in names
    assert sink.dropped == 1  # only the alloc event has no track


def test_chrome_trace_json_is_deterministic(tmp_path):
    def build():
        sink = ChromeTraceSink()
        for event in sample_events():
            sink.emit(event)
        return sink.to_json()

    assert build() == build()
    path = tmp_path / "trace.json"
    sink = ChromeTraceSink()
    for event in sample_events():
        sink.emit(event)
    sink.write(path)
    assert json.loads(path.read_text())["traceEvents"]


def test_chrome_trace_declares_track_names():
    sink = ChromeTraceSink()
    for event in sample_events():
        sink.emit(event)
    meta = [e for e in sink.trace()["traceEvents"] if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta}
    assert {"dram", "cpu", "refresh stretches", "refresh commands"} <= names
    assert "core 1" in names


# -- span track ----------------------------------------------------------------


def _span(span_id, name, trace_id="a" * 16, job="job1", parent=None,
          wall_start=100, wall_dur=10, cycles=0, detail=""):
    from repro.telemetry import SpanEvent

    return SpanEvent(
        time=span_id, trace_id=trace_id, name=name, job=job, parent=parent,
        cycles=cycles, detail=detail,
        wall_start_us=wall_start, wall_dur_us=wall_dur,
    )


def test_span_slices_land_on_the_service_process():
    sink = ChromeTraceSink()
    sink.emit(_span(0, "resolve", wall_start=150, wall_dur=40))
    sink.emit(_span(1, "execute", parent=0, wall_start=160, wall_dur=25,
                    cycles=20_000, detail="hash"))
    trace = sink.trace()
    spans = [e for e in trace["traceEvents"] if e.get("cat") == "span"]
    assert len(spans) == 2
    assert all(s["pid"] == ChromeTraceSink.PID_SERVICE for s in spans)
    lanes = {s["name"]: s["tid"] for s in spans}
    assert lanes["resolve"] == ChromeTraceSink.SPAN_LANES.index("resolve")
    assert lanes["execute"] == ChromeTraceSink.SPAN_LANES.index("execute")
    # Wall times normalize to the earliest span start.
    assert [s["ts"] for s in spans] == [0, 10]
    execute = next(s for s in spans if s["name"] == "execute")
    assert execute["args"] == {
        "trace": "a" * 16, "job": "job1", "span": 1, "parent": 0,
        "cycles": 20_000, "detail": "hash",
    }
    # Metadata names the service process and each used lane.
    meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta}
    assert "service" in names and "resolve" in names and "execute" in names


def test_span_slices_sort_by_trace_job_and_id_not_wall():
    sink = ChromeTraceSink()
    # Emit out of deterministic order, with wall times reversed.
    sink.emit(_span(1, "execute", job="j2", wall_start=50))
    sink.emit(_span(0, "resolve", job="j2", wall_start=900))
    sink.emit(_span(0, "resolve", job="j1", wall_start=500))
    spans = [e for e in sink.trace()["traceEvents"]
             if e.get("cat") == "span"]
    assert [(s["args"]["job"], s["args"]["span"]) for s in spans] == [
        ("j1", 0), ("j2", 0), ("j2", 1)
    ]


def test_unknown_span_name_falls_to_the_other_lane():
    sink = ChromeTraceSink()
    sink.emit(_span(0, "not-a-lane"))
    (span,) = [e for e in sink.trace()["traceEvents"]
               if e.get("cat") == "span"]
    assert span["tid"] == len(ChromeTraceSink.SPAN_LANES)
    meta = [e for e in sink.trace()["traceEvents"] if e["ph"] == "M"]
    assert "other" in {e["args"]["name"] for e in meta}


def test_strip_span_walls_leaves_only_deterministic_structure():
    from repro.telemetry import strip_span_walls

    def build(gap, dur):
        sink = ChromeTraceSink()
        sink.emit(sample_events()[0])  # simulation event rides along
        sink.emit(sample_events()[4])
        sink.emit(_span(0, "resolve", wall_start=1000, wall_dur=dur))
        sink.emit(_span(1, "execute", parent=0,
                        wall_start=1000 + gap, wall_dur=2))
        return sink.trace()

    a, b = build(3, 7), build(450, 9000)
    assert a != b  # wall fields differ...
    stripped_a, stripped_b = strip_span_walls(a), strip_span_walls(b)
    assert json.dumps(stripped_a, sort_keys=True) == json.dumps(
        stripped_b, sort_keys=True
    )  # ...and stripping removes exactly that difference.
    # Simulation slices keep their (simulated-cycle) timestamps.
    stretch = [e for e in stripped_a["traceEvents"]
               if e.get("cat") == "refresh"]
    assert stretch and stretch[0]["dur"] == 500
