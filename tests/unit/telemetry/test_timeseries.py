"""Windowed timeseries sampling: serialization and live sampling on a run."""

import json

import pytest

from repro.core.results import RunResult
from repro.core.simulator import make_run_spec, run_simulation
from repro.errors import ConfigError
from repro.telemetry import Timeseries, TimeseriesSample

FAST = dict(refresh_scale=1024, num_windows=0.5, warmup_windows=0.0)


@pytest.fixture(scope="module")
def sampled_result():
    return run_simulation("WL-6", "all_bank", sample_windows=8, **FAST)


def test_sampler_attaches_timeseries(sampled_result):
    ts = sampled_result.timeseries
    assert ts is not None
    # 0.5 windows measured at 8 samples/window -> 4 intervals.
    assert len(ts.samples) == 4
    times = ts.metric("t")
    assert times == sorted(times)
    assert all(
        times[i + 1] - times[i] == ts.interval_cycles
        for i in range(len(times) - 1)
    )


def test_samples_carry_plausible_rates(sampled_result):
    ts = sampled_result.timeseries
    assert all(s.ipc > 0 for s in ts.samples)
    assert all(0.0 <= s.refresh_stall_fraction <= 1.0 for s in ts.samples)
    assert all(s.queue_depth >= 0 for s in ts.samples)
    assert sum(ts.metric("instructions")) > 0


def test_run_result_round_trips_timeseries(sampled_result):
    payload = json.loads(json.dumps(sampled_result.to_dict()))
    reloaded = RunResult.from_dict(payload)
    assert reloaded.timeseries == sampled_result.timeseries


def test_unsampled_run_has_no_timeseries():
    result = run_simulation("WL-6", "all_bank", **FAST)
    assert result.timeseries is None
    reloaded = RunResult.from_dict(result.to_dict())
    assert reloaded.timeseries is None


def test_timeseries_round_trip():
    ts = Timeseries(
        interval_cycles=100,
        samples=[
            TimeseriesSample(
                t=100, instructions=50, ipc=0.5, reads_completed=10,
                refresh_stall_fraction=0.2, queue_depth=3,
            )
        ],
    )
    assert Timeseries.from_dict(ts.to_dict()) == ts


def test_timeseries_rejects_malformed_payloads():
    with pytest.raises(ConfigError, match="expected a dict"):
        Timeseries.from_dict([1, 2])
    with pytest.raises(ConfigError, match="expected a dict"):
        Timeseries.from_dict({"interval_cycles": 1, "samples": [3]})
    with pytest.raises(ConfigError, match="malformed payload"):
        Timeseries.from_dict({"interval_cycles": 1, "samples": 3})


def test_unknown_metric_rejected():
    with pytest.raises(ConfigError, match="unknown timeseries metric"):
        Timeseries(interval_cycles=1).metric("latency")


def test_sample_windows_validated_in_spec():
    with pytest.raises(ConfigError, match="sample_windows"):
        make_run_spec("WL-6", "all_bank", sample_windows=0, **FAST)


def test_sampler_is_exact_inside_a_folded_compute_chain():
    """Sampling ticks landing mid-fast-forward must report the same
    instruction counts the one-event-per-gap schedule would have.

    The core folds consecutive pure-compute gaps into a single engine
    event; the sampler's ``sync_accounting`` call linearizes the lazy
    credits.  With 50-cycle gaps of 100 instructions each, the exact
    cumulative count at any boundary ``t`` is ``100 * (t // 50)`` — the
    170-cycle sampling interval never divides 50, so every tick lands
    strictly inside a folded gap chain.
    """
    from types import SimpleNamespace

    from repro.config.dram_configs import DramOrganization
    from repro.config.system_configs import default_system_config
    from repro.core.engine import Engine
    from repro.cpu.core import Core
    from repro.dram.address import AddressMapping
    from repro.dram.controller import MemoryController
    from repro.dram.timing import DramTiming
    from repro.os.task import Task
    from repro.telemetry.timeseries import TimeseriesSampler
    from repro.workloads.benchmark import MemAccess

    class ComputeWorkload:
        name = "compute"
        mlp = 1

        def next_access(self, task):
            return MemAccess(100, 50, None)  # 100 instr over a 50-cycle gap

    config = default_system_config(refresh_scale=1024)
    timing = DramTiming.from_config(config)
    organization = DramOrganization()
    mapping = AddressMapping(organization, total_rows_per_bank=64)
    engine = Engine()
    controller = MemoryController(engine, timing, organization, mapping)
    core = Core(0, engine, controller)
    task = Task("bench", ComputeWorkload(), task_id=0)
    system = SimpleNamespace(
        engine=engine, cores=[core], tasks=[task], controller=controller,
        window_cycles=1360,
    )

    sampler = TimeseriesSampler(system, 8)
    assert sampler.interval == 170
    core.run_task(task)
    sampler.start(0, 1360)
    engine.run_until(1360)

    cumulative = 0
    for sample in sampler.result().samples:
        cumulative += sample.instructions
        assert cumulative == 100 * (sample.t // 50)

    # The fast-forward actually happened: the only fired engine events
    # are the 8 sampler ticks — none of the 27 elapsed compute gaps
    # scheduled its own event.
    assert engine.events_processed == 8

    # And sampling did not disturb the accounting the run ends with.
    core.sync_accounting(engine.now)
    assert task.stats.instructions == 100 * (1360 // 50)
