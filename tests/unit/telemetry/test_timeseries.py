"""Windowed timeseries sampling: serialization and live sampling on a run."""

import json

import pytest

from repro.core.results import RunResult
from repro.core.simulator import make_run_spec, run_simulation
from repro.errors import ConfigError
from repro.telemetry import Timeseries, TimeseriesSample

FAST = dict(refresh_scale=1024, num_windows=0.5, warmup_windows=0.0)


@pytest.fixture(scope="module")
def sampled_result():
    return run_simulation("WL-6", "all_bank", sample_windows=8, **FAST)


def test_sampler_attaches_timeseries(sampled_result):
    ts = sampled_result.timeseries
    assert ts is not None
    # 0.5 windows measured at 8 samples/window -> 4 intervals.
    assert len(ts.samples) == 4
    times = ts.metric("t")
    assert times == sorted(times)
    assert all(
        times[i + 1] - times[i] == ts.interval_cycles
        for i in range(len(times) - 1)
    )


def test_samples_carry_plausible_rates(sampled_result):
    ts = sampled_result.timeseries
    assert all(s.ipc > 0 for s in ts.samples)
    assert all(0.0 <= s.refresh_stall_fraction <= 1.0 for s in ts.samples)
    assert all(s.queue_depth >= 0 for s in ts.samples)
    assert sum(ts.metric("instructions")) > 0


def test_run_result_round_trips_timeseries(sampled_result):
    payload = json.loads(json.dumps(sampled_result.to_dict()))
    reloaded = RunResult.from_dict(payload)
    assert reloaded.timeseries == sampled_result.timeseries


def test_unsampled_run_has_no_timeseries():
    result = run_simulation("WL-6", "all_bank", **FAST)
    assert result.timeseries is None
    reloaded = RunResult.from_dict(result.to_dict())
    assert reloaded.timeseries is None


def test_timeseries_round_trip():
    ts = Timeseries(
        interval_cycles=100,
        samples=[
            TimeseriesSample(
                t=100, instructions=50, ipc=0.5, reads_completed=10,
                refresh_stall_fraction=0.2, queue_depth=3,
            )
        ],
    )
    assert Timeseries.from_dict(ts.to_dict()) == ts


def test_timeseries_rejects_malformed_payloads():
    with pytest.raises(ConfigError, match="expected a dict"):
        Timeseries.from_dict([1, 2])
    with pytest.raises(ConfigError, match="expected a dict"):
        Timeseries.from_dict({"interval_cycles": 1, "samples": [3]})
    with pytest.raises(ConfigError, match="malformed payload"):
        Timeseries.from_dict({"interval_cycles": 1, "samples": 3})


def test_unknown_metric_rejected():
    with pytest.raises(ConfigError, match="unknown timeseries metric"):
        Timeseries(interval_cycles=1).metric("latency")


def test_sample_windows_validated_in_spec():
    with pytest.raises(ConfigError, match="sample_windows"):
        make_run_spec("WL-6", "all_bank", sample_windows=0, **FAST)
