"""The uniform *Stats snapshot protocol (StatsBase mixin)."""

import dataclasses

import pytest

from repro.cpu.cache import CacheStats
from repro.dram.bank import BankStats
from repro.dram.controller import ControllerStats
from repro.dram.refresh.base import RefreshStats
from repro.errors import ConfigError
from repro.os.task import TaskStats
from repro.os.vm import VmStats
from repro.telemetry.stats import StatsBase

ALL_STATS = [
    BankStats,
    CacheStats,
    ControllerStats,
    RefreshStats,
    TaskStats,
    VmStats,
]


@pytest.mark.parametrize("cls", ALL_STATS)
def test_every_stats_class_opts_into_protocol(cls):
    assert issubclass(cls, StatsBase)
    instance = cls()
    assert hasattr(instance, "snapshot")
    assert hasattr(instance, "to_dict")
    assert hasattr(cls, "from_dict")


@pytest.mark.parametrize("cls", ALL_STATS)
def test_snapshot_keys_follow_declaration_order(cls):
    declared = [f.name for f in dataclasses.fields(cls)]
    assert list(cls().snapshot()) == declared
    assert list(cls().to_dict()) == declared


@pytest.mark.parametrize("cls", ALL_STATS)
def test_default_round_trip(cls):
    instance = cls()
    assert cls.from_dict(instance.to_dict()) == instance


def test_int_dict_keys_survive_json_round_trip():
    stats = RefreshStats()
    stats.record(3)
    stats.record(3)
    stats.record(7)
    import json

    reloaded = RefreshStats.from_dict(json.loads(json.dumps(stats.to_dict())))
    assert reloaded.per_bank_commands == {3: 2, 7: 1}
    assert reloaded == stats


def test_unknown_field_rejected():
    with pytest.raises(ConfigError, match="unknown field"):
        TaskStats.from_dict({"instructions": 1, "bogus_counter": 2})


def test_from_dict_rejects_non_dict():
    with pytest.raises(ConfigError, match="expected a dict"):
        BankStats.from_dict([1, 2, 3])


def test_snapshot_reflects_live_values():
    stats = TaskStats()
    stats.instructions = 41
    snap = stats.snapshot()
    assert snap["instructions"] == 41
    stats.instructions += 1
    assert stats.snapshot()["instructions"] == 42
