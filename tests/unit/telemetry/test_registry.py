"""MetricsRegistry: dotted names, flattening, glob queries, export."""

import json

import pytest

from repro.dram.refresh.base import RefreshStats
from repro.errors import ConfigError
from repro.telemetry import MetricsRegistry


def build_registry():
    registry = MetricsRegistry()
    stats = RefreshStats()
    stats.record(3)
    stats.record(5)
    registry.register("dram.refresh", stats)
    registry.register("os.task.0", {"quanta": 7, "instructions": 1000})
    registry.register("os.task.1", {"quanta": 9, "instructions": 900})
    registry.register("sim.elapsed", lambda: 12345)
    return registry


def test_snapshot_flattens_to_dotted_names():
    snap = build_registry().snapshot()
    assert snap["os.task.0.quanta"] == 7
    assert snap["dram.refresh.commands_issued"] == 2
    assert snap["dram.refresh.per_bank_commands.3"] == 1
    assert snap["sim.elapsed"] == 12345
    assert list(snap) == sorted(snap)


def test_snapshot_is_live():
    registry = MetricsRegistry()
    stats = RefreshStats()
    registry.register("r", stats)
    assert registry.value("r.commands_issued") == 0
    stats.record(0)
    assert registry.value("r.commands_issued") == 1


def test_glob_query():
    registry = build_registry()
    quanta = registry.query("os.task.*.quanta")
    assert quanta == {"os.task.0.quanta": 7, "os.task.1.quanta": 9}
    assert registry.query("nothing.*") == {}


def test_value_unknown_name_raises():
    with pytest.raises(ConfigError, match="unknown metric"):
        build_registry().value("os.task.2.quanta")


def test_duplicate_and_invalid_prefixes_rejected():
    registry = MetricsRegistry()
    registry.register("a.b", 1)
    with pytest.raises(ConfigError, match="already registered"):
        registry.register("a.b", 2)
    with pytest.raises(ConfigError, match="invalid metric prefix"):
        registry.register(".a", 1)
    with pytest.raises(ConfigError, match="invalid metric prefix"):
        registry.register("", 1)


def test_unregister():
    registry = MetricsRegistry()
    registry.register("a", 1)
    registry.unregister("a")
    assert registry.prefixes() == []
    with pytest.raises(ConfigError, match="not registered"):
        registry.unregister("a")


def test_json_export_round_trips(tmp_path):
    registry = build_registry()
    path = tmp_path / "metrics.json"
    registry.write(path)
    assert json.loads(path.read_text()) == registry.snapshot()
    assert registry.to_json() == registry.to_json()  # deterministic
