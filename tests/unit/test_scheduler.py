"""Unit tests for the CFS scheduler driving cores at quantum granularity."""

import itertools
import random

import pytest

from repro.config.dram_configs import DramOrganization
from repro.config.system_configs import default_system_config
from repro.core.engine import Engine
from repro.cpu.core import Core
from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.timing import DramTiming
from repro.errors import SchedulerError
from repro.os.scheduler import CfsScheduler
from repro.os.task import Task
from repro.workloads.benchmark import MemAccess


class ComputeWorkload:
    mlp = 1
    name = "compute"

    def next_access(self, task):
        return MemAccess(100, 100, None)


def build(num_cores=2, quantum=1000):
    config = default_system_config(refresh_scale=1024)
    engine = Engine()
    org = DramOrganization()
    mapping = AddressMapping(org, total_rows_per_bank=16)
    mc = MemoryController(engine, DramTiming.from_config(config), org, mapping)
    cores = [Core(i, engine, mc) for i in range(num_cores)]
    scheduler = CfsScheduler(engine, cores, quantum)
    return engine, cores, scheduler


_ids = itertools.count()


def make_task(name):
    task = Task(name, ComputeWorkload(), task_id=next(_ids))
    task.rng = random.Random(1)
    return task


def test_quantum_must_be_positive():
    engine, cores, _ = build()
    with pytest.raises(SchedulerError):
        CfsScheduler(engine, cores, 0)


def test_add_task_balances_queues():
    engine, cores, scheduler = build(num_cores=2)
    tasks = [make_task(f"t{i}") for i in range(4)]
    for t in tasks:
        scheduler.add_task(t)
    assert scheduler.runqueues[0].nr_running == 2
    assert scheduler.runqueues[1].nr_running == 2


def test_tasks_listed_from_queues_and_cores():
    engine, cores, scheduler = build()
    tasks = [make_task(f"t{i}") for i in range(4)]
    for t in tasks:
        scheduler.add_task(t)
    scheduler.start()
    engine.run_until(10)
    assert set(scheduler.tasks()) == set(tasks)


def test_round_robin_fair_share():
    engine, cores, scheduler = build(num_cores=1, quantum=1000)
    tasks = [make_task(f"t{i}") for i in range(4)]
    for t in tasks:
        scheduler.add_task(t, cpu=0)
    scheduler.start()
    engine.run_until(8000)  # 8 quanta for 4 tasks
    cycles = sorted(t.stats.scheduled_cycles for t in tasks)
    assert cycles == [2000, 2000, 2000, 2000]


def test_vruntime_advances_per_quantum():
    engine, cores, scheduler = build(num_cores=1, quantum=500)
    a, b = make_task("a"), make_task("b")
    scheduler.add_task(a, cpu=0)
    scheduler.add_task(b, cpu=0)
    scheduler.start()
    engine.run_until(2000)
    assert a.vruntime > 0
    assert b.vruntime > 0
    assert abs(a.vruntime - b.vruntime) <= 500


def test_weighted_task_runs_more():
    engine, cores, scheduler = build(num_cores=1, quantum=100)
    heavy, light = make_task("heavy"), make_task("light")
    heavy.weight = 3.0
    scheduler.add_task(heavy, cpu=0)
    scheduler.add_task(light, cpu=0)
    scheduler.start()
    engine.run_until(100 * 40)
    assert heavy.stats.scheduled_cycles > 2 * light.stats.scheduled_cycles


def test_idle_core_with_no_tasks():
    engine, cores, scheduler = build(num_cores=2)
    scheduler.add_task(make_task("only"), cpu=0)
    scheduler.start()
    engine.run_until(5000)
    assert cores[1].is_idle


def test_context_switch_counter():
    engine, cores, scheduler = build(num_cores=1, quantum=100)
    for i in range(2):
        scheduler.add_task(make_task(f"t{i}"), cpu=0)
    scheduler.start()
    engine.run_until(1000)
    assert scheduler.context_switches >= 10


def test_subscribe_observers_fire_per_quantum():
    engine, cores, scheduler = build(num_cores=1, quantum=100)
    seen = []
    handle = scheduler.subscribe(lambda t, core_id, task: seen.append((t, core_id)))
    scheduler.add_task(make_task("a"), cpu=0)
    scheduler.start()
    engine.run_until(1000)
    assert len(seen) >= 10
    assert all(core_id == 0 for _, core_id in seen)
    scheduler.unsubscribe(handle)
    count = len(seen)
    engine.run_until(2000)
    assert len(seen) == count
    scheduler.unsubscribe(handle)  # unknown handle: ignored


def test_pick_observers_view_is_read_only():
    engine, cores, scheduler = build()
    handle = scheduler.subscribe(lambda *args: None)
    view = scheduler.pick_observers
    assert isinstance(view, tuple)
    assert view == (handle,)
    with pytest.raises(AttributeError):
        scheduler.pick_observers = []
    # Mutating the snapshot cannot alter the subscription list.
    assert scheduler.pick_observers == (handle,)


def test_start_twice_raises():
    engine, cores, scheduler = build()
    scheduler.add_task(make_task("a"))
    scheduler.start()
    with pytest.raises(SchedulerError):
        scheduler.start()
