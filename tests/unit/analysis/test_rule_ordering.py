"""RPR003 (bare set iteration) and RPR004 (heap tie-breaks)."""

from tests.unit.analysis.conftest import codes


class TestBareSetIteration:
    def test_set_literal_iteration_flagged(self, lint):
        findings = lint(
            """
            def fanout():
                for bank in {3, 1, 2}:
                    yield bank
            """,
            select={"RPR003"},
        )
        assert codes(findings) == ["RPR003"]

    def test_set_call_in_comprehension_flagged(self, lint):
        findings = lint(
            """
            def banks(tasks):
                return [t for t in set(tasks)]
            """,
            select={"RPR003"},
        )
        assert codes(findings) == ["RPR003"]

    def test_bare_keys_iteration_flagged(self, lint):
        findings = lint(
            """
            def names(table):
                for key in table.keys():
                    yield key
            """,
            select={"RPR003"},
        )
        assert codes(findings) == ["RPR003"]

    def test_sorted_wrapping_is_clean(self, lint):
        findings = lint(
            """
            def fanout(banks, table):
                for bank in sorted(banks):
                    yield bank
                for key in sorted(table):
                    yield key
            """,
            select={"RPR003"},
        )
        assert findings == []

    def test_noqa_suppresses(self, lint):
        findings = lint(
            """
            def fanout():
                for bank in {1, 2}:  # repro: noqa[RPR003]
                    yield bank
            """,
            select={"RPR003"},
        )
        assert findings == []


class TestHeapTieBreak:
    def test_bare_tuple_without_tiebreak_flagged(self, lint):
        findings = lint(
            """
            import heapq

            def push(heap, time):
                heapq.heappush(heap, (time,))
            """,
            select={"RPR004"},
        )
        assert codes(findings) == ["RPR004"]

    def test_unverifiable_item_flagged(self, lint):
        findings = lint(
            """
            import heapq

            def push(heap, item):
                heapq.heappush(heap, item)
            """,
            select={"RPR004"},
        )
        assert codes(findings) == ["RPR004"]

    def test_keyed_tuple_is_clean(self, lint):
        findings = lint(
            """
            import heapq

            def push(heap, time, seq, fn):
                heapq.heappush(heap, (time, seq, fn))
            """,
            select={"RPR004"},
        )
        assert findings == []

    def test_local_class_with_lt_is_clean(self, lint):
        # The Engine.schedule_at shape: push an instance of a class whose
        # __lt__ orders by (time, seq).
        findings = lint(
            """
            import heapq

            class Event:
                def __lt__(self, other):
                    return (self.time, self.seq) < (other.time, other.seq)

            def push(heap, time, seq):
                event = Event()
                heapq.heappush(heap, event)
            """,
            select={"RPR004"},
        )
        assert findings == []

    def test_rule_scoped_to_heap_packages(self, lint):
        findings = lint(
            """
            import heapq

            def push(heap, item):
                heapq.heappush(heap, item)
            """,
            module="repro/experiments/fixture.py",
            select={"RPR004"},
        )
        assert findings == []

    def test_noqa_suppresses(self, lint):
        findings = lint(
            """
            import heapq

            def push(heap, item):
                heapq.heappush(heap, item)  # repro: noqa[RPR004]
            """,
            select={"RPR004"},
        )
        assert findings == []
