"""Fixture helpers for linter tests.

``lint`` writes a source snippet into a temp tree shaped like the real
package (``<tmp>/repro/core/fixture.py``) so package-scoped rules bind,
then runs the analyzer over just that file and returns the findings.

``lint_project`` writes several files into one tree and runs the
whole-program driver, returning the full :class:`AnalysisReport` so
tests can assert on findings, stats, and the incremental-analysis
scope alike.
"""

import textwrap

import pytest

from repro.analysis import AnalysisConfig, analyze_file, analyze_project


@pytest.fixture
def lint(tmp_path):
    def run(source, module="repro/core/fixture.py", select=None):
        path = tmp_path / module
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        config = AnalysisConfig(
            select=frozenset(select) if select is not None else None
        )
        return analyze_file(path, config)

    return run


@pytest.fixture
def lint_project(tmp_path):
    def run(files, select=None, **kwargs):
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        config = AnalysisConfig(
            select=frozenset(select) if select is not None else None
        )
        return analyze_project([tmp_path], config, **kwargs)

    return run


def codes(findings):
    return [f.code for f in findings]
