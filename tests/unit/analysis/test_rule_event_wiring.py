"""RPR012: same-cycle scheduling stays inside the documented order set."""

from .conftest import codes

OUTSIDE = """
class Prefetcher:
    def start(self):
        self.engine.schedule(0, self._fire)

    def _fire(self):
        pass
"""

DELAYED = """
class Prefetcher:
    def start(self):
        self.engine.schedule(5, self._fire)

    def _fire(self):
        pass
"""

EXEMPT_NO_COMMENT = """
class Controller:
    def kick(self):
        self.engine.schedule_at(self.engine.now, self._pick)

    def _pick(self):
        pass
"""

EXEMPT_WITH_COMMENT = """
class Controller:
    def kick(self):
        # order: pick runs after the request that queued it this cycle.
        self.engine.schedule_at(self.engine.now, self._pick)

    def _pick(self):
        pass
"""

EXEMPT_BLOCK_COMMENT = """
class Controller:
    def kick(self):
        # order: pick runs after the request enqueue; documenting the
        # same-cycle slot sequence across several comment lines.
        self.engine.schedule_at(self.engine.now, self._pick)

    def _pick(self):
        pass
"""


def test_same_cycle_outside_exempt_set_fires(lint):
    findings = lint(
        OUTSIDE, module="repro/cpu/prefetch.py", select=["RPR012"]
    )
    assert codes(findings) == ["RPR012"]


def test_future_cycle_scheduling_is_clean(lint):
    assert (
        codes(lint(DELAYED, module="repro/cpu/prefetch.py", select=["RPR012"]))
        == []
    )


def test_outside_event_packages_is_clean(lint):
    # Bench/driver code may schedule freely.
    assert (
        codes(lint(OUTSIDE, module="repro/bench/driver.py", select=["RPR012"]))
        == []
    )


def test_exempt_module_same_owner_reentry_needs_order_comment(lint):
    findings = lint(
        EXEMPT_NO_COMMENT,
        module="repro/dram/controller.py",
        select=["RPR012"],
    )
    assert codes(findings) == ["RPR012"]
    assert "order" in findings[0].message


def test_order_comment_satisfies_exempt_reentry(lint):
    assert (
        codes(
            lint(
                EXEMPT_WITH_COMMENT,
                module="repro/dram/controller.py",
                select=["RPR012"],
            )
        )
        == []
    )


def test_multiline_order_comment_block_counts(lint):
    assert (
        codes(
            lint(
                EXEMPT_BLOCK_COMMENT,
                module="repro/dram/controller.py",
                select=["RPR012"],
            )
        )
        == []
    )
