"""RPR009: *Stats dataclasses must inherit the StatsBase snapshot mixin."""

from tests.unit.analysis.conftest import codes

BARE_STATS = """
    from dataclasses import dataclass

    @dataclass
    class WidgetStats:
        hits: int = 0
"""

MIXIN_STATS = """
    from dataclasses import dataclass

    from repro.telemetry.stats import StatsBase

    @dataclass
    class WidgetStats(StatsBase):
        hits: int = 0
"""

ALIASED_IMPORT = """
    import dataclasses

    from repro.telemetry import stats

    @dataclasses.dataclass
    class WidgetStats(stats.StatsBase):
        hits: int = 0
"""

NOT_A_DATACLASS = """
    class WidgetStats:
        def __init__(self):
            self.hits = 0
"""

NOT_A_STATS_NAME = """
    from dataclasses import dataclass

    @dataclass
    class WidgetCounters:
        hits: int = 0
"""


def test_bare_stats_dataclass_flagged(lint):
    findings = lint(BARE_STATS, select={"RPR009"})
    assert codes(findings) == ["RPR009"]
    assert "WidgetStats" in findings[0].message


def test_mixin_subclass_passes(lint):
    assert lint(MIXIN_STATS, select={"RPR009"}) == []


def test_attribute_base_resolves(lint):
    assert lint(ALIASED_IMPORT, select={"RPR009"}) == []


def test_plain_class_and_other_names_exempt(lint):
    assert lint(NOT_A_DATACLASS, select={"RPR009"}) == []
    assert lint(NOT_A_STATS_NAME, select={"RPR009"}) == []


def test_rule_scoped_to_simulator_packages(lint):
    findings = lint(
        BARE_STATS, module="repro/experiments/fixture.py", select={"RPR009"}
    )
    assert findings == []


def test_rule_covers_telemetry_package(lint):
    findings = lint(
        BARE_STATS, module="repro/telemetry/fixture.py", select={"RPR009"}
    )
    assert codes(findings) == ["RPR009"]
