"""RPR014: unit suffixes must agree across call boundaries."""


def _codes(report):
    return [f.code for f in report.findings]


def test_ns_argument_into_ck_parameter_fires(lint_project):
    report = lint_project(
        {
            "repro/core/timing.py": """
                def wait(delay_ck):
                    return delay_ck
            """,
            "repro/core/caller.py": """
                from repro.core.timing import wait

                def go(trfc_ns):
                    return wait(trfc_ns)
            """,
        },
        select=["RPR014"],
    )
    flows = [f for f in report.findings if f.code == "RPR014"]
    assert len(flows) == 1
    assert flows[0].path.endswith("caller.py")
    assert "trfc_ns" in flows[0].message and "delay_ck" in flows[0].message


def test_keyword_argument_mismatch_fires(lint_project):
    report = lint_project(
        {
            "repro/core/timing.py": """
                def wait(delay_ck=0):
                    return delay_ck
            """,
            "repro/core/caller.py": """
                from repro.core.timing import wait

                def go(trfc_ns):
                    return wait(delay_ck=trfc_ns)
            """,
        },
        select=["RPR014"],
    )
    assert _codes(report) == ["RPR014"]


def test_matching_suffixes_are_clean(lint_project):
    report = lint_project(
        {
            "repro/core/timing.py": """
                def wait(delay_ck):
                    return delay_ck
            """,
            "repro/core/caller.py": """
                from repro.core.timing import wait

                def go(window_ck):
                    return wait(window_ck)
            """,
        },
        select=["RPR014"],
    )
    assert _codes(report) == []


def test_unsuffixed_values_are_not_guessed(lint_project):
    report = lint_project(
        {
            "repro/core/timing.py": """
                def wait(delay_ck):
                    return delay_ck
            """,
            "repro/core/caller.py": """
                from repro.core.timing import wait

                def go(n):
                    return wait(n)
            """,
        },
        select=["RPR014"],
    )
    assert _codes(report) == []


def test_varargs_positions_are_not_matched(lint_project):
    report = lint_project(
        {
            "repro/core/timing.py": """
                def log(*values_ck):
                    return values_ck
            """,
            "repro/core/caller.py": """
                from repro.core.timing import log

                def go(trfc_ns):
                    return log(trfc_ns)
            """,
        },
        select=["RPR014"],
    )
    assert _codes(report) == []


def test_self_method_call_resolves_and_fires(lint_project):
    report = lint_project(
        {
            "repro/core/ctrl.py": """
                class Ctrl:
                    def _issue(self, at_ck):
                        return at_ck

                    def go(self, start_ns):
                        return self._issue(start_ns)
            """,
        },
        select=["RPR014"],
    )
    assert _codes(report) == ["RPR014"]
