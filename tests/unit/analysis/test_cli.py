"""CLI behavior: exit codes, JSON output, baselines, blanket noqa."""

import json
import textwrap

from repro.analysis.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, main
from repro.analysis.engine import PARSE_ERROR_CODE, analyze_file
from repro.analysis import AnalysisConfig

DIRTY = """
import itertools

_ids = itertools.count()
"""

CLEAN = """
IDS = (1, 2, 3)
"""


def write_fixture(tmp_path, source, name="repro/core/fixture.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    path = write_fixture(tmp_path, CLEAN)
    assert main([str(path)]) == EXIT_CLEAN
    assert "no findings" in capsys.readouterr().out


def test_exit_one_with_findings_and_text_report(tmp_path, capsys):
    path = write_fixture(tmp_path, DIRTY)
    assert main([str(path)]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "RPR002" in out and "1 finding(s)" in out


def test_json_report_is_machine_readable(tmp_path, capsys):
    path = write_fixture(tmp_path, DIRTY)
    assert main([str(path), "--format", "json"]) == EXIT_FINDINGS
    doc = json.loads(capsys.readouterr().out)
    assert doc["count"] == 1
    (finding,) = doc["findings"]
    assert finding["code"] == "RPR002"
    assert finding["path"].endswith("fixture.py")
    assert finding["line"] == 4


def test_write_then_use_baseline(tmp_path, capsys):
    path = write_fixture(tmp_path, DIRTY)
    baseline = tmp_path / "baseline.json"
    assert main([str(path), "--write-baseline", str(baseline)]) == EXIT_CLEAN
    assert main([str(path), "--baseline", str(baseline)]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "baselined" in out or "suppressed" in out


def test_unreadable_baseline_is_usage_error(tmp_path, capsys):
    path = write_fixture(tmp_path, CLEAN)
    assert main([str(path), "--baseline", str(tmp_path / "no.json")]) == EXIT_ERROR


def test_unknown_select_code_is_usage_error(tmp_path):
    path = write_fixture(tmp_path, CLEAN)
    assert main([str(path), "--select", "RPR999"]) == EXIT_ERROR


def test_select_restricts_rules(tmp_path):
    path = write_fixture(tmp_path, DIRTY)
    assert main([str(path), "--select", "RPR007"]) == EXIT_CLEAN


def test_list_rules_names_full_catalog(tmp_path, capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for code in [f"RPR{i:03d}" for i in range(1, 16)]:
        assert code in out


def test_stats_line_goes_to_stderr(tmp_path, capsys):
    path = write_fixture(tmp_path, CLEAN)
    assert main([str(path), "--stats"]) == EXIT_CLEAN
    captured = capsys.readouterr()
    assert "stats:" in captured.err
    assert "rule(s)" in captured.err and "file(s)" in captured.err
    assert "stats:" not in captured.out


def test_sarif_format_round_trips(tmp_path, capsys):
    path = write_fixture(tmp_path, DIRTY)
    assert main([str(path), "--format", "sarif"]) == EXIT_FINDINGS
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    (result,) = doc["runs"][0]["results"]
    assert result["ruleId"] == "RPR002"


def test_cache_flag_caches_across_invocations(tmp_path, capsys):
    path = write_fixture(tmp_path, CLEAN)
    cache = tmp_path / "cache.json"
    assert main([str(path), "--cache", str(cache), "--stats"]) == EXIT_CLEAN
    assert "1 parsed" in capsys.readouterr().err
    assert cache.exists()
    assert main([str(path), "--cache", str(cache), "--stats"]) == EXIT_CLEAN
    err = capsys.readouterr().err
    assert "0 parsed" in err and "1 from cache" in err


def test_changed_only_without_git_repo_is_usage_error(tmp_path, capsys, monkeypatch):
    path = write_fixture(tmp_path, CLEAN)
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("GIT_DIR", str(tmp_path / "definitely-not-a-repo"))
    assert main([str(path), "--changed-only"]) == EXIT_ERROR
    assert "changed-only" in capsys.readouterr().err


def test_directory_discovery_and_blanket_noqa(tmp_path, capsys):
    write_fixture(tmp_path, DIRTY, name="repro/core/a.py")
    write_fixture(
        tmp_path,
        "import itertools\n\n_ids = itertools.count()  # repro: noqa\n",
        name="repro/core/b.py",
    )
    assert main([str(tmp_path)]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "a.py" in out and "b.py" not in out


def test_syntax_error_reported_as_parse_finding(tmp_path):
    path = write_fixture(tmp_path, "def broken(:\n")
    findings = analyze_file(path, AnalysisConfig())
    assert [f.code for f in findings] == [PARSE_ERROR_CODE]
