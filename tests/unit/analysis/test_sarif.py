"""SARIF reporter: valid 2.1.0 shape, deterministic output."""

import json

from repro.analysis import Finding, all_rules
from repro.analysis.reporters import render_sarif

FINDINGS = [
    Finding("RPR002", "src/repro/core/a.py", 4, 1, "module-level mutable"),
    Finding("RPR001", "src/repro/core/b.py", 9, 5, "wall clock read"),
]


def test_sarif_document_shape():
    doc = json.loads(render_sarif(FINDINGS, rules=all_rules()))
    assert doc["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in doc["$schema"]
    (run,) = doc["runs"]
    assert run["tool"]["driver"]["name"] == "repro-analysis"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert "RPR011" in rule_ids and "RPR015" in rule_ids


def test_sarif_results_carry_locations():
    doc = json.loads(render_sarif(FINDINGS, rules=all_rules()))
    results = doc["runs"][0]["results"]
    assert len(results) == 2
    # Sorted by finding sort key: path first.
    assert results[0]["ruleId"] == "RPR002"
    loc = results[0]["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/repro/core/a.py"
    assert loc["region"]["startLine"] == 4
    assert loc["region"]["startColumn"] == 1


def test_sarif_is_deterministic():
    a = render_sarif(FINDINGS, rules=all_rules())
    b = render_sarif(list(reversed(FINDINGS)), rules=all_rules())
    assert a == b
    assert "Date" not in a and "timestamp" not in a


def test_sarif_empty_run_is_valid():
    doc = json.loads(render_sarif([], rules=all_rules()))
    assert doc["runs"][0]["results"] == []
