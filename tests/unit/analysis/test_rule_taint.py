"""RPR013: impurity propagates through the call graph, not just one hop."""


def _codes(report):
    return [f.code for f in report.findings]


def test_transitive_wall_clock_taint_fires(lint_project):
    report = lint_project(
        {
            "repro/core/clock.py": """
                import time

                def stamp():
                    return time.time()
            """,
            "repro/core/mid.py": """
                from repro.core.clock import stamp

                def elapsed():
                    return stamp()
            """,
            "repro/core/user.py": """
                from repro.core.mid import elapsed

                def decide():
                    return elapsed() > 0
            """,
        },
        select=["RPR013"],
    )
    # Distance 1 (stamp itself) is RPR001's job; RPR013 reports the
    # transitive callers.
    taint = [f for f in report.findings if f.code == "RPR013"]
    assert taint, report.findings
    assert any("time.time" in f.message for f in taint)
    assert any(f.path.endswith("user.py") for f in taint)


def test_direct_callers_left_to_rpr001(lint_project):
    report = lint_project(
        {
            "repro/core/clock.py": """
                import time

                def stamp():
                    return time.time()
            """,
        },
        select=["RPR013"],
    )
    assert _codes(report) == []


def test_pure_chain_is_clean(lint_project):
    report = lint_project(
        {
            "repro/core/a.py": """
                def one():
                    return 1
            """,
            "repro/core/b.py": """
                from repro.core.a import one

                def two():
                    return one() + one()
            """,
        },
        select=["RPR013"],
    )
    assert _codes(report) == []


def test_taint_outside_pure_packages_is_clean(lint_project):
    report = lint_project(
        {
            "repro/bench/clock.py": """
                import time

                def stamp():
                    return time.time()
            """,
            "repro/bench/run.py": """
                from repro.bench.clock import stamp

                def wrap():
                    return stamp()

                def outer():
                    return wrap()
            """,
        },
        select=["RPR013"],
    )
    assert _codes(report) == []


def test_chain_is_reported_in_message(lint_project):
    report = lint_project(
        {
            "repro/core/deep.py": """
                import time

                def leaf():
                    return time.time()

                def mid():
                    return leaf()

                def top():
                    return mid()
            """,
        },
        select=["RPR013"],
    )
    taint = [f for f in report.findings if f.code == "RPR013"]
    assert taint
    # The finding shows the path from the caller down to the banned call.
    assert any("->" in f.message for f in taint)
