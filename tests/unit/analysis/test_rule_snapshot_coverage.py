"""RPR011: runtime-mutated attributes must be in the snapshot key set."""

from pathlib import Path

from repro.analysis import AnalysisConfig, analyze_project

from .conftest import codes

REPO_SRC = Path(__file__).resolve().parents[3] / "src"

COVERED = """
class Counter:
    def __init__(self):
        self._count = 0

    def tick(self):
        self._count += 1

    def snapshot_state(self):
        return {"_count": self._count}

    def restore_state(self, state):
        self._count = state["_count"]
"""

DRIFTING = """
class Counter:
    def __init__(self):
        self._count = 0
        self._peak = 0

    def tick(self):
        self._count += 1
        self._peak = max(self._peak, self._count)

    def snapshot_state(self):
        return {"_count": self._count}

    def restore_state(self, state):
        self._count = state["_count"]
"""


def test_covered_attribute_is_clean(lint):
    assert codes(lint(COVERED, select=["RPR011"])) == []


def test_uncaptured_runtime_attribute_fires(lint):
    findings = lint(DRIFTING, select=["RPR011"])
    assert codes(findings) == ["RPR011"]
    assert "_peak" in findings[0].message


def test_restore_and_init_assignments_are_exempt(lint):
    # Only __init__/restore_state write _count; no runtime mutation at all.
    assert codes(lint(COVERED, select=["RPR011"])) == []


def test_incremental_super_snapshot_covers_subclass_keys(lint_project):
    report = lint_project(
        {
            "repro/core/base.py": """
                class Base:
                    def __init__(self):
                        self._a = 0

                    def snapshot_state(self):
                        return {"_a": self._a}
            """,
            "repro/core/child.py": """
                from repro.core.base import Base

                class Child(Base):
                    def __init__(self):
                        super().__init__()
                        self._b = 0

                    def poke(self):
                        self._a += 1
                        self._b += 1

                    def snapshot_state(self):
                        state = super().snapshot_state()
                        state["_b"] = self._b
                        return state
            """,
        },
        select=["RPR011"],
    )
    assert report.findings == []


def test_dynamic_snapshot_class_is_skipped(lint):
    # Key set not statically knowable -> stand down, like RPR010.
    source = """
    class Dyn:
        def poke(self):
            self._x = 1

        def snapshot_state(self):
            return self._collect()
    """
    assert codes(lint(source, select=["RPR011"])) == []


def test_class_without_state_protocol_is_skipped(lint):
    source = """
    class Plain:
        def poke(self):
            self._x = 1
    """
    assert codes(lint(source, select=["RPR011"])) == []


def test_noqa_with_justification_suppresses(lint):
    source = """
    class Counter:
        def __init__(self):
            self._count = 0
            self._cache = None

        def tick(self):
            self._count += 1
            self._cache = self._count * 2  # repro: noqa[RPR011] derived; recomputed on restore

        def snapshot_state(self):
            return {"_count": self._count}
    """
    assert codes(lint(source, select=["RPR011"])) == []


def test_mutation_dropping_real_snapshot_field_is_caught(tmp_path):
    """Deleting one field from cpu.core.Core.snapshot_state must fire.

    This is the acceptance check for the whole rule: the real class,
    really mutated the way a careless refactor would, caught statically
    instead of by checkpoint-fuzz luck.
    """
    source = (REPO_SRC / "repro/cpu/core.py").read_text()
    assert '"_stalled": self._stalled,' in source
    target = tmp_path / "repro/cpu/core.py"
    target.parent.mkdir(parents=True)

    # Unmutated copy: clean.
    target.write_text(source)
    config = AnalysisConfig(select=frozenset({"RPR011"}))
    assert analyze_project([tmp_path], config).findings == []

    # Drop the field from the snapshot dict: RPR011 must name it.
    target.write_text(source.replace('"_stalled": self._stalled,\n', ""))
    findings = analyze_project([tmp_path], config).findings
    assert any(
        f.code == "RPR011" and "_stalled" in f.message for f in findings
    )
