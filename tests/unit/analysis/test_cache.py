"""Incremental cache: warm runs skip parsing, never change findings."""

import textwrap

from repro.analysis import AnalysisConfig, analyze_project
from repro.analysis.model import AnalysisCache
from repro.analysis.model.cache import analysis_signature

TREE = {
    "repro/core/util.py": """
        def twice(x):
            return 2 * x
    """,
    "repro/core/mid.py": """
        from repro.core.util import twice

        def quad(x):
            return twice(twice(x))
    """,
    "repro/core/top.py": """
        import itertools

        from repro.core.mid import quad

        _ids = itertools.count()
    """,
    "repro/core/island.py": """
        ISLAND = True
    """,
}


def _write(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))


def _cache(tmp_path, config):
    signature = analysis_signature(config, [])
    return AnalysisCache.load(tmp_path / "cache.json", signature)


def test_warm_run_skips_parsing_and_matches_cold(tmp_path):
    _write(tmp_path, TREE)
    config = AnalysisConfig()
    cold = analyze_project([tmp_path], config, cache=_cache(tmp_path, config))
    assert cold.stats.files_parsed == 4
    warm = analyze_project([tmp_path], config, cache=_cache(tmp_path, config))
    assert warm.stats.files_parsed == 0
    assert warm.stats.cache_hits == 4
    assert warm.findings == cold.findings
    # RPR002 on the module-level itertools.count() proves findings are
    # cached, not just absent.
    assert any(f.code == "RPR002" for f in warm.findings)


def test_one_file_edit_reanalyzes_only_reverse_closure(tmp_path):
    _write(tmp_path, TREE)
    config = AnalysisConfig()
    analyze_project([tmp_path], config, cache=_cache(tmp_path, config))

    util = tmp_path / "repro/core/util.py"
    util.write_text(util.read_text() + "\nTHRICE = 3\n")
    warm = analyze_project([tmp_path], config, cache=_cache(tmp_path, config))
    assert warm.stats.files_parsed == 1
    reanalyzed = {p.rsplit("/", 1)[-1] for p in warm.analyzed_paths}
    # util itself plus its importers, transitively — but not the island.
    assert reanalyzed == {"util.py", "mid.py", "top.py"}

    cold = analyze_project([tmp_path], config)
    assert warm.findings == cold.findings


def test_edit_introducing_violation_is_caught_warm(tmp_path):
    _write(tmp_path, TREE)
    config = AnalysisConfig()
    analyze_project([tmp_path], config, cache=_cache(tmp_path, config))

    island = tmp_path / "repro/core/island.py"
    island.write_text("import time\n\ndef stamp():\n    return time.time()\n")
    warm = analyze_project([tmp_path], config, cache=_cache(tmp_path, config))
    assert any(
        f.code == "RPR001" and f.path.endswith("island.py")
        for f in warm.findings
    )


def test_signature_change_invalidates_cache(tmp_path):
    _write(tmp_path, TREE)
    config = AnalysisConfig()
    analyze_project([tmp_path], config, cache=_cache(tmp_path, config))

    narrowed = AnalysisConfig(select=frozenset({"RPR001"}))
    cache = AnalysisCache.load(
        tmp_path / "cache.json", analysis_signature(narrowed, ["RPR001"])
    )
    report = analyze_project([tmp_path], narrowed, cache=cache)
    assert report.stats.files_parsed == 4
    assert report.stats.cache_hits == 0


def test_changed_paths_widen_dirty_set_on_warm_cache(tmp_path):
    _write(tmp_path, TREE)
    config = AnalysisConfig()
    analyze_project([tmp_path], config, cache=_cache(tmp_path, config))

    warm = analyze_project(
        [tmp_path],
        config,
        cache=_cache(tmp_path, config),
        changed_paths=[str(tmp_path / "repro/core/util.py")],
    )
    assert warm.stats.files_parsed == 0
    reanalyzed = {p.rsplit("/", 1)[-1] for p in warm.analyzed_paths}
    assert reanalyzed == {"util.py", "mid.py", "top.py"}
