"""RPR007 (no print in library code) and RPR008 (no engine re-entry)."""

from tests.unit.analysis.conftest import codes


class TestNoPrint:
    def test_print_in_library_flagged(self, lint):
        findings = lint(
            """
            def report(rows):
                for row in rows:
                    print(row)
            """,
            select={"RPR007"},
        )
        assert codes(findings) == ["RPR007"]

    def test_main_module_exempt(self, lint):
        findings = lint(
            """
            def main():
                print("ok")
            """,
            module="repro/experiments/__main__.py",
            select={"RPR007"},
        )
        assert findings == []

    def test_reporter_module_exempt(self, lint):
        findings = lint(
            """
            def render(rows):
                print(rows)
            """,
            module="repro/experiments/report.py",
            select={"RPR007"},
        )
        assert findings == []

    def test_noqa_suppresses(self, lint):
        findings = lint(
            """
            def debug(x):
                print(x)  # repro: noqa[RPR007]
            """,
            select={"RPR007"},
        )
        assert findings == []


class TestNoEngineReentry:
    def test_run_inside_component_flagged(self, lint):
        findings = lint(
            """
            class RefreshScheduler:
                def _fire(self):
                    self.engine.run_until(self.deadline)
            """,
            module="repro/dram/fixture.py",
            select={"RPR008"},
        )
        assert codes(findings) == ["RPR008"]

    def test_lambda_callback_flagged(self, lint):
        findings = lint(
            """
            class Controller:
                def kick(self, when):
                    self.engine.schedule_at(when, lambda: self.engine.run())
            """,
            module="repro/dram/fixture.py",
            select={"RPR008"},
        )
        assert codes(findings) == ["RPR008"]

    def test_driver_modules_exempt(self, lint):
        findings = lint(
            """
            class System:
                def run(self):
                    self.engine.run_until(self.end)
            """,
            module="repro/core/system.py",
            select={"RPR008"},
        )
        assert findings == []

    def test_schedule_calls_are_clean(self, lint):
        findings = lint(
            """
            class Controller:
                def kick(self, when, flat):
                    self.engine.schedule_at(when, lambda: self.pick(flat))
            """,
            module="repro/dram/fixture.py",
            select={"RPR008"},
        )
        assert findings == []

    def test_noqa_suppresses(self, lint):
        findings = lint(
            """
            class Tool:
                def drain(self):
                    self.engine.run()  # repro: noqa[RPR008]
            """,
            module="repro/dram/fixture.py",
            select={"RPR008"},
        )
        assert findings == []
