"""RPR005: to_dict/from_dict pairing and hash-stable field coverage."""

from tests.unit.analysis.conftest import codes


def test_one_way_serializer_flagged(lint):
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass
        class Spec:
            name: str

            def to_dict(self):
                return {"name": self.name}
        """,
        select={"RPR005"},
    )
    assert codes(findings) == ["RPR005"]
    assert "from_dict" in findings[0].message


def test_omitted_field_flagged(lint):
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass
        class Spec:
            name: str
            windows: float

            def to_dict(self):
                return {"name": self.name}

            @classmethod
            def from_dict(cls, data):
                return cls(**data)
        """,
        select={"RPR005"},
    )
    assert codes(findings) == ["RPR005"]
    assert "windows" in findings[0].message


def test_field_order_mismatch_flagged(lint):
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass
        class Spec:
            name: str
            windows: float

            def to_dict(self):
                return {"windows": self.windows, "name": self.name}

            @classmethod
            def from_dict(cls, data):
                return cls(**data)
        """,
        select={"RPR005"},
    )
    assert codes(findings) == ["RPR005"]
    assert "order" in findings[0].message


def test_complete_pair_is_clean(lint):
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass
        class Spec:
            name: str
            windows: float

            def to_dict(self):
                return {"name": self.name, "windows": self.windows}

            @classmethod
            def from_dict(cls, data):
                return cls(**data)
        """,
        select={"RPR005"},
    )
    assert findings == []


def test_plain_dataclass_without_serializers_is_clean(lint):
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass
        class Stats:
            hits: int = 0
        """,
        select={"RPR005"},
    )
    assert findings == []


def test_noqa_suppresses(lint):
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass
        class Spec:  # repro: noqa[RPR005]
            name: str

            def to_dict(self):
                return {"name": self.name}
        """,
        select={"RPR005"},
    )
    assert findings == []


# -- RPR010: snapshot_state/restore_state pairing ---------------------------------


def test_snapshot_without_restore_flagged(lint):
    findings = lint(
        """
        class Engine:
            def __init__(self):
                self.now = 0

            def snapshot_state(self):
                return {"now": self.now}
        """,
        select={"RPR010"},
    )
    assert codes(findings) == ["RPR010"]
    assert "restore_state" in findings[0].message


def test_restore_without_snapshot_flagged(lint):
    findings = lint(
        """
        class Engine:
            def __init__(self):
                self.now = 0

            def restore_state(self, state):
                self.now = state["now"]
        """,
        select={"RPR010"},
    )
    assert codes(findings) == ["RPR010"]
    assert "snapshot_state" in findings[0].message


def test_unbacked_snapshot_key_flagged(lint):
    findings = lint(
        """
        class Core:
            def __init__(self):
                self.cycles = 0

            def snapshot_state(self):
                return {"cycles": self.cycles, "stalls": 0}

            def restore_state(self, state):
                self.cycles = state["cycles"]
        """,
        select={"RPR010"},
    )
    assert codes(findings) == ["RPR010"]
    assert "stalls" in findings[0].message


def test_attribute_backed_pair_is_clean(lint):
    findings = lint(
        """
        class Core:
            def __init__(self):
                self.cycles = 0

            def attach(self, engine):
                self.engine_now = engine.now

            def snapshot_state(self):
                return {"cycles": self.cycles, "engine_now": self.engine_now}

            def restore_state(self, state):
                self.cycles = state["cycles"]
                self.engine_now = state["engine_now"]
        """,
        select={"RPR010"},
    )
    assert findings == []


def test_slots_back_snapshot_keys(lint):
    findings = lint(
        """
        class Hub:
            __slots__ = ("enabled", "_clock")

            def snapshot_state(self):
                return {"enabled": self.enabled, "_clock": self._clock}

            def restore_state(self, state):
                self.enabled = state["enabled"]
        """,
        select={"RPR010"},
    )
    assert findings == []


def test_incremental_snapshot_builder_skipped(lint):
    findings = lint(
        """
        class System:
            def __init__(self):
                self.engine = None

            def snapshot_state(self):
                state = {}
                state["engine"] = self.engine
                state["whatever_key"] = 1
                return state

            def restore_state(self, state):
                self.engine = state["engine"]
        """,
        select={"RPR010"},
    )
    assert findings == []


def test_rpr010_noqa_suppresses(lint):
    findings = lint(
        """
        class Engine:  # repro: noqa[RPR010]
            def __init__(self):
                self.now = 0

            def snapshot_state(self):
                return {"now": self.now}
        """,
        select={"RPR010"},
    )
    assert findings == []
