"""RPR005: to_dict/from_dict pairing and hash-stable field coverage."""

from tests.unit.analysis.conftest import codes


def test_one_way_serializer_flagged(lint):
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass
        class Spec:
            name: str

            def to_dict(self):
                return {"name": self.name}
        """,
        select={"RPR005"},
    )
    assert codes(findings) == ["RPR005"]
    assert "from_dict" in findings[0].message


def test_omitted_field_flagged(lint):
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass
        class Spec:
            name: str
            windows: float

            def to_dict(self):
                return {"name": self.name}

            @classmethod
            def from_dict(cls, data):
                return cls(**data)
        """,
        select={"RPR005"},
    )
    assert codes(findings) == ["RPR005"]
    assert "windows" in findings[0].message


def test_field_order_mismatch_flagged(lint):
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass
        class Spec:
            name: str
            windows: float

            def to_dict(self):
                return {"windows": self.windows, "name": self.name}

            @classmethod
            def from_dict(cls, data):
                return cls(**data)
        """,
        select={"RPR005"},
    )
    assert codes(findings) == ["RPR005"]
    assert "order" in findings[0].message


def test_complete_pair_is_clean(lint):
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass
        class Spec:
            name: str
            windows: float

            def to_dict(self):
                return {"name": self.name, "windows": self.windows}

            @classmethod
            def from_dict(cls, data):
                return cls(**data)
        """,
        select={"RPR005"},
    )
    assert findings == []


def test_plain_dataclass_without_serializers_is_clean(lint):
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass
        class Stats:
            hits: int = 0
        """,
        select={"RPR005"},
    )
    assert findings == []


def test_noqa_suppresses(lint):
    findings = lint(
        """
        from dataclasses import dataclass

        @dataclass
        class Spec:  # repro: noqa[RPR005]
            name: str

            def to_dict(self):
                return {"name": self.name}
        """,
        select={"RPR005"},
    )
    assert findings == []
