"""RPR002: module-level mutable state and mutable default arguments."""

from tests.unit.analysis.conftest import codes


def test_module_scope_itertools_count_flagged(lint):
    # The exact shape of the task-id bug PR 1 fixed.
    findings = lint(
        """
        import itertools

        _task_ids = itertools.count()
        """,
        select={"RPR002"},
    )
    assert codes(findings) == ["RPR002"]
    assert "process-global" in findings[0].message


def test_count_flagged_even_allcaps_or_from_import(lint):
    findings = lint(
        """
        from itertools import count

        NEXT_IDS = count()
        """,
        select={"RPR002"},
    )
    assert codes(findings) == ["RPR002"]


def test_lowercase_mutable_global_flagged(lint):
    findings = lint(
        """
        _cache = {}
        registry = []
        """,
        select={"RPR002"},
    )
    assert codes(findings) == ["RPR002", "RPR002"]


def test_constant_tables_and_dunders_exempt(lint):
    findings = lint(
        """
        __all__ = ["a", "b"]

        DENSITY_TABLE = {8: 350.0, 16: 530.0}
        BANKS = (0, 1, 2, 3)
        """,
        select={"RPR002"},
    )
    assert findings == []


def test_mutable_default_argument_flagged(lint):
    findings = lint(
        """
        def collect(item, into=[]):
            into.append(item)
            return into
        """,
        select={"RPR002"},
    )
    assert codes(findings) == ["RPR002"]
    assert "default" in findings[0].message


def test_function_local_mutables_are_clean(lint):
    findings = lint(
        """
        def build():
            cache = {}
            items = []
            return cache, items
        """,
        select={"RPR002"},
    )
    assert findings == []


def test_noqa_suppresses(lint):
    findings = lint(
        """
        import itertools

        _ids = itertools.count()  # repro: noqa[RPR002]
        """,
        select={"RPR002"},
    )
    assert findings == []
