"""RPR006: unit-suffix discipline in timing arithmetic."""

from tests.unit.analysis.conftest import codes


def test_mixed_suffix_addition_flagged(lint):
    findings = lint(
        """
        def total(trfc_ns, window_ck):
            return trfc_ns + window_ck
        """,
        select={"RPR006"},
    )
    assert codes(findings) == ["RPR006"]
    assert "_ck" in findings[0].message and "_ns" in findings[0].message


def test_mixed_suffix_comparison_flagged(lint):
    findings = lint(
        """
        def overdue(deadline_ns, now_ck):
            return now_ck >= deadline_ns
        """,
        select={"RPR006"},
    )
    assert codes(findings) == ["RPR006"]


def test_attribute_suffixes_seen(lint):
    findings = lint(
        """
        def total(cfg, now_ck):
            return cfg.trefi_ab_us - now_ck
        """,
        select={"RPR006"},
    )
    assert codes(findings) == ["RPR006"]


def test_one_finding_per_mixed_chain(lint):
    findings = lint(
        """
        def total(a_ns, b_ck, c_ck):
            return a_ns + b_ck + c_ck
        """,
        select={"RPR006"},
    )
    assert codes(findings) == ["RPR006"]


def test_same_suffix_arithmetic_is_clean(lint):
    findings = lint(
        """
        def total(trcd_ns, trp_ns, tras_ns):
            return trcd_ns + trp_ns + tras_ns
        """,
        select={"RPR006"},
    )
    assert findings == []


def test_conversion_call_is_a_boundary(lint):
    findings = lint(
        """
        def total(cpu, trfc_ns, window_ck):
            return cpu.cycles(ns(trfc_ns)) + window_ck
        """,
        select={"RPR006"},
    )
    assert findings == []


def test_multiplicative_conversion_is_clean(lint):
    # Multiplying/dividing across units is how conversions are written.
    findings = lint(
        """
        def cycles(duration_ns, freq_mhz):
            return duration_ns * freq_mhz / 1000.0
        """,
        select={"RPR006"},
    )
    assert findings == []


def test_noqa_suppresses(lint):
    findings = lint(
        """
        def total(a_ns, b_ck):
            return a_ns + b_ck  # repro: noqa[RPR006]
        """,
        select={"RPR006"},
    )
    assert findings == []
