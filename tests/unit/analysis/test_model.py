"""Project model: import graph, reverse closure, state keys, call edges."""

import textwrap

import ast

from repro.analysis import AnalysisConfig
from repro.analysis.engine import FileContext
from repro.analysis.model import ModuleSummary, ProjectModel, extract_summary


def _summary(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    text = textwrap.dedent(source)
    path.write_text(text)
    ctx = FileContext(path, text, ast.parse(text), AnalysisConfig())
    return extract_summary(ctx)


def _model(tmp_path, files):
    return ProjectModel(
        _summary(tmp_path, rel, source) for rel, source in files.items()
    )


def test_import_graph_and_reverse_closure(tmp_path):
    model = _model(
        tmp_path,
        {
            "repro/core/a.py": "X = 1\n",
            "repro/core/b.py": "from repro.core.a import X\n",
            "repro/core/c.py": "import repro.core.b\n",
            "repro/core/d.py": "Y = 2\n",
        },
    )
    assert model.importers_of("repro.core.a") == ("repro.core.b",)
    # Editing a must re-analyze b (direct importer) and c (transitive).
    closure = model.reverse_closure(["repro.core.a"])
    assert closure == {"repro.core.a", "repro.core.b", "repro.core.c"}
    assert "repro.core.d" not in closure


def test_effective_state_keys_union_along_mro(tmp_path):
    model = _model(
        tmp_path,
        {
            "repro/core/base.py": """
                class Base:
                    def snapshot_state(self):
                        return {"a": self.a}
            """,
            "repro/core/child.py": """
                from repro.core.base import Base

                class Child(Base):
                    def snapshot_state(self):
                        state = super().snapshot_state()
                        state["b"] = self.b
                        return state
            """,
        },
    )
    keys, analyzable = model.effective_state_keys(
        "repro.core.child", model.classes["repro.core.child.Child"][1]
    )
    assert analyzable
    assert {"a", "b"} <= set(keys)


def test_dynamic_snapshot_is_unanalyzable(tmp_path):
    model = _model(
        tmp_path,
        {
            "repro/core/dyn.py": """
                class Dyn:
                    def snapshot_state(self):
                        return self._build_state()
            """,
        },
    )
    keys, analyzable = model.effective_state_keys(
        "repro.core.dyn", model.classes["repro.core.dyn.Dyn"][1]
    )
    assert not analyzable


def test_resolve_self_call_through_base(tmp_path):
    model = _model(
        tmp_path,
        {
            "repro/core/base.py": """
                class Base:
                    def helper(self):
                        pass
            """,
            "repro/core/child.py": """
                from repro.core.base import Base

                class Child(Base):
                    def go(self):
                        self.helper()
            """,
        },
    )
    fn = model.functions["repro.core.child.Child.go"]
    (site,) = [s for s in fn.calls if s.is_self_call]
    resolved = model.resolve_call("repro.core.child.Child.go", site)
    assert resolved == "repro.core.base.Base.helper"


def test_summary_round_trips_through_json(tmp_path):
    summary = _summary(
        tmp_path,
        "repro/core/rt.py",
        """
        import repro.dram.controller

        class Thing:
            def __init__(self):
                self._x = 0

            def bump(self, delta_ns):
                self._x += delta_ns
                self.engine.schedule(0, self._fire)

            def snapshot_state(self):
                return {"_x": self._x}

            def _fire(self):
                pass
        """,
    )
    clone = ModuleSummary.from_dict(summary.to_dict())
    assert clone == summary
