"""Baseline: grandfathering, line-shift robustness, error handling."""

import pytest

from repro.analysis.baseline import (
    filter_baselined,
    fingerprint_findings,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import Finding
from repro.errors import ConfigError


def make_finding(code="RPR001", path="a.py", line=3, message="boom"):
    return Finding(code=code, path=path, line=line, col=1, message=message)


def test_roundtrip_suppresses_grandfathered(tmp_path):
    findings = [make_finding(), make_finding(code="RPR007", message="print")]
    baseline_path = tmp_path / "baseline.json"
    assert write_baseline(baseline_path, findings) == 2
    baseline = load_baseline(baseline_path)
    kept, dropped = filter_baselined(findings, baseline)
    assert kept == [] and dropped == 2


def test_fingerprint_ignores_line_numbers(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, [make_finding(line=3)])
    baseline = load_baseline(baseline_path)
    kept, dropped = filter_baselined([make_finding(line=40)], baseline)
    assert kept == [] and dropped == 1


def test_new_occurrence_of_same_violation_still_fires(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, [make_finding(line=3)])
    baseline = load_baseline(baseline_path)
    # A second identical violation in the same file is new work, not
    # grandfathered history.
    kept, dropped = filter_baselined(
        [make_finding(line=3), make_finding(line=90)], baseline
    )
    assert dropped == 1 and len(kept) == 1


def test_distinct_occurrences_get_distinct_fingerprints():
    pairs = fingerprint_findings([make_finding(line=3), make_finding(line=90)])
    assert len({fp for _, fp in pairs}) == 2


def test_missing_baseline_is_config_error(tmp_path):
    with pytest.raises(ConfigError):
        load_baseline(tmp_path / "nope.json")


def test_malformed_baseline_is_config_error(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ConfigError):
        load_baseline(bad)
    bad.write_text('{"version": 99, "fingerprints": {}}')
    with pytest.raises(ConfigError):
        load_baseline(bad)
