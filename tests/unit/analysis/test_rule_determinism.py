"""RPR001: unseeded randomness / wall clock in simulator packages."""

from tests.unit.analysis.conftest import codes


def test_wall_clock_flagged(lint):
    findings = lint(
        """
        import time

        def stamp():
            return time.time()
        """,
        select={"RPR001"},
    )
    assert codes(findings) == ["RPR001"]
    assert "wall clock" in findings[0].message


def test_module_global_rng_flagged_even_via_from_import(lint):
    findings = lint(
        """
        import random
        from random import randint

        def roll():
            return random.choice([1, 2]) + randint(1, 6)
        """,
        select={"RPR001"},
    )
    assert codes(findings) == ["RPR001", "RPR001"]


def test_import_alias_resolved(lint):
    findings = lint(
        """
        import time as t

        def stamp():
            return t.time_ns()
        """,
        select={"RPR001"},
    )
    assert codes(findings) == ["RPR001"]


def test_seeded_random_instance_is_clean(lint):
    findings = lint(
        """
        import random

        def build(seed):
            return random.Random(seed * 100_003)
        """,
        select={"RPR001"},
    )
    assert findings == []


def test_rule_scoped_to_pure_packages(lint):
    findings = lint(
        """
        import time

        def elapsed(start):
            return time.time() - start
        """,
        module="repro/experiments/fixture.py",
        select={"RPR001"},
    )
    assert findings == []


def test_noqa_suppresses(lint):
    findings = lint(
        """
        import time

        def stamp():
            return time.time()  # repro: noqa[RPR001]
        """,
        select={"RPR001"},
    )
    assert findings == []
