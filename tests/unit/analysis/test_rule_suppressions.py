"""RPR015: stale noqa comments and dead baseline entries are reported."""

import textwrap

from pathlib import Path

from repro.analysis import AnalysisConfig, analyze_project
from repro.analysis.baseline import load_baseline_entries, write_baseline


def _codes(report):
    return [f.code for f in report.findings]


LIVE_NOQA = """
import itertools

_ids = itertools.count()  # repro: noqa[RPR002] single shared id spring
"""

STALE_NOQA = """
IDS = (1, 2, 3)  # repro: noqa[RPR002] nothing mutable here any more
"""

UNKNOWN_CODE = """
IDS = (1, 2, 3)  # repro: noqa[RPR999] typo'd code
"""

STALE_BLANKET = """
IDS = (1, 2, 3)  # repro: noqa
"""

QUOTED_IN_DOCSTRING = '''
def helper():
    """Suppress with '# repro: noqa[RPR002]' when justified."""
    return 1
'''


def test_live_noqa_is_not_flagged(lint_project):
    report = lint_project({"repro/core/a.py": LIVE_NOQA})
    assert _codes(report) == []


def test_stale_noqa_code_is_flagged(lint_project):
    report = lint_project({"repro/core/a.py": STALE_NOQA})
    assert _codes(report) == ["RPR015"]
    assert "RPR002" in report.findings[0].message


def test_unknown_noqa_code_is_flagged(lint_project):
    report = lint_project({"repro/core/a.py": UNKNOWN_CODE})
    assert _codes(report) == ["RPR015"]
    assert "RPR999" in report.findings[0].message


def test_stale_blanket_noqa_is_flagged_on_full_runs(lint_project):
    report = lint_project({"repro/core/a.py": STALE_BLANKET})
    assert _codes(report) == ["RPR015"]


def test_blanket_noqa_not_audited_under_select(lint_project):
    # A --select run can't know whether the blanket suppression matches
    # one of the rules that didn't run.
    report = lint_project(
        {"repro/core/a.py": STALE_BLANKET}, select=["RPR001", "RPR015"]
    )
    assert _codes(report) == []


def test_noqa_syntax_quoted_in_docstring_is_ignored(lint_project):
    report = lint_project({"repro/core/a.py": QUOTED_IN_DOCSTRING})
    assert _codes(report) == []


def test_rpr015_cannot_be_suppressed_by_noqa(lint_project):
    source = """
    IDS = (1, 2, 3)  # repro: noqa[RPR002,RPR015] trying to self-vouch
    """
    report = lint_project({"repro/core/a.py": source})
    assert _codes(report) == ["RPR015"]


def test_dead_baseline_entry_is_flagged(tmp_path):
    dirty = tmp_path / "repro/core/a.py"
    dirty.parent.mkdir(parents=True)
    dirty.write_text(
        textwrap.dedent(
            """
            import itertools

            _ids = itertools.count()
            """
        )
    )
    baseline = tmp_path / "baseline.json"
    config = AnalysisConfig()
    report = analyze_project([tmp_path], config)
    write_baseline(baseline, report.findings)

    # Fix the violation; the grandfather record is now dead.
    dirty.write_text("IDS = (1, 2, 3)\n")
    entries = load_baseline_entries(baseline)
    report = analyze_project(
        [tmp_path],
        config,
        baseline_entries=entries,
        baseline_path=str(baseline),
    )
    dead = [f for f in report.findings if f.code == "RPR015"]
    assert len(dead) == 1
    assert dead[0].path == str(baseline)
    assert "RPR002" in dead[0].message


def test_live_baseline_entry_is_not_flagged(tmp_path):
    dirty = tmp_path / "repro/core/a.py"
    dirty.parent.mkdir(parents=True)
    dirty.write_text("import itertools\n\n_ids = itertools.count()\n")
    baseline = tmp_path / "baseline.json"
    config = AnalysisConfig()
    write_baseline(baseline, analyze_project([tmp_path], config).findings)

    report = analyze_project(
        [tmp_path],
        config,
        baseline_entries=load_baseline_entries(baseline),
        baseline_path=str(baseline),
    )
    assert [f.code for f in report.findings if f.code == "RPR015"] == []
