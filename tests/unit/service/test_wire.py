"""Unit tests for the line-oriented wire format."""

import json

import pytest

from repro.errors import WireError
from repro.telemetry.events import DramCommandEvent, SpanEvent
from repro.telemetry.wire import (
    SUPPORTED_WIRE_SCHEMAS,
    WIRE_SCHEMA,
    WireSink,
    decode_frame,
    encode_frame,
    event_from_frame,
    span_frame,
    span_from_frame,
    telemetry_frame,
)


def _event(time=7):
    return DramCommandEvent(
        time=time, op="RD", channel=0, rank=0, bank=3,
        row_hit=True, task_id=2, latency=40, refresh_stall=False,
    )


def test_encode_decode_round_trip():
    frame = {"type": "ping", "id": 1}
    line = encode_frame(frame)
    assert line.endswith(b"\n")
    decoded = decode_frame(line)
    assert decoded == {"v": WIRE_SCHEMA, "type": "ping", "id": 1}


def test_encode_is_canonical_single_line():
    line = encode_frame({"b": 1, "a": {"z": 2, "y": 3}})
    text = line.decode("utf-8")
    assert text.count("\n") == 1
    # sort_keys + tight separators: byte-stable across runs.
    assert text == '{"a":{"y":3,"z":2},"b":1,"v":2}\n'


def test_encode_can_downgrade_for_old_peers():
    """The server replies to a v1 request in v1 (version negotiation)."""
    line = encode_frame({"type": "pong"}, version=1)
    assert decode_frame(line) == {"v": 1, "type": "pong"}
    with pytest.raises(WireError, match="cannot encode"):
        encode_frame({"type": "pong"}, version=99)


def test_decode_accepts_every_supported_version():
    assert WIRE_SCHEMA in SUPPORTED_WIRE_SCHEMAS
    for version in SUPPORTED_WIRE_SCHEMAS:
        frame = decode_frame(encode_frame({"type": "ping"}, version=version))
        assert frame["v"] == version


def test_decode_rejects_wrong_version():
    line = encode_frame({"type": "ping"}).replace(b'"v":2', b'"v":99')
    with pytest.raises(WireError, match="wire schema mismatch"):
        decode_frame(line)


def test_decode_rejects_missing_version():
    with pytest.raises(WireError, match="wire schema mismatch"):
        decode_frame(json.dumps({"type": "ping"}))


def test_decode_rejects_garbage():
    with pytest.raises(WireError, match="not valid JSON"):
        decode_frame(b"{nope")
    with pytest.raises(WireError, match="JSON object"):
        decode_frame(b"[1,2,3]")
    with pytest.raises(WireError, match="not UTF-8"):
        decode_frame(b"\xff\xfe")


def test_telemetry_frame_round_trips_typed_event():
    event = _event()
    frame = telemetry_frame(event, job="abc123")
    assert frame["type"] == "telemetry"
    assert frame["job"] == "abc123"
    # Over the wire and back: the typed event survives intact.
    restored = event_from_frame(decode_frame(encode_frame(frame)))
    assert restored == event


def test_event_from_frame_rejects_other_frames():
    with pytest.raises(WireError, match="not a telemetry frame"):
        event_from_frame({"type": "result"})


def test_span_frame_round_trips_span_event():
    span = SpanEvent(
        time=3, trace_id="t" * 16, name="execute", job="abc123",
        parent=0, cycles=1024, detail="k", wall_start_us=5, wall_dur_us=9,
    )
    frame = span_frame(span, job="abc123")
    assert frame["type"] == "span" and frame["job"] == "abc123"
    restored = span_from_frame(decode_frame(encode_frame(frame)))
    assert restored == span
    with pytest.raises(WireError, match="not a span frame"):
        span_from_frame({"type": "telemetry"})


def test_wire_sink_sends_one_frame_per_event():
    frames = []
    sink = WireSink(frames.append, job="j1")
    for t in range(3):
        sink.emit(_event(time=t))
    assert sink.sent == 3
    assert [f["event"]["time"] for f in frames] == [0, 1, 2]
    assert all(f["job"] == "j1" and f["type"] == "telemetry" for f in frames)


def test_wire_sink_frames_match_jsonl_serialization():
    """The streamed event payload is byte-identical to a JsonlSink line."""
    frames = []
    sink = WireSink(frames.append)
    event = _event()
    sink.emit(event)
    streamed = json.dumps(
        frames[0]["event"], sort_keys=True, separators=(",", ":")
    )
    local = json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))
    assert streamed == local
