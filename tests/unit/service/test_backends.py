"""Unit tests for the worker-backend seam."""

import json

import pytest

from repro.core.simulator import make_run_spec, run_spec
from repro.errors import ServiceError
from repro.service.backends import (
    BACKENDS,
    InlineBackend,
    RemoteBackend,
    ThreadBackend,
    make_backend,
)

FAST = dict(num_windows=0.25, warmup_windows=0.05, refresh_scale=1024)


def _spec(scenario="per_bank"):
    return make_run_spec("WL-9", scenario, **FAST)


def _canon(result):
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_each_backend_matches_direct_run_spec(name):
    spec = _spec()
    backend = make_backend(name, jobs=1)
    try:
        result = backend.submit(spec).result(timeout=120)
    finally:
        backend.close()
    assert _canon(result) == _canon(run_spec(spec))


def test_inline_backend_surfaces_errors_through_future():
    backend = InlineBackend()
    # Anything that blows up inside run_spec must come back through the
    # future, exactly like a process-pool failure would.
    future = backend.submit(object())
    assert future.exception() is not None


def test_thread_backend_close_is_idempotent():
    backend = ThreadBackend(jobs=1)
    backend.submit(_spec()).result(timeout=120)
    backend.close()
    backend.close()


def test_thread_backend_rejects_bad_job_count():
    with pytest.raises(ServiceError):
        ThreadBackend(jobs=0)


def test_make_backend_rejects_unknown_name():
    with pytest.raises(ServiceError, match="unknown backend"):
        make_backend("quantum")


def test_remote_backend_is_a_stub():
    backend = RemoteBackend("tcp://elsewhere:7341")
    assert backend.target == "tcp://elsewhere:7341"
    with pytest.raises(ServiceError, match="not\\s+implemented"):
        backend.submit(_spec())
