"""Unit tests for the client's bounded-exponential connect backoff."""

import socket

import pytest

import repro.service.client as client_mod
from repro.errors import ServiceError, ServiceUnavailable
from repro.service.client import ServiceClient, backoff_schedule


def _dead_port() -> int:
    """A port nothing is listening on (bound then released)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def test_backoff_schedule_doubles_and_caps():
    assert backoff_schedule(0, 0.2, 2.0) == []
    assert backoff_schedule(5, 0.2, 2.0) == [0.2, 0.4, 0.8, 1.6, 2.0]
    assert backoff_schedule(3, 1.0, 1.0) == [1.0, 1.0, 1.0]


def test_connect_failure_sleeps_the_schedule(monkeypatch):
    slept = []
    monkeypatch.setattr(client_mod.time, "sleep", slept.append)
    with pytest.raises(ServiceUnavailable, match="after 4 attempt"):
        ServiceClient(port=_dead_port(), connect_retries=3,
                      retry_delay=0.2, retry_max_delay=0.5)
    # One sleep per retry, none after the final attempt.
    assert slept == [0.2, 0.4, 0.5]


def test_no_retries_fails_fast(monkeypatch):
    slept = []
    monkeypatch.setattr(client_mod.time, "sleep", slept.append)
    with pytest.raises(ServiceUnavailable, match="after 1 attempt"):
        ServiceClient(port=_dead_port(), connect_retries=0)
    assert slept == []


def test_service_unavailable_is_a_service_error():
    """Callers catching ServiceError keep working across the change."""
    assert issubclass(ServiceUnavailable, ServiceError)
