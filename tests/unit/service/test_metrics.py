"""Unit tests for service latency histograms and Prometheus exposition."""

import urllib.request

from repro.service.metrics import (
    CYCLE_BUCKETS,
    Histogram,
    ServiceMetrics,
    start_metrics_http,
)


def test_histogram_buckets_are_inclusive_upper_bounds():
    hist = Histogram((10, 100, 1000))
    for value in (1, 10, 11, 100, 5000):
        hist.observe(value)
    snap = hist.snapshot()
    # 1 and 10 land in le=10; 11 and 100 in le=100; 5000 overflows.
    assert snap["buckets"] == {"10": 2, "100": 2, "+Inf": 1}
    assert snap["count"] == 5
    assert snap["sum"] == 1 + 10 + 11 + 100 + 5000


def test_empty_buckets_are_omitted_from_snapshots():
    hist = Histogram(CYCLE_BUCKETS)
    hist.observe(20_000)
    snap = hist.snapshot()
    assert snap["buckets"] == {"32768": 1}
    assert snap["count"] == 1


def test_deterministic_snapshot_excludes_wall_everywhere():
    metrics = ServiceMetrics()
    metrics.observe("executed", 20_000, wall_us=123_456)
    metrics.observe("memo", 20_000, wall_us=7)
    det = metrics.deterministic_snapshot()
    assert det["tiers"]["executed"] == 1
    assert det["tiers"]["memo"] == 1
    assert "wall" not in repr(sorted(det))
    flat = str(det)
    assert "123456" not in flat and "wall" not in flat
    # The wall histograms live in their own artifact-only snapshot.
    wall = metrics.wall_snapshot()
    assert wall["memo"]["buckets"] == {"8": 1}


def test_identical_request_streams_render_identical_prometheus_text():
    def build():
        metrics = ServiceMetrics()
        metrics.observe("executed", 20_000, wall_us=999)
        metrics.observe("memo", 20_000, wall_us=1)
        metrics.observe("memo", 40_000, wall_us=2)
        return metrics

    counters = {"runs_executed": 1, "memo_hits": 2, "caching": True}
    a = build().render_prometheus(counters=counters, info={"backend": "inline"})
    # Deterministic sections match exactly even though wall inputs differ
    # run to run — strip the artifact histogram before comparing.
    b = ServiceMetrics()
    b.observe("executed", 20_000, wall_us=123)
    b.observe("memo", 20_000, wall_us=456)
    b.observe("memo", 40_000, wall_us=789)
    b_text = b.render_prometheus(counters=counters, info={"backend": "inline"})

    def deterministic_lines(text):
        return [line for line in text.splitlines()
                if "wall_latency" not in line]

    assert deterministic_lines(a) == deterministic_lines(b_text)
    assert 'repro_service_info{backend="inline"} 1' in a
    assert 'repro_service_counter{name="caching"} 1' in a
    assert 'repro_service_counter{name="runs_executed"} 1' in a
    assert 'repro_service_requests_total{tier="memo"} 2' in a


def test_prometheus_histogram_lines_are_cumulative():
    metrics = ServiceMetrics()
    metrics.observe("memo", 1024, wall_us=1)
    metrics.observe("memo", 20_000, wall_us=1)
    metrics.observe("memo", 1 << 40, wall_us=1)  # overflow bucket
    text = metrics.render_prometheus()
    assert ('repro_service_simulated_cycles_bucket'
            '{tier="memo",le="1024"} 1') in text
    assert ('repro_service_simulated_cycles_bucket'
            '{tier="memo",le="32768"} 2') in text
    assert ('repro_service_simulated_cycles_bucket'
            '{tier="memo",le="+Inf"} 3') in text
    assert 'repro_service_simulated_cycles_count{tier="memo"} 3' in text


def test_unknown_tier_is_auto_registered():
    metrics = ServiceMetrics()
    metrics.observe("weird_tier", 10, wall_us=1)
    assert metrics.deterministic_snapshot()["tiers"]["weird_tier"] == 1


def test_http_exposition_serves_live_counters():
    metrics = ServiceMetrics()
    metrics.observe("executed", 20_000, wall_us=5)
    counters = {"runs_executed": 1}
    server = start_metrics_http(
        metrics, lambda: counters, info={"backend": "thread"}, port=0
    )
    try:
        port = server.server_address[1]
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=10
        ) as resp:
            body = resp.read().decode("utf-8")
            assert resp.headers["Content-Type"].startswith("text/plain")
        assert body == metrics.render_prometheus(
            counters=counters, info={"backend": "thread"}
        )
        # Scrapes are live: counters_fn is re-read per request.
        counters["runs_executed"] = 5
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=10
        ) as resp:
            assert 'name="runs_executed"} 5' in resp.read().decode("utf-8")
    finally:
        server.shutdown()
