"""Unit tests for the discrete-event engine."""

import pytest

from repro.core.engine import Engine
from repro.errors import SimulationError


def test_starts_at_time_zero():
    assert Engine().now == 0


def test_schedule_and_run_until_executes_in_order():
    eng = Engine()
    order = []
    eng.schedule(30, lambda: order.append("c"))
    eng.schedule(10, lambda: order.append("a"))
    eng.schedule(20, lambda: order.append("b"))
    eng.run_until(100)
    assert order == ["a", "b", "c"]
    assert eng.now == 100


def test_same_time_events_run_in_insertion_order():
    eng = Engine()
    order = []
    for tag in range(5):
        eng.schedule(7, lambda t=tag: order.append(t))
    eng.run_until(7)
    assert order == [0, 1, 2, 3, 4]


def test_run_until_stops_before_later_events():
    eng = Engine()
    hits = []
    eng.schedule(5, lambda: hits.append(5))
    eng.schedule(50, lambda: hits.append(50))
    eng.run_until(10)
    assert hits == [5]
    assert eng.now == 10
    eng.run_until(60)
    assert hits == [5, 50]


def test_events_scheduled_during_execution_run():
    eng = Engine()
    hits = []

    def first():
        hits.append(eng.now)
        eng.schedule(5, lambda: hits.append(eng.now))

    eng.schedule(10, first)
    eng.run_until(100)
    assert hits == [10, 15]


def test_cancelled_event_does_not_fire():
    eng = Engine()
    hits = []
    event = eng.schedule_event(10, lambda: hits.append("x"))
    event.cancel()
    eng.run_until(100)
    assert hits == []


def test_cannot_schedule_in_the_past():
    eng = Engine()
    eng.schedule(10, lambda: None)
    eng.run_until(10)
    with pytest.raises(SimulationError):
        eng.schedule_at(5, lambda: None)
    with pytest.raises(SimulationError):
        eng.schedule(-1, lambda: None)


def test_schedule_at_current_time_allowed():
    eng = Engine()
    hits = []
    eng.schedule(10, lambda: eng.schedule(0, lambda: hits.append(eng.now)))
    eng.run_until(10)
    assert hits == [10]


def test_step_returns_false_when_empty():
    eng = Engine()
    assert eng.step() is False
    eng.schedule(1, lambda: None)
    assert eng.step() is True
    assert eng.step() is False


def test_peek_time_skips_cancelled():
    eng = Engine()
    e1 = eng.schedule_event(5, lambda: None)
    eng.schedule(9, lambda: None)
    e1.cancel()
    assert eng.peek_time() == 9


def test_run_drains_queue():
    eng = Engine()
    hits = []
    for t in (3, 1, 2):
        eng.schedule(t, lambda t=t: hits.append(t))
    eng.run()
    assert hits == [1, 2, 3]


def test_events_processed_counter():
    eng = Engine()
    for t in range(4):
        eng.schedule(t, lambda: None)
    cancelled = eng.schedule_event(9, lambda: None)
    cancelled.cancel()
    eng.run_until(100)
    assert eng.events_processed == 4


def test_schedule_at_now_runs_this_cycle():
    eng = Engine()
    hits = []
    eng.schedule(5, lambda: eng.schedule_at(eng.now, lambda: hits.append(eng.now)))
    eng.run_until(5)
    assert hits == [5]


def test_same_time_tie_break_with_mixed_entry_kinds():
    """Insertion order is preserved across bare callables, cancellable
    handles and pooled arg-carrying events sharing one cycle."""
    eng = Engine()
    order = []
    eng.schedule(3, lambda: order.append("bare0"))
    eng.schedule_event(3, lambda: order.append("handle1"))
    eng.schedule(3, order.append, "arg2")
    eng.schedule(3, lambda: order.append("bare3"))
    eng.run()
    assert order == ["bare0", "handle1", "arg2", "bare3"]


def test_tie_break_stable_after_pool_reuse():
    eng = Engine()
    first = []
    for i in range(4):
        eng.schedule(1, first.append, i)
    eng.run_until(1)
    second = []
    for i in range(4):  # these reuse pooled Event objects
        eng.schedule(1, second.append, i)
    eng.run_until(2)
    assert first == [0, 1, 2, 3]
    assert second == [0, 1, 2, 3]


def test_cancel_is_idempotent_and_safe_after_fire_time():
    eng = Engine()
    hits = []
    event = eng.schedule_event(5, lambda: hits.append("a"))
    eng.schedule(5, lambda: hits.append("b"))
    event.cancel()
    event.cancel()  # repeated cancel: no-op
    eng.run_until(5)
    assert hits == ["b"]
    event.cancel()  # after its cycle passed: still a no-op
    assert eng.events_processed == 1


def test_run_until_advances_clock_with_empty_queue():
    eng = Engine()
    eng.run_until(123)
    assert eng.now == 123
    assert eng.events_processed == 0
    eng.run_until(123)  # not past the target: clock stays put
    assert eng.now == 123


def test_events_processed_invariant_across_identical_specs():
    """Same scheduling program => same events_processed, fire order and
    final clock — the invariance the CI bench job gates on."""

    def program(eng):
        out = []
        ticks = [0]

        def tick():
            ticks[0] += 1
            out.append(eng.now)
            if ticks[0] < 50:
                eng.schedule(3, tick)

        eng.schedule(0, tick)
        handles = [
            eng.schedule_event(7 * i, out.append, -i) for i in range(1, 6)
        ]
        handles[2].cancel()
        eng.run()
        return out, eng.events_processed, eng.now

    first = program(Engine())
    second = program(Engine())
    assert first == second
    assert first[1] == 50 + 4


def test_mass_cancel_from_callback_during_run():
    """Regression: cancel() can trigger _compact() from inside a callback
    while run() holds local aliases to _times/_buckets.  Compaction must
    mutate both in place — rebinding _times used to desync the aliases
    (KeyError on buckets.pop) and silently drop newly scheduled events."""
    eng = Engine()
    fired = []
    handles = []
    later = []

    def driver():
        for handle in handles[1:]:
            handle.cancel()  # triggers repeated mid-run compactions
        eng.schedule(500, lambda: later.append(eng.now))

    eng.schedule(1, driver)
    handles.extend(
        eng.schedule_event(10 + i, fired.append, 10 + i) for i in range(200)
    )
    eng.run()
    assert fired == [10]  # only the surviving handle fired
    assert later == [501]  # post-compaction schedule was not dropped
    assert eng.pending_events == 0
    assert eng.events_processed == 3


def test_mass_cancel_from_callback_during_run_until():
    """Same regression as above, through the run_until() drain loop."""
    eng = Engine()
    fired = []
    handles = []

    def driver():
        for handle in handles[1:]:
            handle.cancel()

    eng.schedule(1, driver)
    handles.extend(
        eng.schedule_event(10 + i, fired.append, 10 + i) for i in range(200)
    )
    eng.run_until(1000)
    assert fired == [10]
    assert eng.now == 1000
    assert eng.pending_events == 0


def test_stale_handle_cancel_cannot_kill_later_events():
    """Regression: fired schedule_event handles are never recycled, so a
    retained handle cancelled late can no longer cancel an unrelated,
    newly scheduled event that would have reused the pooled object."""
    eng = Engine()
    hits = []
    handle = eng.schedule_event(1, hits.append, "first")
    eng.run_until(1)
    assert hits == ["first"]
    for i in range(5):  # arg-carrier events draw from the free-list pool
        eng.schedule(1, hits.append, i)
    handle.cancel()  # stale cancel between scheduling and firing
    handle.cancel()
    eng.run_until(2)
    assert hits == ["first", 0, 1, 2, 3, 4]
    assert eng.events_processed == 6


def test_float_delays_coerce_to_int_time():
    """Regression: schedule()/schedule_event() coerce float delays to int
    (like schedule_at), so 5.7 lands in the t=5 bucket instead of minting
    a float bucket key that breaks same-cycle merging and ordering."""
    eng = Engine()
    order = []
    eng.schedule(5, lambda: order.append("int"))
    eng.schedule(5.7, lambda: order.append("float"))
    eng.schedule_event(5.2, lambda: order.append("handle"))
    eng.run()
    assert order == ["int", "float", "handle"]
    assert eng.now == 5
    assert isinstance(eng.now, int)


def test_pending_events_reports_live_and_compacts_stubs():
    eng = Engine()
    keep = [eng.schedule_event(10, lambda: None) for _ in range(10)]
    drop = [eng.schedule_event(20, lambda: None) for _ in range(200)]
    assert eng.pending_events == 210
    for event in drop:
        event.cancel()
    # Live count excludes every cancelled stub...
    assert eng.pending_events == 10
    # ...and compaction physically removed most of them from the queue.
    assert eng._queued_entries() < 100
    eng.run()
    assert eng.events_processed == 10
    assert keep[0].cancel() is None  # stale handle cancel stays safe


# -- checkpoint/restore ---------------------------------------------------


def _tagged_engine(record):
    """An engine plus a tag->callable registry appending to *record*."""
    eng = Engine()
    fns = {}
    for tag in ("a", "b", "c", "d", "e"):
        def fn(arg=None, tag=tag):
            record.append((tag, arg))
        fns[tag] = fn
    return eng, fns


def test_snapshot_restore_preserves_same_cycle_insertion_order():
    """The documented ChannelBus arbitration invariant: entries queued at
    one cycle fire in insertion order, and a snapshot/restore round trip
    (through JSON, as a checkpoint file would) must not reorder them."""
    import json

    rec1, rec2 = [], []
    eng1, fns1 = _tagged_engine(rec1)
    # Interleave bare callables and arg-carrying Event entries in one
    # bucket so the round trip has to preserve order across entry kinds.
    eng1.schedule(7, fns1["a"])
    eng1.schedule(7, fns1["b"], 1)
    eng1.schedule(7, fns1["c"])
    eng1.schedule(7, fns1["d"], 2)
    eng1.schedule(12, fns1["e"])
    eng1.run_until(3)

    def encode(fn, arg):
        tag = next(t for t, f in fns1.items() if f is fn)
        return [tag, arg]

    state = json.loads(json.dumps(eng1.snapshot_state(encode)))

    eng2, fns2 = _tagged_engine(rec2)
    eng2.restore_state(state, lambda desc: (fns2[desc[0]], desc[1]))
    assert eng2.now == 3
    eng1.run_until(20)
    eng2.run_until(20)
    expected = [("a", None), ("b", 1), ("c", None), ("d", 2), ("e", None)]
    assert rec1 == expected
    assert rec2 == expected
    assert eng2.events_processed == eng1.events_processed == 5


def test_snapshot_drops_cancelled_stubs():
    rec = []
    eng, fns = _tagged_engine(rec)
    eng.schedule(7, fns["a"])
    handle = eng.schedule_event(7, fns["b"])
    handle.cancel()
    state = eng.snapshot_state(
        lambda fn, arg: [next(t for t, f in fns.items() if f is fn), arg]
    )
    # The cancelled stub never reaches the encoder.
    assert state["_buckets"] == [[7, [["a", None]]]]
