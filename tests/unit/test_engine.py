"""Unit tests for the discrete-event engine."""

import pytest

from repro.core.engine import Engine
from repro.errors import SimulationError


def test_starts_at_time_zero():
    assert Engine().now == 0


def test_schedule_and_run_until_executes_in_order():
    eng = Engine()
    order = []
    eng.schedule(30, lambda: order.append("c"))
    eng.schedule(10, lambda: order.append("a"))
    eng.schedule(20, lambda: order.append("b"))
    eng.run_until(100)
    assert order == ["a", "b", "c"]
    assert eng.now == 100


def test_same_time_events_run_in_insertion_order():
    eng = Engine()
    order = []
    for tag in range(5):
        eng.schedule(7, lambda t=tag: order.append(t))
    eng.run_until(7)
    assert order == [0, 1, 2, 3, 4]


def test_run_until_stops_before_later_events():
    eng = Engine()
    hits = []
    eng.schedule(5, lambda: hits.append(5))
    eng.schedule(50, lambda: hits.append(50))
    eng.run_until(10)
    assert hits == [5]
    assert eng.now == 10
    eng.run_until(60)
    assert hits == [5, 50]


def test_events_scheduled_during_execution_run():
    eng = Engine()
    hits = []

    def first():
        hits.append(eng.now)
        eng.schedule(5, lambda: hits.append(eng.now))

    eng.schedule(10, first)
    eng.run_until(100)
    assert hits == [10, 15]


def test_cancelled_event_does_not_fire():
    eng = Engine()
    hits = []
    event = eng.schedule(10, lambda: hits.append("x"))
    event.cancel()
    eng.run_until(100)
    assert hits == []


def test_cannot_schedule_in_the_past():
    eng = Engine()
    eng.schedule(10, lambda: None)
    eng.run_until(10)
    with pytest.raises(SimulationError):
        eng.schedule_at(5, lambda: None)
    with pytest.raises(SimulationError):
        eng.schedule(-1, lambda: None)


def test_schedule_at_current_time_allowed():
    eng = Engine()
    hits = []
    eng.schedule(10, lambda: eng.schedule(0, lambda: hits.append(eng.now)))
    eng.run_until(10)
    assert hits == [10]


def test_step_returns_false_when_empty():
    eng = Engine()
    assert eng.step() is False
    eng.schedule(1, lambda: None)
    assert eng.step() is True
    assert eng.step() is False


def test_peek_time_skips_cancelled():
    eng = Engine()
    e1 = eng.schedule(5, lambda: None)
    eng.schedule(9, lambda: None)
    e1.cancel()
    assert eng.peek_time() == 9


def test_run_drains_queue():
    eng = Engine()
    hits = []
    for t in (3, 1, 2):
        eng.schedule(t, lambda t=t: hits.append(t))
    eng.run()
    assert hits == [1, 2, 3]


def test_events_processed_counter():
    eng = Engine()
    for t in range(4):
        eng.schedule(t, lambda: None)
    cancelled = eng.schedule(9, lambda: None)
    cancelled.cancel()
    eng.run_until(100)
    assert eng.events_processed == 4
