"""Unit tests for the serializable RunSpec pipeline and content hashing."""

import json

import pytest

from repro.config.system_configs import (
    OsConfig,
    SystemConfig,
    default_system_config,
)
from repro.core.results import RunResult, TaskResult
from repro.core.runspec import RunSpec
from repro.core.simulator import make_run_spec, run_spec
from repro.core.system import SCENARIOS, Scenario
from repro.dram.power import EnergyBreakdown
from repro.errors import ConfigError
from repro.os.partition import PartitionPolicy
from repro.serialize import canonical_json, content_hash, to_jsonable


def json_roundtrip(obj):
    return json.loads(json.dumps(obj))


# -- SystemConfig ---------------------------------------------------------------


def test_system_config_roundtrip():
    config = default_system_config(
        density_gbit=16, refresh_scale=512, os=OsConfig(eta_thresh=3)
    )
    data = json_roundtrip(config.to_dict())
    rebuilt = SystemConfig.from_dict(data)
    assert rebuilt == config
    assert rebuilt.content_hash() == config.content_hash()


def test_system_config_hash_changes_with_fields():
    a = default_system_config()
    b = default_system_config(density_gbit=16)
    c = default_system_config(os=OsConfig(eta_thresh=2))
    assert len({a.content_hash(), b.content_hash(), c.content_hash()}) == 3


def test_system_config_from_dict_rejects_unknown_field():
    data = default_system_config().to_dict()
    data["bogus"] = 1
    with pytest.raises(ConfigError, match="bogus"):
        SystemConfig.from_dict(data)


def test_unknown_override_is_config_error():
    with pytest.raises(ConfigError, match="invalid config override"):
        default_system_config(bogus_field=1)
    with pytest.raises(ConfigError, match="invalid config override"):
        default_system_config().with_(bogus_field=1)


# -- Scenario -------------------------------------------------------------------


def test_scenario_roundtrip_all_predefined():
    for scenario in SCENARIOS.values():
        data = json_roundtrip(scenario.to_dict())
        assert Scenario.from_dict(data) == scenario


def test_scenario_content_hash_ignores_nothing():
    a = Scenario("alike", "all_bank")
    b = Scenario("alike", "per_bank")
    c = Scenario("alike", "all_bank", partition=PartitionPolicy.SOFT)
    assert len({a.content_hash(), b.content_hash(), c.content_hash()}) == 3
    assert a.content_hash() == Scenario("alike", "all_bank").content_hash()


# -- RunSpec --------------------------------------------------------------------


def test_make_run_spec_resolves_mix():
    spec = make_run_spec("WL-6", "codesign", refresh_scale=1024)
    assert spec.workload_name == "WL-6"
    assert len(spec.specs) == 8
    assert spec.scenario.name == "codesign"
    assert spec.config.refresh_scale == 1024


def test_run_spec_json_roundtrip():
    spec = make_run_spec(
        "WL-6", "codesign", num_windows=0.5, warmup_windows=0.1,
        refresh_scale=1024, density_gbit=16,
    )
    data = json_roundtrip(spec.to_dict())
    rebuilt = RunSpec.from_dict(data)
    assert rebuilt == spec
    assert rebuilt.content_hash() == spec.content_hash()


def test_run_spec_hash_sensitive_to_every_layer():
    base = make_run_spec("WL-6", "codesign", refresh_scale=1024)
    variants = [
        make_run_spec("WL-1", "codesign", refresh_scale=1024),
        make_run_spec("WL-6", "per_bank", refresh_scale=1024),
        make_run_spec("WL-6", "codesign", refresh_scale=512),
        make_run_spec("WL-6", "codesign", refresh_scale=1024, num_windows=1.0),
        make_run_spec("WL-6", "codesign", refresh_scale=1024, banks_per_task=4),
    ]
    hashes = {base.content_hash()} | {v.content_hash() for v in variants}
    assert len(hashes) == len(variants) + 1


def test_run_spec_validate():
    spec = make_run_spec("WL-6", "codesign")
    with pytest.raises(ConfigError):
        spec.with_(specs=()).validate()
    with pytest.raises(ConfigError):
        spec.with_(num_windows=0).validate()
    with pytest.raises(ConfigError):
        spec.with_(banks_per_task=0).validate()


def test_unserializable_config_value_raises_config_error():
    class Opaque:
        def validate(self):
            pass

    spec = make_run_spec("WL-6", "all_bank", dram_timing=Opaque())
    with pytest.raises(ConfigError, match="not JSON-serializable"):
        spec.content_hash()


# -- RunResult ------------------------------------------------------------------


def make_result(with_energy=True):
    energy = None
    if with_energy:
        energy = EnergyBreakdown(
            background_mj=1.5, activate_mj=0.25, read_mj=0.125,
            write_mj=0.0625, refresh_mj=0.75, elapsed_ns=1e6,
        )
    return RunResult(
        scenario="codesign", workload="WL-6", density_gbit=32, trefw_ms=64.0,
        simulated_cycles=1000,
        tasks=[
            TaskResult(
                task_id=0, name="mcf", instructions=100, scheduled_cycles=400,
                quanta=3, reads_completed=7, avg_read_latency_cycles=212.5,
                refresh_stall_cycles=11,
            )
        ],
        reads_completed=7, writes_completed=2,
        avg_read_latency_cycles=212.5, row_hit_rate=0.625,
        refresh_commands=5, refresh_stall_cycles=11, refresh_stalled_reads=1,
        context_switches=4, bus_utilization=0.375,
        energy=energy,
    )


def test_run_result_json_roundtrip():
    result = make_result()
    rebuilt = RunResult.from_dict(json_roundtrip(result.to_dict()))
    assert rebuilt == result
    assert rebuilt.energy == result.energy
    assert rebuilt.hmean_ipc == result.hmean_ipc


def test_run_result_roundtrip_without_energy():
    result = make_result(with_energy=False)
    rebuilt = RunResult.from_dict(json_roundtrip(result.to_dict()))
    assert rebuilt == result
    assert rebuilt.energy is None


def test_run_result_from_dict_rejects_garbage():
    with pytest.raises(ConfigError):
        RunResult.from_dict("nope")
    with pytest.raises(ConfigError):
        RunResult.from_dict({"scenario": "s", "unknown_field": 1})


def test_simulated_result_roundtrips():
    spec = make_run_spec(
        "WL-9", "per_bank", num_windows=0.25, warmup_windows=0.05,
        refresh_scale=1024,
    )
    result = run_spec(spec)
    rebuilt = RunResult.from_dict(json_roundtrip(result.to_dict()))
    assert rebuilt == result


def test_run_spec_is_pure_function():
    spec = make_run_spec(
        "WL-9", "per_bank", num_windows=0.25, warmup_windows=0.05,
        refresh_scale=1024,
    )
    assert run_spec(spec) == run_spec(spec)


# -- serialize helpers ----------------------------------------------------------


def test_canonical_json_is_stable():
    assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'
    assert content_hash({"a": 1}) == content_hash({"a": 1})
    assert content_hash({"a": 1}) != content_hash({"a": 2})


def test_to_jsonable_rejects_non_string_keys():
    with pytest.raises(ConfigError, match="keys must be strings"):
        to_jsonable({1: "x"})
