"""Unit tests for PhysicalMemory frame bookkeeping."""

import pytest

from repro.config.dram_configs import DramOrganization
from repro.dram.address import AddressMapping
from repro.errors import AllocationError
from repro.os.page import PhysicalMemory


@pytest.fixture
def memory():
    mapping = AddressMapping(DramOrganization(), total_rows_per_bank=8)
    return PhysicalMemory(mapping)


def test_geometry(memory):
    assert memory.total_frames == 16 * 8
    assert memory.total_banks == 16
    assert memory.frames_per_bank == 8


def test_claim_and_release(memory):
    memory.claim(5, task_id=42)
    assert memory.owner(5) == 42
    assert memory.used_frames() == 1
    memory.release(5)
    assert memory.owner(5) == -1
    assert memory.used_frames() == 0


def test_double_claim_raises(memory):
    memory.claim(5, 1)
    with pytest.raises(AllocationError):
        memory.claim(5, 2)


def test_release_free_frame_raises(memory):
    with pytest.raises(AllocationError):
        memory.release(0)


def test_frames_owned_by(memory):
    for f in (1, 3, 5):
        memory.claim(f, 9)
    memory.claim(2, 7)
    assert memory.frames_owned_by(9) == [1, 3, 5]


def test_bank_of_frame_matches_mapping(memory):
    for frame in range(memory.total_frames):
        assert memory.bank_of_frame(frame) == memory.mapping.frame_to_bank_index(
            frame
        )
