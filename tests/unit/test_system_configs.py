"""Unit tests for SystemConfig and simulation scaling knobs."""

import pytest

from repro.config.system_configs import (
    CacheConfig,
    CoreConfig,
    OsConfig,
    SystemConfig,
    default_system_config,
)
from repro.errors import ConfigError
from repro.units import GB, ms


def test_default_config_matches_table1():
    config = default_system_config()
    assert config.cores.num_cores == 2
    assert config.cores.freq_mhz == 3200.0
    assert config.cores.rob_entries == 128
    assert config.caches.l2_size_per_core_bytes == 1024 * 1024
    assert config.density_gbit == 32
    assert config.trefw_ps == ms(64)
    assert config.read_queue_depth == 64
    assert config.write_drain_low == 32
    assert config.write_drain_high == 54


def test_refresh_scale_divides_window_and_rows():
    config = default_system_config(refresh_scale=64)
    assert config.trefw_sim_ps == ms(64) // 64
    assert config.rows_per_bank_sim == (512 * 1024) // 64


def test_quantum_is_window_over_total_banks():
    config = default_system_config(refresh_scale=1)
    # 64ms / 16 banks = 4ms: the paper's quantum (Section 5.1).
    assert config.quantum_ps == ms(4)


def test_explicit_quantum_wins():
    config = default_system_config(os=OsConfig(quantum_ps=ms(1)))
    assert config.quantum_ps == ms(1)


def test_bank_capacity_scaling():
    config = default_system_config(capacity_scale=1)
    # 512K rows x 4KB = 2GB per bank at 32Gb.
    assert config.bank_capacity_bytes == 2 * GB
    scaled = default_system_config(capacity_scale=1024)
    assert scaled.bank_capacity_bytes == 2 * GB // 1024


def test_scale_footprint_floor_one_page():
    config = default_system_config(capacity_scale=1024)
    assert config.scale_footprint(100) == config.os.page_bytes


def test_with_returns_modified_copy():
    config = default_system_config()
    other = config.with_(density_gbit=16)
    assert other.density_gbit == 16
    assert config.density_gbit == 32


def test_validate_rejects_bad_watermarks():
    with pytest.raises(ConfigError):
        default_system_config(write_drain_low=60, write_drain_high=54)


def test_validate_rejects_bad_scales():
    with pytest.raises(ConfigError):
        default_system_config(refresh_scale=0)


def test_core_config_validation():
    with pytest.raises(ConfigError):
        CoreConfig(num_cores=0).validate()


def test_cache_config_validation():
    with pytest.raises(ConfigError):
        CacheConfig(l1_size_bytes=0).validate()


def test_os_config_eta_validation():
    OsConfig(eta_thresh=None).validate()
    OsConfig(eta_thresh=1).validate()
    with pytest.raises(ConfigError):
        OsConfig(eta_thresh=0).validate()
