"""Unit tests for demand-paged virtual memory."""

import pytest

from repro.config.dram_configs import DramOrganization
from repro.dram.address import AddressMapping
from repro.errors import AllocationError, OutOfMemoryError
from repro.os.page import PhysicalMemory
from repro.os.partition import PartitioningAllocator, PartitionPolicy
from repro.os.task import Task
from repro.os.vm import VirtualMemory


def build(rows_per_bank=8, policy=PartitionPolicy.SOFT):
    mapping = AddressMapping(DramOrganization(), total_rows_per_bank=rows_per_bank)
    memory = PhysicalMemory(mapping)
    return memory, PartitioningAllocator(memory, policy)


def make_vm(allocator, footprint=16, banks=None, **kwargs):
    task = Task("t", None, task_id=0,
                possible_banks=frozenset(banks) if banks else None)
    return task, VirtualMemory(task, allocator, footprint, **kwargs)


def test_first_touch_is_minor_fault():
    _, allocator = build()
    task, vm = make_vm(allocator)
    frame, penalty = vm.translate(3)
    assert penalty == vm.minor_fault_cycles
    assert vm.stats.minor_faults == 1
    assert vm.resident_pages == 1
    assert task.frames == [frame]


def test_second_touch_is_hit():
    _, allocator = build()
    task, vm = make_vm(allocator)
    frame1, _ = vm.translate(3)
    frame2, penalty = vm.translate(3)
    assert frame1 == frame2
    assert penalty == 0
    assert vm.stats.hits == 1


def test_vpns_wrap_modulo_footprint():
    _, allocator = build()
    task, vm = make_vm(allocator, footprint=4)
    a, _ = vm.translate(1)
    b, _ = vm.translate(5)  # 5 % 4 == 1
    assert a == b


def test_translate_resident():
    _, allocator = build()
    task, vm = make_vm(allocator)
    assert vm.translate_resident(7) is None
    frame, _ = vm.translate(7)
    assert vm.translate_resident(7) == frame


def test_resident_limit_triggers_lru_eviction():
    _, allocator = build()
    task, vm = make_vm(allocator, footprint=16, resident_limit=2)
    vm.translate(0)
    vm.translate(1)
    vm.translate(0)  # touch: 1 becomes LRU
    _, penalty = vm.translate(2)  # evicts vpn 1
    assert penalty == vm.major_fault_cycles
    assert vm.stats.major_faults == 1
    assert vm.stats.evictions == 1
    assert vm.translate_resident(1) is None
    assert vm.translate_resident(0) is not None
    assert vm.resident_pages == 2


def test_hard_partition_overflow_thrashes():
    """Section 5.2.1: footprint > hard partition -> continuous major
    faults despite free memory elsewhere."""
    memory, allocator = build(rows_per_bank=4, policy=PartitionPolicy.HARD)
    task, vm = make_vm(allocator, footprint=16, banks={0})  # 4-frame partition
    for vpn in range(16):
        vm.translate(vpn)
    assert vm.resident_pages == 4
    assert vm.stats.major_faults == 12
    assert memory.used_frames() == 4
    # Other banks stayed free the whole time.
    assert allocator.free_frames() == memory.total_frames - 4


def test_soft_partition_spills_instead_of_thrashing():
    memory, allocator = build(rows_per_bank=4, policy=PartitionPolicy.SOFT)
    task, vm = make_vm(allocator, footprint=16, banks={0})
    for vpn in range(16):
        vm.translate(vpn)
    assert vm.resident_pages == 16
    assert vm.stats.major_faults == 0
    assert allocator.spills == 12


def test_eviction_updates_bank_accounting():
    memory, allocator = build(rows_per_bank=4, policy=PartitionPolicy.HARD)
    task, vm = make_vm(allocator, footprint=16, banks={0})
    for vpn in range(8):
        vm.translate(vpn)
    assert task.pages_per_bank == {0: 4}
    assert len(task.frames) == 4


def test_release_all():
    memory, allocator = build()
    task, vm = make_vm(allocator, footprint=8)
    for vpn in range(8):
        vm.translate(vpn)
    vm.release_all()
    assert vm.resident_pages == 0
    assert memory.used_frames() == 0
    assert task.frames == []


def test_zero_footprint_rejected():
    _, allocator = build()
    with pytest.raises(AllocationError):
        make_vm(allocator, footprint=0)


def test_oom_with_nothing_resident_raises():
    memory, allocator = build(rows_per_bank=2)
    hog = Task("hog", None, task_id=1)
    allocator.alloc_footprint(hog, memory.total_frames)
    task, vm = make_vm(allocator, footprint=4)
    with pytest.raises(OutOfMemoryError):
        vm.translate(0)


def test_determinstic_lru_order():
    _, allocator = build()
    task, vm = make_vm(allocator, footprint=8, resident_limit=3)
    for vpn in (0, 1, 2, 0, 3, 4):
        vm.translate(vpn)
    # Residency after: touch order 0,1,2,0 -> evict 1 for 3, evict 2 for 4.
    assert vm.translate_resident(1) is None
    assert vm.translate_resident(2) is None
    for vpn in (0, 3, 4):
        assert vm.translate_resident(vpn) is not None
