"""Unit tests for the SPEC/STREAM/NAS benchmark tables."""

import pytest

from repro.errors import ConfigError
from repro.units import GB, MB
from repro.workloads.benchmark import MpkiClass
from repro.workloads.nas import NPB_UA
from repro.workloads.spec2006 import SPEC_BENCHMARKS, spec_benchmark
from repro.workloads.stream import STREAM


def test_paper_footprints():
    # Section 5.4.1's explicit numbers.
    assert spec_benchmark("mcf").footprint_bytes == int(1.7 * GB)
    assert spec_benchmark("bwaves").footprint_bytes == 920 * MB
    assert spec_benchmark("GemsFDTD").footprint_bytes == 850 * MB
    assert STREAM.footprint_bytes == 800 * MB


def test_table2_mpki_classes():
    assert spec_benchmark("mcf").mpki_class is MpkiClass.HIGH
    assert spec_benchmark("bwaves").mpki_class is MpkiClass.HIGH
    assert spec_benchmark("povray").mpki_class is MpkiClass.LOW
    assert spec_benchmark("h264ref").mpki_class is MpkiClass.LOW
    assert spec_benchmark("GemsFDTD").mpki_class is MpkiClass.MEDIUM
    assert STREAM.mpki_class is MpkiClass.MEDIUM
    assert NPB_UA.mpki_class is MpkiClass.MEDIUM


def test_all_specs_validate():
    for spec in SPEC_BENCHMARKS.values():
        spec.validate()
    STREAM.validate()
    NPB_UA.validate()


def test_suite_covers_figure5_range():
    # Figure 5 needs a broad footprint spread around the 8Gb bank size.
    footprints = [s.footprint_bytes for s in SPEC_BENCHMARKS.values()]
    assert min(footprints) < 64 * MB
    assert max(footprints) > 1 * GB
    assert len(SPEC_BENCHMARKS) >= 20


def test_unknown_benchmark_raises():
    with pytest.raises(ConfigError):
        spec_benchmark("doom")


def test_suites_tagged():
    assert STREAM.suite == "stream"
    assert NPB_UA.suite == "nas"
    assert spec_benchmark("mcf").suite == "spec2006"
