"""Unit tests for System construction (wiring, not behaviour)."""

import pytest

from repro.core.simulator import build_system
from repro.errors import ConfigError
from repro.os.partition import PartitionPolicy


@pytest.fixture(scope="module")
def codesign_system():
    return build_system("WL-6", "codesign", refresh_scale=512)


def test_task_count_matches_mix(codesign_system):
    assert len(codesign_system.tasks) == 8
    names = sorted({t.name for t in codesign_system.tasks})
    assert names == ["mcf", "povray"]


def test_bank_vectors_assigned_under_partitioning(codesign_system):
    for task in codesign_system.tasks:
        assert task.possible_banks is not None
        assert len(task.possible_banks) == 12  # 6 banks/rank x 2 ranks


def test_baseline_tasks_unrestricted():
    system = build_system("WL-6", "all_bank", refresh_scale=512)
    assert all(t.possible_banks is None for t in system.tasks)


def test_tasks_admitted_round_robin(codesign_system):
    for i, task in enumerate(codesign_system.tasks):
        queue = codesign_system.scheduler.runqueues[i % 2]
        assert task in queue.tasks()


def test_mapping_sized_from_density_and_scaling(codesign_system):
    config = codesign_system.config
    expected_rows = config.bank_capacity_bytes // 4096
    assert codesign_system.mapping.rows_per_bank == expected_rows
    assert codesign_system.mapping.total_frames == expected_rows * 16


def test_footprints_allocated(codesign_system):
    for task in codesign_system.tasks:
        expected = max(
            1,
            codesign_system.config.scale_footprint(
                task.workload.spec.footprint_bytes
            )
            // 4096,
        )
        assert len(task.frames) == expected


def test_pages_respect_vectors(codesign_system):
    for task in codesign_system.tasks:
        assert set(task.pages_per_bank) <= set(task.possible_banks)


def test_per_task_rngs_are_independent(codesign_system):
    rngs = [t.rng for t in codesign_system.tasks]
    values = [rng.random() for rng in rngs]
    assert len(set(values)) == len(values)


def test_scenario_selects_scheduler_type(codesign_system):
    from repro.os.refresh_aware import RefreshAwareScheduler
    from repro.os.scheduler import CfsScheduler

    assert isinstance(codesign_system.scheduler, RefreshAwareScheduler)
    baseline = build_system("WL-6", "per_bank", refresh_scale=512)
    assert type(baseline.scheduler) is CfsScheduler


def test_partition_policy_propagates():
    hard = build_system("WL-9", "codesign_hard", refresh_scale=512)
    assert hard.allocator.policy is PartitionPolicy.HARD


def test_empty_spec_list_rejected():
    with pytest.raises(ConfigError):
        build_system([], "all_bank")


def test_scenario_rejects_unknown_refresh_policy():
    from repro.core.system import Scenario

    with pytest.raises(ConfigError, match="did you mean 'same_bank'"):
        Scenario(name="typo", refresh_policy="samebank")


def test_scenario_accepts_registered_policies():
    from repro.core.system import SCENARIOS
    from repro.dram.refresh import available_policies

    registered = set(available_policies())
    for scenario in SCENARIOS.values():
        assert scenario.refresh_policy in registered


def test_quantum_equals_stretch(codesign_system):
    assert (
        codesign_system.scheduler.quantum_cycles
        == codesign_system.timing.refresh_stretch
    )
