"""Unit tests for DramTiming (CPU-cycle conversion and refresh derivation)."""

import pytest

from repro.config.dram_configs import FgrMode
from repro.config.system_configs import default_system_config
from repro.dram.timing import DramTiming
from repro.errors import ConfigError


def make(**overrides):
    return DramTiming.from_config(default_system_config(**overrides))


def test_cpu_per_mem_cycle_ratio():
    timing = make()
    assert timing.cpu_per_mem_cycle == 4  # 3.2GHz / 800MHz


def test_per_command_timing_in_cpu_cycles():
    timing = make()
    assert timing.tCL == 44  # 11 mem cycles x 4
    assert timing.tRCD == 44
    assert timing.tRP == 44
    assert timing.tBL == 16
    assert timing.tRC == timing.tRAS + timing.tRP


def test_trfc_values_32gb():
    timing = make(refresh_scale=1)
    # 890ns at 3.2GHz = 2848 cycles.
    assert timing.trfc_ab == 2848
    # per-bank = 890/2.3 = 386.96ns -> 1239 cycles (ceil).
    assert timing.trfc_pb == pytest.approx(2848 / 2.3, abs=4)


def test_trefi_and_window_unscaled():
    timing = make(refresh_scale=1)
    assert timing.trefi_ab == 24960  # 7.8us x 3200 cycles/us
    assert timing.trefw == 204_800_000  # 64ms at 3.2GHz
    assert timing.refreshes_per_bank == int(64e6 // 7.8e3)


def test_refresh_scaling_preserves_ratios():
    full = make(refresh_scale=1)
    scaled = make(refresh_scale=256)
    # Per-command values identical.
    assert scaled.trfc_ab == full.trfc_ab
    assert scaled.trefi_ab == full.trefi_ab
    # Window and command count shrink together.
    assert scaled.trefw == pytest.approx(full.trefw / 256, rel=1e-3)
    assert scaled.refreshes_per_bank == pytest.approx(
        full.refreshes_per_bank / 256, abs=1
    )
    # Refresh duty fraction preserved.
    full_duty = full.trfc_ab / full.trefi_ab
    scaled_duty = scaled.trfc_ab / scaled.trefi_ab
    assert scaled_duty == full_duty


def test_trefi_pb_covers_all_banks_in_window():
    timing = make(refresh_scale=256)
    per_window = timing.total_banks * timing.refreshes_per_bank
    assert timing.trefi_pb * per_window <= timing.trefw
    assert timing.trefi_pb * per_window >= timing.trefw * 0.95


def test_refresh_stretch_is_window_over_banks():
    timing = make(refresh_scale=1)
    # 64ms / 16 banks = 4ms stretch (Section 5.1).
    assert timing.refresh_stretch == timing.trefw // 16


def test_fgr_modes_scale_trefi_and_trfc():
    x1 = make(refresh_scale=1, fgr_mode=FgrMode.X1)
    x2 = make(refresh_scale=1, fgr_mode=FgrMode.X2)
    x4 = make(refresh_scale=1, fgr_mode=FgrMode.X4)
    assert x2.trefi_ab == x1.trefi_ab // 2
    assert x4.trefi_ab == x1.trefi_ab // 4
    assert x2.trfc_ab == pytest.approx(x1.trfc_ab / 1.35, rel=0.01)
    assert x4.trfc_ab == pytest.approx(x1.trfc_ab / 1.63, rel=0.01)


def test_unloaded_latency_helpers():
    timing = make()
    assert timing.read_hit_latency == timing.tCL + timing.tBL
    assert timing.read_miss_latency == timing.read_hit_latency + timing.tRCD
    assert timing.read_conflict_latency == timing.read_miss_latency + timing.tRP


def test_rejects_non_integer_clock_ratio():
    from repro.config.system_configs import CoreConfig

    with pytest.raises(ConfigError):
        make(cores=CoreConfig(freq_mhz=3000.0))


def test_rejects_trfc_longer_than_trefi():
    # An absurd refresh config must be caught.
    from repro.config.dram_configs import DensityConfig, DENSITIES

    bad = DensityConfig(density_gbit=32, trfc_ab_ns=9000.0, rows_per_bank=512 * 1024)
    DENSITIES[99] = bad
    try:
        with pytest.raises(ConfigError):
            make(density_gbit=99)
    finally:
        del DENSITIES[99]
