"""The trace schema/ordering validator in scripts/validate_trace.py."""

import importlib.util
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "validate_trace.py"
_spec = importlib.util.spec_from_file_location("validate_trace", SCRIPT)
validate_trace = importlib.util.module_from_spec(_spec)
sys.modules["validate_trace"] = validate_trace
_spec.loader.exec_module(validate_trace)

validate = validate_trace.validate


def meta(pid, tid, key, name):
    entry = {"ph": "M", "pid": pid, "name": key, "args": {"name": name}}
    if tid is not None:
        entry["tid"] = tid
    return entry


def stretch(ts, dur, bank):
    return {
        "name": f"refresh b{bank}", "cat": "refresh", "ph": "X",
        "ts": ts, "dur": dur, "pid": 1, "tid": 0, "args": {"bank": bank},
    }


def pick(ts, core=0, name="mcf"):
    return {
        "name": name, "cat": "sched", "ph": "X", "ts": ts, "dur": 100,
        "pid": 2, "tid": core, "args": {},
    }


def trace(events):
    return {
        "displayTimeUnit": "ms",
        "metadata": {},
        "traceEvents": [
            meta(1, None, "process_name", "dram"),
            meta(1, 0, "thread_name", "refresh stretches"),
            meta(2, None, "process_name", "cpu"),
            meta(2, 0, "thread_name", "core 0"),
        ] + events,
    }


def test_well_formed_trace_passes():
    payload = trace([
        stretch(0, 50, 0), stretch(100, 50, 1),
        pick(0), pick(100), pick(200),
    ])
    assert validate(payload) == []


def test_backwards_timestamp_on_a_track_flagged():
    payload = trace([pick(200), pick(100), stretch(0, 50, 0)])
    errors = validate(payload)
    assert any("goes backwards" in e for e in errors)


def test_tracks_are_ordered_independently():
    # Interleaved tracks: each is monotonic even though the combined
    # stream is not.
    payload = trace([
        stretch(0, 50, 0), pick(10, core=0), stretch(100, 50, 1), pick(5, core=1),
    ])
    payload["traceEvents"].append(meta(2, 1, "thread_name", "core 1"))
    assert validate(payload) == []


def test_overlapping_stretches_flagged():
    payload = trace([stretch(0, 100, 0), stretch(50, 100, 1), pick(0)])
    errors = validate(payload)
    assert any("stretches overlap" in e for e in errors)


def test_touching_stretches_are_fine():
    payload = trace([stretch(0, 100, 0), stretch(100, 100, 1), pick(0)])
    assert validate(payload) == []


def test_missing_stretches_flagged():
    payload = trace([pick(0)])
    errors = validate(payload)
    assert any("no refresh-stretch slices" in e for e in errors)


def span(ts, name="resolve", span_id=0, parent=None, dur=10):
    return {
        "name": name, "cat": "span", "ph": "X", "ts": ts, "dur": dur,
        "pid": 3, "tid": 0,
        "args": {"trace": "a" * 16, "job": "j1", "span": span_id,
                 "parent": parent, "cycles": 0, "detail": ""},
    }


def span_trace(events):
    return {
        "displayTimeUnit": "ms",
        "metadata": {},
        "traceEvents": [
            meta(3, None, "process_name", "service"),
            meta(3, 0, "thread_name", "resolve"),
        ] + events,
    }


def test_expect_spans_accepts_a_span_only_trace():
    payload = span_trace([span(0), span(5, span_id=1, parent=0)])
    assert validate(payload, expect_spans=True) == []


def test_expect_spans_requires_at_least_one_span():
    payload = trace([stretch(0, 50, 0), pick(0)])
    errors = validate(payload, expect_spans=True)
    assert any("no span slices" in e for e in errors)


def test_span_slices_exempt_from_monotonic_check():
    # Span export order is (trace, job, span id), not wall time — a
    # wall-backwards span sequence is legal in both modes.
    payload = trace([stretch(0, 50, 0), pick(0)])
    payload["traceEvents"] += [
        meta(3, None, "process_name", "service"),
        meta(3, 0, "thread_name", "resolve"),
        span(100, span_id=0), span(20, span_id=1, parent=0),
    ]
    assert validate(payload) == []
    assert validate(payload, expect_spans=True) == []
