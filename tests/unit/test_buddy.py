"""Unit tests for the buddy allocator."""

import pytest

from repro.errors import AllocationError, OutOfMemoryError
from repro.os.buddy import BuddyAllocator


def test_initial_state_all_free():
    buddy = BuddyAllocator(256)
    assert buddy.free_frames() == 256
    assert buddy.has_free()


def test_alloc_page_returns_distinct_frames():
    buddy = BuddyAllocator(64)
    frames = [buddy.alloc_page() for _ in range(64)]
    assert len(set(frames)) == 64
    assert buddy.free_frames() == 0
    assert not buddy.has_free()


def test_exhaustion_raises():
    buddy = BuddyAllocator(4)
    for _ in range(4):
        buddy.alloc_page()
    with pytest.raises(OutOfMemoryError):
        buddy.alloc_page()


def test_alloc_prefers_low_addresses():
    buddy = BuddyAllocator(64)
    assert buddy.alloc_page() == 0
    assert buddy.alloc_page() == 1


def test_alloc_higher_order_is_aligned():
    buddy = BuddyAllocator(64)
    base = buddy.alloc(order=3)
    assert base % 8 == 0
    assert buddy.free_frames() == 56


def test_free_and_realloc():
    buddy = BuddyAllocator(16)
    frame = buddy.alloc_page()
    buddy.free(frame)
    assert buddy.free_frames() == 16
    assert buddy.alloc_page() == frame


def test_coalescing_restores_large_blocks():
    buddy = BuddyAllocator(16, max_order=5)
    frames = [buddy.alloc_page() for _ in range(16)]
    for frame in frames:
        buddy.free(frame)
    orders = [order for order, _ in buddy.free_blocks()]
    assert max(orders) == 4  # one fully coalesced 16-frame block


def test_free_unknown_block_raises():
    buddy = BuddyAllocator(16)
    with pytest.raises(AllocationError):
        buddy.free(3)


def test_double_free_raises():
    buddy = BuddyAllocator(16)
    frame = buddy.alloc_page()
    buddy.free(frame)
    with pytest.raises(AllocationError):
        buddy.free(frame)


def test_free_with_wrong_order_raises():
    buddy = BuddyAllocator(16)
    base = buddy.alloc(order=2)
    with pytest.raises(AllocationError):
        buddy.free(base, order=1)
    buddy.free(base, order=2)


def test_non_power_of_two_total():
    buddy = BuddyAllocator(100)
    assert buddy.free_frames() == 100
    frames = [buddy.alloc_page() for _ in range(100)]
    assert len(set(frames)) == 100
    assert all(0 <= f < 100 for f in frames)


def test_invalid_order_rejected():
    buddy = BuddyAllocator(16, max_order=4)
    with pytest.raises(AllocationError):
        buddy.alloc(order=4)
    with pytest.raises(AllocationError):
        buddy.alloc(order=-1)


def test_invalid_construction():
    with pytest.raises(AllocationError):
        BuddyAllocator(0)
    with pytest.raises(AllocationError):
        BuddyAllocator(16, max_order=0)


def test_split_blocks_tracked_correctly():
    buddy = BuddyAllocator(8, max_order=4)
    a = buddy.alloc_page()
    b = buddy.alloc(order=1)
    assert buddy.free_frames() == 8 - 1 - 2
    buddy.free(a)
    buddy.free(b)
    assert buddy.free_frames() == 8
