"""Unit tests for metric helpers."""

import pytest

from repro.core.metrics import (
    degradation,
    fairness_index,
    geometric_mean,
    harmonic_mean,
    speedup,
)


def test_harmonic_mean_basic():
    assert harmonic_mean([1.0, 1.0]) == 1.0
    assert harmonic_mean([1.0, 3.0]) == pytest.approx(1.5)


def test_harmonic_mean_dominated_by_slowest():
    assert harmonic_mean([0.1, 10.0]) < 0.2


def test_harmonic_mean_edge_cases():
    assert harmonic_mean([]) == 0.0
    assert harmonic_mean([0.0, 1.0]) == 0.0
    assert harmonic_mean([-1.0, 1.0]) == 0.0


def test_speedup():
    assert speedup(1.1, 1.0) == pytest.approx(0.10)
    assert speedup(0.9, 1.0) == pytest.approx(-0.10)
    assert speedup(1.0, 0.0) == 0.0


def test_degradation():
    assert degradation(0.9, 1.0) == pytest.approx(0.10)
    assert degradation(1.0, 1.0) == 0.0
    assert degradation(1.0, 0.0) == 0.0


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([]) == 0.0
    assert geometric_mean([0.0, 2.0]) == 0.0


def test_fairness_index():
    assert fairness_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
    assert fairness_index([1.0, 0.0, 0.0]) == pytest.approx(1 / 3)
    assert fairness_index([]) == 0.0
    assert fairness_index([0.0]) == 0.0
