"""Unit tests for Refresh Pausing (Nair et al., HPCA 2013)."""


from repro.config.dram_configs import DramOrganization
from repro.config.system_configs import default_system_config
from repro.core.engine import Engine
from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.refresh import make_scheduler
from repro.dram.request import MemoryRequest, RequestType
from repro.dram.timing import DramTiming


def build(refresh_scale=1024):
    config = default_system_config(refresh_scale=refresh_scale)
    timing = DramTiming.from_config(config)
    engine = Engine()
    org = DramOrganization()
    mapping = AddressMapping(org, total_rows_per_bank=16)
    mc = MemoryController(engine, timing, org, mapping)
    sched = make_scheduler("pausing")
    sched.attach(mc, engine, timing)
    return engine, timing, mc, sched


def test_idle_system_full_coverage_no_pauses():
    engine, timing, mc, sched = build()
    sched.start()
    engine.run_until(timing.trefw - 1)
    assert sched.pauses == 0
    n = timing.refreshes_per_bank
    for flat in range(16):
        assert sched.stats.per_bank_commands.get(flat, 0) >= n - 1


def test_demand_triggers_pauses():
    engine, timing, mc, sched = build()

    def traffic():
        for frame in range(8):
            a = mc.mapping.frame_offset_to_address(frame, 0)
            mc.enqueue(
                MemoryRequest(RequestType.READ, a,
                              mc.mapping.address_to_coordinate(a))
            )
        engine.schedule(400, traffic)

    engine.schedule(0, traffic)
    sched.start()
    engine.run_until(timing.trefw // 2)
    assert sched.pauses > 0


def test_refresh_work_completes_despite_pauses():
    engine, timing, mc, sched = build()

    def traffic():
        import random

        rng = random.Random(3)

        def fire():
            frame = rng.randrange(mc.mapping.total_frames)
            a = mc.mapping.frame_offset_to_address(frame, 0)
            mc.enqueue(
                MemoryRequest(RequestType.READ, a,
                              mc.mapping.address_to_coordinate(a))
            )
            engine.schedule(rng.randrange(100, 300), fire)

        fire()

    engine.schedule(0, traffic)
    sched.start()
    engine.run_until(timing.trefw - 1)
    n = timing.refreshes_per_bank
    for flat in range(16):
        # A command's segments may slip past the window edge but the
        # deadline rule bounds the slip to one command.
        assert sched.stats.per_bank_commands.get(flat, 0) >= n - 1


def test_pausing_between_allbank_and_norefresh_end_to_end():
    from repro import run_simulation

    common = dict(num_windows=1.0, warmup_windows=0.25, refresh_scale=512)
    pausing = run_simulation("WL-6", "pausing", **common).hmean_ipc
    all_bank = run_simulation("WL-6", "all_bank", **common).hmean_ipc
    ideal = run_simulation("WL-6", "no_refresh", **common).hmean_ipc
    assert all_bank - 0.005 <= pausing <= ideal
