"""Unit tests for the refresh-aware scheduler (Algorithm 3)."""

import itertools
import random

import pytest

from repro.config.dram_configs import DramOrganization
from repro.config.system_configs import default_system_config
from repro.core.engine import Engine
from repro.cpu.core import Core
from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.refresh import make_scheduler
from repro.dram.timing import DramTiming
from repro.errors import SchedulerError
from repro.os.refresh_aware import RefreshAwareScheduler
from repro.os.task import Task
from repro.workloads.benchmark import MemAccess


class ComputeWorkload:
    mlp = 1
    name = "compute"

    def next_access(self, task):
        return MemAccess(100, 100, None)


def build(refresh_policy="same_bank", **kwargs):
    config = default_system_config(refresh_scale=1024)
    timing = DramTiming.from_config(config)
    engine = Engine()
    org = DramOrganization()
    mapping = AddressMapping(org, total_rows_per_bank=16)
    mc = MemoryController(engine, timing, org, mapping)
    refresh = make_scheduler(refresh_policy)
    refresh.attach(mc, engine, timing)
    cores = [Core(i, engine, mc) for i in range(1)]
    quantum = timing.refresh_stretch
    scheduler = RefreshAwareScheduler(engine, cores, quantum, refresh, **kwargs)
    return engine, timing, scheduler


_ids = itertools.count()


def make_task(name, banks):
    task = Task(name, ComputeWorkload(), possible_banks=frozenset(banks),
                task_id=next(_ids))
    task.rng = random.Random(3)
    # Simulate data presence in exactly the allowed banks.
    for i, bank in enumerate(sorted(banks)):
        task.add_frame(i, bank)
    return task


def test_requires_predictable_refresh_schedule():
    with pytest.raises(SchedulerError):
        build(refresh_policy="per_bank")


def test_picks_task_without_data_in_refresh_bank():
    engine, timing, scheduler = build()
    dirty = make_task("dirty", banks=set(range(16)))
    clean = make_task("clean", banks=set(range(16)) - {0, 8})
    dirty.vruntime = 0.0
    clean.vruntime = 100.0  # CFS alone would pick `dirty`
    scheduler.add_task(dirty, cpu=0)
    scheduler.add_task(clean, cpu=0)
    scheduler.start()  # first quantum: stretch bank 0
    assert scheduler.cores[0].current_task is clean
    assert scheduler.clean_picks == 1


def test_falls_back_to_leftmost_when_no_clean_task():
    engine, timing, scheduler = build()
    a = make_task("a", banks=set(range(16)))
    b = make_task("b", banks=set(range(16)))
    a.vruntime, b.vruntime = 5.0, 9.0
    scheduler.add_task(a, cpu=0)
    scheduler.add_task(b, cpu=0)
    scheduler.start()
    assert scheduler.cores[0].current_task is a  # fairness fallback
    assert scheduler.fallback_picks == 1


def test_eta_thresh_limits_search_depth():
    engine, timing, scheduler = build(eta_thresh=1)
    dirty = make_task("dirty", banks=set(range(16)))
    clean = make_task("clean", banks=set(range(16)) - {0, 8})
    dirty.vruntime, clean.vruntime = 0.0, 10.0
    scheduler.add_task(dirty, cpu=0)
    scheduler.add_task(clean, cpu=0)
    scheduler.start()
    # eta=1: only the leftmost is examined -> refresh-awareness disabled.
    assert scheduler.cores[0].current_task is dirty


def test_rotation_over_full_window_never_schedules_dirty_task():
    engine, timing, scheduler = build()
    # Two tasks covering complementary halves of the banks.
    a = make_task("a", banks=set(range(8)))          # rank 0 only
    b = make_task("b", banks=set(range(8, 16)))      # rank 1 only
    scheduler.add_task(a, cpu=0)
    scheduler.add_task(b, cpu=0)
    scheduler.refresh_scheduler.start()
    scheduler.start()
    core = scheduler.cores[0]
    picks = []

    def sample():
        picks.append((scheduler.refresh_scheduler.stretch_bank_at(engine.now),
                      core.current_task.name))
        if engine.now + timing.refresh_stretch < timing.trefw:
            engine.schedule(timing.refresh_stretch, sample)

    engine.schedule(timing.refresh_stretch // 2, sample)
    engine.run_until(timing.trefw - 1)
    assert len(picks) == 16
    for stretch_bank, name in picks:
        expected = "b" if stretch_bank < 8 else "a"
        assert name == expected, picks


def test_best_effort_picks_min_fraction():
    engine, timing, scheduler = build(best_effort=True)
    # Every task has data in bank 0; pick the one with the least.
    heavy = make_task("heavy", banks={0, 1})       # 1/2 in bank 0
    light = make_task("light", banks={0, 1, 2, 3})  # 1/4 in bank 0
    heavy.vruntime, light.vruntime = 0.0, 10.0
    scheduler.add_task(heavy, cpu=0)
    scheduler.add_task(light, cpu=0)
    scheduler.start()
    assert scheduler.cores[0].current_task is light
    assert scheduler.fallback_picks == 1


def test_best_effort_still_prefers_zero_fraction():
    engine, timing, scheduler = build(best_effort=True)
    some = make_task("some", banks={0, 1})
    none = make_task("none", banks={4, 5})
    some.vruntime, none.vruntime = 0.0, 10.0
    scheduler.add_task(some, cpu=0)
    scheduler.add_task(none, cpu=0)
    scheduler.start()
    assert scheduler.cores[0].current_task is none
    assert scheduler.clean_picks == 1


def test_non_runnable_tasks_skipped():
    engine, timing, scheduler = build()
    sleeping = make_task("sleeping", banks={1, 2})
    awake = make_task("awake", banks=set(range(16)))
    sleeping.runnable = False
    scheduler.add_task(sleeping, cpu=0)
    scheduler.add_task(awake, cpu=0)
    scheduler.start()
    assert scheduler.cores[0].current_task is awake


def test_next_refresh_bank_mid_quantum_sampling():
    engine, timing, scheduler = build()
    assert scheduler.next_refresh_bank() == 0
    engine.schedule(timing.refresh_stretch, lambda: None)
    engine.run_until(timing.refresh_stretch)
    assert scheduler.next_refresh_bank() == 1
