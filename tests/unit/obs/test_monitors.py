"""Invariant monitors: unit checks against synthetic event streams.

A real codesign :class:`System` is built once (never run) so the
monitors bind against genuine timing/mapping/scenario state; the event
streams are then synthesized to hit each check precisely.
"""

import pytest

from repro.core.simulator import build_system
from repro.dram.refresh.same_bank import plan_batches
from repro.errors import MonitorError
from repro.obs.monitors import (
    AllocationPartitionMonitor,
    MonitorSuite,
    MonitorViolation,
    RefreshOverlapMonitor,
    RefreshStretchMonitor,
    SchedulerConflictMonitor,
    default_monitors,
)
from repro.telemetry.events import (
    DramCommandEvent,
    PageAllocEvent,
    RefreshCommandEvent,
    RefreshStretchBeginEvent,
    RefreshStretchEndEvent,
    SchedulerPickEvent,
)


@pytest.fixture(scope="module")
def codesign_system():
    return build_system("WL-6", "codesign", refresh_scale=1024)


@pytest.fixture(scope="module")
def plan(codesign_system):
    return plan_batches(codesign_system.timing)


def read_event(time, bank=0, issue=None, task_id=1):
    return DramCommandEvent(
        time=time, op="RD", channel=0, rank=0, bank=bank, row_hit=False,
        task_id=task_id, latency=30, refresh_stall=0,
        issue=issue if issue is not None else time - 30,
    )


def pb_refresh(time, bank=0, duration=100):
    return RefreshCommandEvent(
        time=time, channel=0, rank=0, bank=bank, duration=duration,
        all_bank=False,
    )


def feed_stretch(monitor, timing, bank, commands, begin=None):
    """One complete synthetic stretch on *bank* with *commands* commands."""
    grid = timing.trefw // timing.total_banks
    if begin is None:
        begin = bank * grid
    monitor.observe(RefreshStretchBeginEvent(time=begin, bank=bank))
    for k in range(commands):
        monitor.observe(pb_refresh(begin + 1 + k, bank=bank))
    monitor.observe(
        RefreshStretchEndEvent(time=begin + timing.refresh_stretch, bank=bank)
    )


# -- MonitorViolation ---------------------------------------------------------


def test_violation_round_trip():
    violation = MonitorViolation(
        monitor="refresh_stretch", time=1234, message="boom",
        context={"bank": 3},
    )
    assert MonitorViolation.from_dict(violation.to_dict()) == violation
    assert "refresh_stretch" in str(violation) and "1234" in str(violation)


# -- RefreshStretchMonitor ----------------------------------------------------


def test_stretch_clean_cycle(codesign_system, plan):
    monitor = RefreshStretchMonitor()
    monitor.bind(codesign_system)
    assert monitor.active
    timing = codesign_system.timing
    commands, _ = plan
    for bank in range(4):
        feed_stretch(monitor, timing, bank, commands)
    assert monitor.violations == []
    assert monitor.stretches_checked == 4


def test_stretch_off_grid_begin_flagged(codesign_system):
    monitor = RefreshStretchMonitor()
    monitor.bind(codesign_system)
    monitor.observe(RefreshStretchBeginEvent(time=17, bank=0))
    assert any("off-grid" in v.message for v in monitor.violations)


def test_stretch_wrong_command_count_flagged(codesign_system, plan):
    monitor = RefreshStretchMonitor()
    monitor.bind(codesign_system)
    commands, _ = plan
    feed_stretch(monitor, codesign_system.timing, 0, commands - 1)
    assert any("expected" in v.message for v in monitor.violations)
    assert monitor.violations[0].context["commands"] == commands - 1


def test_stretch_bank_order_enforced(codesign_system, plan):
    monitor = RefreshStretchMonitor()
    monitor.bind(codesign_system)
    timing = codesign_system.timing
    commands, _ = plan
    feed_stretch(monitor, timing, 0, commands)
    feed_stretch(monitor, timing, 2, commands)  # skips bank 1
    assert any("order broken" in v.message for v in monitor.violations)


def test_stretch_foreign_bank_command_flagged(codesign_system):
    monitor = RefreshStretchMonitor()
    monitor.bind(codesign_system)
    monitor.observe(RefreshStretchBeginEvent(time=0, bank=0))
    monitor.observe(pb_refresh(10, bank=3))
    assert any("not contiguous" in v.message for v in monitor.violations)


def test_stretch_all_bank_ref_flagged(codesign_system):
    monitor = RefreshStretchMonitor()
    monitor.bind(codesign_system)
    monitor.observe(
        RefreshCommandEvent(
            time=0, channel=0, rank=0, bank=-1, duration=500, all_bank=True
        )
    )
    assert any("all-bank" in v.message for v in monitor.violations)


def test_stretch_overlong_flagged(codesign_system, plan):
    monitor = RefreshStretchMonitor()
    monitor.bind(codesign_system)
    timing = codesign_system.timing
    commands, _ = plan
    begin = 0
    monitor.observe(RefreshStretchBeginEvent(time=begin, bank=0))
    for k in range(commands):
        monitor.observe(pb_refresh(begin + 1 + k, bank=0))
    late = begin + 2 * timing.refresh_stretch
    monitor.observe(RefreshStretchEndEvent(time=late, bank=0))
    assert any("beyond" in v.message for v in monitor.violations)


def test_stretch_inactive_for_other_schedulers():
    system = build_system("WL-6", "all_bank", refresh_scale=1024)
    monitor = RefreshStretchMonitor()
    monitor.bind(system)
    assert not monitor.active


# -- RefreshOverlapMonitor ----------------------------------------------------


def test_overlap_cas_inside_window_flagged(codesign_system):
    monitor = RefreshOverlapMonitor()
    monitor.bind(codesign_system)
    assert monitor.active
    monitor.observe(pb_refresh(1000, bank=0, duration=100))
    monitor.observe(read_event(1100, bank=0, issue=1050))
    (violation,) = monitor.violations
    assert "inside refresh window" in violation.message
    assert violation.context["window_start"] == 1000


def test_overlap_cas_at_window_end_is_clean(codesign_system):
    monitor = RefreshOverlapMonitor()
    monitor.bind(codesign_system)
    monitor.observe(pb_refresh(1000, bank=0, duration=100))
    monitor.observe(read_event(1130, bank=0, issue=1100))
    monitor.observe(read_event(990, bank=0, issue=960))  # before the window
    assert monitor.violations == []
    assert monitor.commands_checked == 2


def test_overlap_other_bank_unaffected(codesign_system):
    monitor = RefreshOverlapMonitor()
    monitor.bind(codesign_system)
    monitor.observe(pb_refresh(1000, bank=0, duration=100))
    monitor.observe(read_event(1080, bank=1, issue=1050))
    assert monitor.violations == []


def test_overlap_all_bank_ref_covers_whole_rank(codesign_system):
    monitor = RefreshOverlapMonitor()
    monitor.bind(codesign_system)
    monitor.observe(
        RefreshCommandEvent(
            time=1000, channel=0, rank=0, bank=-1, duration=500, all_bank=True
        )
    )
    monitor.observe(read_event(1300, bank=5, issue=1250))
    (violation,) = monitor.violations
    assert violation.context["cas"] == 1250


def test_overlap_inactive_under_pausing():
    system = build_system("WL-6", "pausing", refresh_scale=1024)
    monitor = RefreshOverlapMonitor()
    monitor.bind(system)
    assert not monitor.active


# -- SchedulerConflictMonitor -------------------------------------------------


def pick(time, task_id=1, conflict=False, fallback=False):
    return SchedulerPickEvent(
        time=time, core_id=0, task_id=task_id, task_name="mcf",
        refresh_bank=2, conflict=conflict, quantum_cycles=1000,
        fallback=fallback,
    )


def test_conflict_without_fallback_flagged(codesign_system):
    monitor = SchedulerConflictMonitor()
    monitor.bind(codesign_system)
    assert monitor.active
    monitor.observe(pick(100, conflict=True))
    (violation,) = monitor.violations
    assert "without an eta_thresh fallback" in violation.message


def test_fallback_conflict_counted_not_flagged(codesign_system):
    monitor = SchedulerConflictMonitor()
    monitor.bind(codesign_system)
    monitor.observe(pick(100, conflict=True, fallback=True))
    monitor.observe(pick(200, conflict=False))
    monitor.observe(pick(300, task_id=None))  # idle: ignored
    assert monitor.violations == []
    assert monitor.fallback_picks == 1
    assert monitor.picks_checked == 2


def test_conflict_monitor_inactive_under_cfs():
    system = build_system("WL-6", "same_bank_hw_only", refresh_scale=1024)
    monitor = SchedulerConflictMonitor()
    monitor.bind(system)
    assert not monitor.active


# -- AllocationPartitionMonitor -----------------------------------------------


def restricted_task(system):
    for task in system.tasks:
        if task.possible_banks is not None:
            return task
    raise AssertionError("codesign WL-6 should have partitioned tasks")


def test_alloc_inside_vector_clean(codesign_system):
    monitor = AllocationPartitionMonitor()
    monitor.bind(codesign_system)
    assert monitor.active
    task = restricted_task(codesign_system)
    bank = next(iter(task.possible_banks))
    monitor.observe(
        PageAllocEvent(
            time=0, task_id=task.task_id, frame=1, bank=bank, spilled=False
        )
    )
    assert monitor.violations == []
    assert monitor.allocs_checked == 1


def test_alloc_spill_misflag_flagged(codesign_system):
    monitor = AllocationPartitionMonitor()
    monitor.bind(codesign_system)
    task = restricted_task(codesign_system)
    outside = next(
        b for b in range(codesign_system.timing.total_banks)
        if b not in task.possible_banks
    )
    monitor.observe(
        PageAllocEvent(
            time=0, task_id=task.task_id, frame=1, bank=outside, spilled=False
        )
    )
    assert any("mis-flagged" in v.message for v in monitor.violations)


def test_alloc_soft_spill_counted_hard_spill_flagged(codesign_system):
    monitor = AllocationPartitionMonitor()
    monitor.bind(codesign_system)
    task = restricted_task(codesign_system)
    outside = next(
        b for b in range(codesign_system.timing.total_banks)
        if b not in task.possible_banks
    )
    spill = PageAllocEvent(
        time=0, task_id=task.task_id, frame=1, bank=outside, spilled=True
    )
    monitor.observe(spill)
    assert monitor.violations == []  # codesign partitions softly
    assert monitor.spills == 1

    monitor._hard = True
    monitor.observe(spill)
    assert any("hard partition breached" in v.message for v in monitor.violations)


def test_alloc_inactive_without_partitioning():
    system = build_system("WL-6", "all_bank", refresh_scale=1024)
    monitor = AllocationPartitionMonitor()
    monitor.bind(system)
    assert not monitor.active


# -- strict mode & suite ------------------------------------------------------


def test_strict_mode_raises_at_the_violation(codesign_system):
    monitor = SchedulerConflictMonitor()
    monitor.strict = True
    monitor.bind(codesign_system)
    with pytest.raises(MonitorError, match="scheduler_conflict"):
        monitor.observe(pick(100, conflict=True))
    assert len(monitor.violations) == 1  # recorded before the raise


def test_suite_buffers_events_until_bind(codesign_system):
    suite = MonitorSuite()
    task = restricted_task(codesign_system)
    bank = next(iter(task.possible_banks))
    # Construction-time alloc arrives before the suite knows the system.
    suite.sink.emit(
        PageAllocEvent(
            time=0, task_id=task.task_id, frame=1, bank=bank, spilled=False
        )
    )
    suite.bind(codesign_system)
    alloc_monitor = next(
        m for m in suite.monitors if m.name == "allocation_partition"
    )
    assert alloc_monitor.allocs_checked == 1


def test_suite_dispatches_only_to_active_monitors():
    system = build_system("WL-6", "all_bank", refresh_scale=1024)
    suite = MonitorSuite().bind(system)
    suite.sink.emit(pick(100, conflict=True))
    assert suite.violations() == []  # conflict monitor inactive under CFS


def test_suite_violations_sorted_by_time(codesign_system):
    suite = MonitorSuite().bind(codesign_system)
    suite.sink.emit(pick(500, conflict=True))
    suite.sink.emit(RefreshStretchBeginEvent(time=17, bank=0))  # off-grid
    times = [v.time for v in suite.violations()]
    assert times == sorted(times)
    assert len(times) == 2


def test_suite_strict_propagates(codesign_system):
    suite = MonitorSuite(strict=True).bind(codesign_system)
    with pytest.raises(MonitorError):
        suite.sink.emit(pick(100, conflict=True))


def test_suite_summary_reports_counters(codesign_system):
    suite = MonitorSuite().bind(codesign_system)
    suite.sink.emit(pick(100, conflict=False))
    summary = suite.summary()
    assert summary["scheduler_conflict"]["picks_checked"] == 1
    assert summary["scheduler_conflict"]["violations"] == 0
    assert set(summary) == {m.name for m in default_monitors()}
