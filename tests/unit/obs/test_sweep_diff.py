"""Unit tests for sweep-directory diffing (repro.obs.sweepdiff)."""

import json

import pytest

from repro.core.simulator import make_run_spec, run_spec
from repro.experiments.cache import write_result_entry
from repro.obs import __main__ as obs_main
from repro.obs.diff import ToleranceRule
from repro.obs.sweepdiff import diff_sweep_dirs, index_sweep_dir

FAST = dict(num_windows=0.25, warmup_windows=0.05, refresh_scale=1024)


@pytest.fixture(scope="module")
def cells():
    """Two executed sweep cells, reused across this module's tests."""
    out = []
    for scenario in ("all_bank", "per_bank"):
        spec = make_run_spec("WL-9", scenario, **FAST)
        out.append((spec, run_spec(spec)))
    return out


def _write_dir(tmp_path, name, cells):
    directory = tmp_path / name
    for spec, result in cells:
        write_result_entry(directory, spec, result)
    return directory


def test_identical_dirs_exit_zero(tmp_path, cells):
    a = _write_dir(tmp_path, "a", cells)
    b = _write_dir(tmp_path, "b", cells)
    outcome = diff_sweep_dirs(a, b)
    assert outcome.status == "identical"
    assert outcome.exit_code == 0
    assert len(outcome.matched) == 2
    assert not outcome.unmatched_a and not outcome.unmatched_b


def test_entries_match_by_hash_not_filename(tmp_path, cells):
    a = _write_dir(tmp_path, "a", cells)
    b = _write_dir(tmp_path, "b", cells)
    # Renaming every entry must not change the verdict: the spec inside
    # the payload is what identifies a cell.
    for i, path in enumerate(sorted(b.glob("*.json"))):
        path.rename(b / f"renamed-{i}.json")
    assert diff_sweep_dirs(a, b).exit_code == 0


def test_unmatched_spec_is_a_regression(tmp_path, cells):
    a = _write_dir(tmp_path, "a", cells)
    b = _write_dir(tmp_path, "b", cells[:1])
    outcome = diff_sweep_dirs(a, b)
    assert outcome.status == "regression"
    assert outcome.exit_code == 2
    assert len(outcome.unmatched_a) == 1
    assert "only in A" in outcome.report()


def test_leaf_difference_without_rule_is_regression(tmp_path, cells):
    a = _write_dir(tmp_path, "a", cells)
    b = _write_dir(tmp_path, "b", cells)
    path = sorted(b.glob("*.json"))[0]
    payload = json.loads(path.read_text())
    payload["result"]["avg_read_latency_cycles"] = 999.0
    path.write_text(json.dumps(payload))
    assert diff_sweep_dirs(a, b).exit_code == 2


def test_tolerance_rule_downgrades_to_within(tmp_path, cells):
    a = _write_dir(tmp_path, "a", cells)
    b = _write_dir(tmp_path, "b", cells)
    path = sorted(b.glob("*.json"))[0]
    payload = json.loads(path.read_text())
    key = "avg_read_latency_cycles"
    assert key in payload["result"]
    payload["result"][key] = payload["result"][key] * (1 + 1e-12)
    path.write_text(json.dumps(payload))
    outcome = diff_sweep_dirs(a, b, rules=[ToleranceRule(key, rel_tol=1e-9)])
    assert outcome.status == "within_tolerance"
    assert outcome.exit_code == 1


def test_non_entry_json_files_are_skipped(tmp_path, cells):
    a = _write_dir(tmp_path, "a", cells)
    b = _write_dir(tmp_path, "b", cells)
    (b / "notes.json").write_text(json.dumps({"not": "an entry"}))
    (b / "broken.json").write_text("{nope")
    outcome = diff_sweep_dirs(a, b)
    assert outcome.exit_code == 0
    assert len(outcome.skipped_b) == 2
    assert "skipped" in outcome.report()


def test_index_labels_and_keys(tmp_path, cells):
    a = _write_dir(tmp_path, "a", cells)
    entries, skipped = index_sweep_dir(a)
    assert not skipped
    labels = sorted(entry.label for entry in entries.values())
    assert labels == ["WL-9/all_bank", "WL-9/per_bank"]
    for key, entry in entries.items():
        assert entry.key == key == entry.path.stem


def test_cli_two_directories(tmp_path, cells, capsys):
    a = _write_dir(tmp_path, "a", cells)
    b = _write_dir(tmp_path, "b", cells[:1])
    assert obs_main.main(["diff", str(a), str(b)]) == 2
    out = capsys.readouterr().out
    assert "only in A" in out
    assert obs_main.main(["diff", str(a), str(a)]) == 0


def test_cli_rejects_file_vs_directory(tmp_path, cells):
    a = _write_dir(tmp_path, "a", cells)
    lone = tmp_path / "lone.json"
    lone.write_text("{}")
    with pytest.raises(SystemExit):
        obs_main.main(["diff", str(a), str(lone)])
