"""Cross-run diff: flattening, tolerance rules, severities, CLI."""

import json

import pytest

from repro.obs.diff import ToleranceRule, diff_files, diff_payloads
from repro.obs.__main__ import main as obs_main


PAYLOAD = {
    "scenario": "codesign",
    "hmean_ipc": 0.5689,
    "tasks": [
        {"name": "mcf", "instructions": 1000},
        {"name": "lbm", "instructions": 2000},
    ],
    "energy": None,
}


def test_identical_payloads():
    result = diff_payloads(PAYLOAD, json.loads(json.dumps(PAYLOAD)))
    assert result.status == "identical"
    assert result.exit_code == 0
    assert result.differences == []
    assert result.leaves_compared > 0


def test_regression_reports_leaf_path():
    other = json.loads(json.dumps(PAYLOAD))
    other["tasks"][1]["instructions"] = 2001
    result = diff_payloads(PAYLOAD, other)
    assert result.status == "regression"
    assert result.exit_code == 2
    (diff,) = result.differences
    assert diff.path == "tasks.1.instructions"
    assert (diff.a, diff.b) == (2000, 2001)


def test_tolerance_rule_downgrades_to_within_tolerance():
    other = json.loads(json.dumps(PAYLOAD))
    other["hmean_ipc"] = 0.5689 + 1e-12
    rules = [ToleranceRule("hmean_ipc", abs_tol=1e-9)]
    result = diff_payloads(PAYLOAD, other, rules)
    assert result.status == "within_tolerance"
    assert result.exit_code == 1
    assert result.tolerated and not result.regressions


def test_tolerance_is_per_path():
    other = json.loads(json.dumps(PAYLOAD))
    other["hmean_ipc"] = 0.57
    other["tasks"][0]["instructions"] = 999
    rules = [ToleranceRule("hmean_ipc", abs_tol=1.0)]
    result = diff_payloads(PAYLOAD, other, rules)
    assert result.status == "regression"
    paths = {d.path: d.status for d in result.differences}
    assert paths["hmean_ipc"] == "within_tolerance"
    assert paths["tasks.0.instructions"] == "regression"


def test_relative_tolerance():
    rules = [ToleranceRule("x", rel_tol=0.01)]
    assert diff_payloads({"x": 100.0}, {"x": 100.5}, rules).exit_code == 1
    assert diff_payloads({"x": 100.0}, {"x": 102.0}, rules).exit_code == 2


def test_missing_key_is_always_a_regression():
    other = dict(PAYLOAD)
    del other["energy"]
    rules = [ToleranceRule("*", abs_tol=1e9)]
    result = diff_payloads(PAYLOAD, other, rules)
    assert result.status == "regression"
    assert "energy" in {d.path for d in result.differences}


def test_non_numeric_differences_never_tolerated():
    rules = [ToleranceRule("*", abs_tol=1e9, rel_tol=1e9)]
    result = diff_payloads({"s": "codesign"}, {"s": "all_bank"}, rules)
    assert result.status == "regression"


def test_bool_vs_int_is_a_difference():
    result = diff_payloads({"flag": True}, {"flag": 1})
    assert result.status == "regression"


def test_empty_containers_are_leaves():
    assert diff_payloads({"a": []}, {"a": []}).status == "identical"
    assert diff_payloads({"a": []}, {"a": [1]}).status == "regression"


def test_glob_pattern_matches_list_indices():
    a = {"tasks": [{"ipc": 1.0}, {"ipc": 2.0}]}
    b = {"tasks": [{"ipc": 1.0 + 1e-12}, {"ipc": 2.0 - 1e-12}]}
    rules = [ToleranceRule("tasks.*.ipc", abs_tol=1e-9)]
    assert diff_payloads(a, b, rules).status == "within_tolerance"


def test_diff_files_and_cli(tmp_path, capsys):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(PAYLOAD))
    b.write_text(json.dumps(PAYLOAD))
    assert diff_files(a, b).exit_code == 0
    assert obs_main(["diff", str(a), str(b)]) == 0
    assert "identical" in capsys.readouterr().out

    perturbed = json.loads(json.dumps(PAYLOAD))
    perturbed["hmean_ipc"] = 0.6
    b.write_text(json.dumps(perturbed))
    assert obs_main(["diff", str(a), str(b)]) == 2
    assert "hmean_ipc" in capsys.readouterr().out
    assert obs_main(["diff", str(a), str(b), "--tol", "hmean_ipc=0.5"]) == 1


def test_cli_rejects_bad_rule(tmp_path):
    with pytest.raises(SystemExit):
        obs_main(["diff", "a", "b", "--tol", "no-equals-sign"])
