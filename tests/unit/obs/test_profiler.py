"""Engine self-profiling: attribution, determinism of counts, neutrality."""

from repro.core.engine import Engine
from repro.obs.profiler import EngineProfiler


class FakeClock:
    """Deterministic clock: each read advances by a fixed step."""

    def __init__(self, step: float = 0.001):
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


class Subsystem:
    def __init__(self):
        self.calls = 0

    def tick(self):
        self.calls += 1


def test_bound_methods_aggregate_by_underlying_function():
    profiler = EngineProfiler(clock=FakeClock())
    a, b = Subsystem(), Subsystem()
    profiler.record(a.tick, 0.5)
    profiler.record(b.tick, 0.25)
    report = profiler.report()
    assert report["events_total"] == 2
    (row,) = report["callbacks"]
    assert row["owner"].endswith("Subsystem.tick")
    assert row["events"] == 2
    assert row["wall_seconds"] == 0.75


def test_subsystem_rollup_groups_by_repro_package():
    assert EngineProfiler._subsystem("repro.cpu.core.Core._issue") == "cpu"
    assert EngineProfiler._subsystem(
        "repro.dram.controller.MemoryController._pick") == "dram"
    assert EngineProfiler._subsystem("json.dump") == "json"


def test_report_rows_sorted_by_descending_events():
    profiler = EngineProfiler(clock=FakeClock())
    a = Subsystem()
    for _ in range(3):
        profiler.record(a.tick, 0.1)
    def plain():
        pass
    profiler.record(plain, 0.1)
    report = profiler.report()
    events = [row["events"] for row in report["callbacks"]]
    assert events == sorted(events, reverse=True)
    assert report["subsystems"][0]["events"] >= report["subsystems"][-1]["events"]


def _run_chain(engine, n):
    state = {"fired": 0}

    def hop():
        state["fired"] += 1
        if state["fired"] < n:
            engine.schedule(10, hop)

    engine.schedule(10, hop)
    engine.run()
    return state["fired"]


def test_profiled_run_counts_every_dispatch():
    engine = Engine()
    profiler = EngineProfiler(clock=FakeClock())
    engine.set_profiler(profiler)
    assert _run_chain(engine, 50) == 50
    report = profiler.report()
    assert report["events_total"] == 50
    assert report["events_total"] == engine.events_processed
    assert report["wall_total_seconds"] > 0


def test_profiled_run_matches_unprofiled_run():
    plain = Engine()
    fired_plain = _run_chain(plain, 25)

    profiled = Engine()
    profiled.set_profiler(EngineProfiler(clock=FakeClock()))
    fired_profiled = _run_chain(profiled, 25)

    assert fired_plain == fired_profiled
    assert plain.now == profiled.now
    assert plain.events_processed == profiled.events_processed


def test_profiled_run_until_respects_horizon_and_cancel():
    engine = Engine()
    profiler = EngineProfiler(clock=FakeClock())
    engine.set_profiler(profiler)
    fired = []
    engine.schedule(5, lambda: fired.append(5))
    handle = engine.schedule_event(7, lambda: fired.append(7))
    engine.schedule(20, lambda: fired.append(20))
    handle.cancel()
    engine.run_until(10)
    assert fired == [5]
    assert engine.now == 10
    # Only live dispatches are counted — the cancelled entry is not.
    assert profiler.report()["events_total"] == 1
    engine.run()
    assert fired == [5, 20]
    assert profiler.report()["events_total"] == 2


def test_remove_profiler_restores_plain_loop():
    engine = Engine()
    profiler = EngineProfiler(clock=FakeClock())
    engine.set_profiler(profiler)
    _run_chain(engine, 5)
    engine.set_profiler(None)
    state = {"fired": 0}

    def tick():
        state["fired"] += 1

    engine.schedule_at(engine.now + 1, tick)
    engine.run()
    assert state["fired"] == 1
    assert profiler.report()["events_total"] == 5  # no longer recording


def test_format_table_mentions_top_callback():
    profiler = EngineProfiler(clock=FakeClock())
    a = Subsystem()
    profiler.record(a.tick, 0.5)
    text = profiler.format_table()
    assert "Subsystem.tick" in text
    assert "events" in text
