"""The perf-trajectory aggregator/gate in scripts/bench_trend.py."""

import importlib.util
import json
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "bench_trend.py"
_spec = importlib.util.spec_from_file_location("bench_trend", SCRIPT)
bench_trend = importlib.util.module_from_spec(_spec)
sys.modules["bench_trend"] = bench_trend
_spec.loader.exec_module(bench_trend)


def report(date, ops=5000, events=385525, digest="abc", wall=1.0):
    return {
        "schema": 1,
        "date": date,
        "git": "deadbee",
        "python": "3.12.0",
        "kernels": [
            {"name": "engine_event_chain", "ops": ops,
             "wall_seconds": wall, "ops_per_sec": int(ops / wall)},
        ],
        "end_to_end": {
            "name": "wl6_codesign_end_to_end", "wall_seconds": wall * 3,
            "events_processed": events, "result_sha256": digest,
            "reads_completed": 1,
        },
    }


def write_reports(directory, *reports):
    for entry in reports:
        path = directory / f"BENCH_{entry['date']}.json"
        path.write_text(json.dumps(entry))


def test_signature_covers_counts_and_digest_not_walls():
    a = bench_trend.determinism_signature(report("2026-01-01", wall=1.0))
    b = bench_trend.determinism_signature(report("2026-01-02", wall=99.0))
    assert a == b
    c = bench_trend.determinism_signature(report("2026-01-03", events=1))
    assert a != c


def test_reports_load_oldest_first(tmp_path):
    write_reports(tmp_path, report("2026-02-01"), report("2026-01-01"))
    dates = [r["date"] for r in bench_trend.load_reports(tmp_path)]
    assert dates == ["2026-01-01", "2026-02-01"]


def test_trajectory_table_has_one_row_per_report(tmp_path):
    write_reports(tmp_path, report("2026-01-01"), report("2026-02-01"))
    table = bench_trend.trajectory_table(bench_trend.load_reports(tmp_path))
    assert "2026-01-01" in table and "2026-02-01" in table
    assert "engine_event_chain" in table


def test_gate_passes_on_matching_signature(tmp_path):
    checked_in = report("2026-01-01", wall=1.0)
    fresh = report("2026-01-02", wall=50.0)  # wall drift is fine
    assert bench_trend.gate(checked_in, fresh) == []


def test_gate_fails_on_count_or_digest_drift(tmp_path):
    checked_in = report("2026-01-01")
    assert bench_trend.gate(checked_in, report("2026-01-02", ops=5001))
    assert bench_trend.gate(checked_in, report("2026-01-02", digest="zzz"))


def test_cli_gate_exit_codes(tmp_path, capsys):
    write_reports(tmp_path, report("2026-01-01"))
    fresh_dir = tmp_path / "fresh"
    fresh_dir.mkdir()
    write_reports(fresh_dir, report("2026-01-02"))
    fresh = str(fresh_dir / "BENCH_2026-01-02.json")

    assert bench_trend.main(["--dir", str(tmp_path)]) == 0
    assert bench_trend.main(
        ["--dir", str(tmp_path), "--gate", "--fresh", fresh]
    ) == 0

    write_reports(fresh_dir, report("2026-01-02", events=42))
    assert bench_trend.main(
        ["--dir", str(tmp_path), "--gate", "--fresh", fresh]
    ) == 1
    assert "DETERMINISM REGRESSION" in capsys.readouterr().err


def test_cli_fails_without_reports(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert bench_trend.main(["--dir", str(empty)]) == 1


def test_gate_is_graceful_without_any_baseline(tmp_path, capsys):
    """--gate on an empty trajectory must not fail a fresh checkout."""
    empty = tmp_path / "empty"
    empty.mkdir()
    fresh_dir = tmp_path / "fresh"
    fresh_dir.mkdir()
    write_reports(fresh_dir, report("2026-01-02"))
    fresh = str(fresh_dir / "BENCH_2026-01-02.json")
    assert bench_trend.main(
        ["--dir", str(empty), "--gate", "--fresh", fresh]
    ) == 0
    assert "no trajectory yet" in capsys.readouterr().out


def test_trend_summary_single_point_says_no_trajectory(tmp_path, capsys):
    write_reports(tmp_path, report("2026-01-01"))
    assert bench_trend.main(["--dir", str(tmp_path)]) == 0
    assert "no trajectory yet" in capsys.readouterr().out


def test_trend_summary_two_points_reports_drift():
    reports = [report("2026-01-01", wall=1.0), report("2026-02-01", wall=1.5)]
    summary = bench_trend.trend_summary(reports)
    assert "2026-01-01 -> 2026-02-01" in summary
    assert "engine_event_chain +50.0%" in summary
    assert "end_to_end +50.0%" in summary
