"""The perf-trajectory aggregator/gate in scripts/bench_trend.py."""

import importlib.util
import json
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "bench_trend.py"
_spec = importlib.util.spec_from_file_location("bench_trend", SCRIPT)
bench_trend = importlib.util.module_from_spec(_spec)
sys.modules["bench_trend"] = bench_trend
_spec.loader.exec_module(bench_trend)


def report(date, ops=5000, events=385525, digest="abc", wall=1.0,
           cost_model=None):
    out = {
        "schema": 1,
        "date": date,
        "git": "deadbee",
        "python": "3.12.0",
        "kernels": [
            {"name": "engine_event_chain", "ops": ops,
             "wall_seconds": wall, "ops_per_sec": int(ops / wall)},
        ],
        "end_to_end": {
            "name": "wl6_codesign_end_to_end", "wall_seconds": wall * 3,
            "events_processed": events, "result_sha256": digest,
            "reads_completed": 1,
        },
    }
    if cost_model is not None:
        out["cost_model"] = cost_model
    return out


def model(serviced=2000, dead_ratio=0.008, stale=0.99, row_hits=0.55):
    return {
        "picks": serviced + 16,
        "serviced": serviced,
        "completed": serviced,
        "row_hit_pops": int(serviced * row_hits),
        "drain_entries": 0,
        "drain_exits": 0,
        "dead_pick_ratio": dead_ratio,
        "stale_skips_per_pop": stale,
        "row_hit_pop_ratio": row_hits,
    }


def write_reports(directory, *reports):
    for entry in reports:
        path = directory / f"BENCH_{entry['date']}.json"
        path.write_text(json.dumps(entry))


def test_signature_covers_counts_and_digest_not_walls():
    a = bench_trend.determinism_signature(report("2026-01-01", wall=1.0))
    b = bench_trend.determinism_signature(report("2026-01-02", wall=99.0))
    assert a == b
    c = bench_trend.determinism_signature(report("2026-01-03", events=1))
    assert a != c


def test_reports_load_oldest_first(tmp_path):
    write_reports(tmp_path, report("2026-02-01"), report("2026-01-01"))
    dates = [r["date"] for r in bench_trend.load_reports(tmp_path)]
    assert dates == ["2026-01-01", "2026-02-01"]


def test_trajectory_table_has_one_row_per_report(tmp_path):
    write_reports(tmp_path, report("2026-01-01"), report("2026-02-01"))
    table = bench_trend.trajectory_table(bench_trend.load_reports(tmp_path))
    assert "2026-01-01" in table and "2026-02-01" in table
    assert "engine_event_chain" in table


def test_gate_passes_on_matching_signature(tmp_path):
    checked_in = report("2026-01-01", wall=1.0)
    fresh = report("2026-01-02", wall=50.0)  # wall drift is fine
    assert bench_trend.gate(checked_in, fresh) == ([], [])


def test_gate_fails_on_count_or_digest_drift(tmp_path):
    checked_in = report("2026-01-01")
    assert bench_trend.gate(checked_in, report("2026-01-02", ops=5001))[0]
    assert bench_trend.gate(checked_in, report("2026-01-02", digest="zzz"))[0]


def test_gate_treats_baseline_absent_keys_as_informational():
    """A fresh report with kernels/cost-model fields the baseline predates
    must note them, not fail — otherwise adding a kernel requires an
    impossible simultaneous re-baseline."""
    checked_in = report("2026-01-01")
    fresh = report("2026-01-02", cost_model={"controller_request_stream": model()})
    fresh["kernels"].append(
        {"name": "brand_new_kernel", "ops": 7, "wall_seconds": 0.1,
         "ops_per_sec": 70}
    )
    problems, notes = bench_trend.gate(checked_in, fresh)
    assert problems == []
    assert any("brand_new_kernel" in n for n in notes)
    assert any("cost_model.controller_request_stream" in n for n in notes)


def test_gate_fails_when_fresh_loses_coverage():
    checked_in = report("2026-01-01")
    fresh = report("2026-01-02")
    fresh["kernels"] = []  # the kernel vanished
    problems, _ = bench_trend.gate(checked_in, fresh)
    assert any("missing from fresh" in p for p in problems)


def test_signature_pins_cost_model_behavior_fields():
    a = report("2026-01-01", cost_model={"controller_request_stream": model()})
    b = report(
        "2026-01-02",
        cost_model={"controller_request_stream": model(row_hits=0.60)},
    )
    problems, _ = bench_trend.gate(a, b)
    assert any("row_hit_pops" in p for p in problems)


def test_cost_model_gate_passes_within_tolerance():
    a = report("2026-01-01", cost_model={"k": model(dead_ratio=0.008)})
    b = report("2026-01-02", cost_model={"k": model(dead_ratio=0.012)})
    problems, notes = bench_trend.cost_model_gate(a, b)
    assert problems == [] and notes == []


def test_cost_model_gate_fails_on_regressing_drift():
    a = report("2026-01-01", cost_model={"k": model(dead_ratio=0.008)})
    worse = report("2026-01-02", cost_model={"k": model(dead_ratio=0.10)})
    problems, _ = bench_trend.cost_model_gate(a, worse)
    assert any("dead_pick_ratio" in p for p in problems)

    sweepy = report("2026-01-02", cost_model={"k": model(stale=2.5)})
    problems, _ = bench_trend.cost_model_gate(a, sweepy)
    assert any("stale_skips_per_pop" in p for p in problems)


def test_cost_model_gate_ignores_improvements():
    a = report("2026-01-01", cost_model={"k": model(dead_ratio=0.10, stale=2.0)})
    better = report(
        "2026-01-02", cost_model={"k": model(dead_ratio=0.001, stale=0.1)}
    )
    assert bench_trend.cost_model_gate(a, better) == ([], [])


def test_cost_model_gate_without_baseline_is_informational():
    a = report("2026-01-01")  # predates cost models entirely
    b = report("2026-01-02", cost_model={"k": model()})
    problems, notes = bench_trend.cost_model_gate(a, b)
    assert problems == []
    assert any("no checked-in baseline" in n for n in notes)


def test_cost_model_gate_fails_when_kernel_model_vanishes():
    a = report("2026-01-01", cost_model={"k": model()})
    b = report("2026-01-02", cost_model={})
    problems, _ = bench_trend.cost_model_gate(a, b)
    assert any("missing from fresh" in p for p in problems)


def test_cli_gate_fails_on_hot_path_ratio_regression(tmp_path, capsys):
    write_reports(
        tmp_path, report("2026-01-01", cost_model={"k": model(dead_ratio=0.008)})
    )
    fresh_dir = tmp_path / "fresh"
    fresh_dir.mkdir()
    write_reports(
        fresh_dir, report("2026-01-02", cost_model={"k": model(dead_ratio=0.2)})
    )
    fresh = str(fresh_dir / "BENCH_2026-01-02.json")
    assert bench_trend.main(
        ["--dir", str(tmp_path), "--gate", "--fresh", fresh]
    ) == 1
    assert "HOT-PATH REGRESSION" in capsys.readouterr().err


def test_cli_gate_exit_codes(tmp_path, capsys):
    write_reports(tmp_path, report("2026-01-01"))
    fresh_dir = tmp_path / "fresh"
    fresh_dir.mkdir()
    write_reports(fresh_dir, report("2026-01-02"))
    fresh = str(fresh_dir / "BENCH_2026-01-02.json")

    assert bench_trend.main(["--dir", str(tmp_path)]) == 0
    assert bench_trend.main(
        ["--dir", str(tmp_path), "--gate", "--fresh", fresh]
    ) == 0

    write_reports(fresh_dir, report("2026-01-02", events=42))
    assert bench_trend.main(
        ["--dir", str(tmp_path), "--gate", "--fresh", fresh]
    ) == 1
    assert "DETERMINISM REGRESSION" in capsys.readouterr().err


def test_cli_fails_without_reports(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert bench_trend.main(["--dir", str(empty)]) == 1


def test_gate_is_graceful_without_any_baseline(tmp_path, capsys):
    """--gate on an empty trajectory must not fail a fresh checkout."""
    empty = tmp_path / "empty"
    empty.mkdir()
    fresh_dir = tmp_path / "fresh"
    fresh_dir.mkdir()
    write_reports(fresh_dir, report("2026-01-02"))
    fresh = str(fresh_dir / "BENCH_2026-01-02.json")
    assert bench_trend.main(
        ["--dir", str(empty), "--gate", "--fresh", fresh]
    ) == 0
    assert "no trajectory yet" in capsys.readouterr().out


def test_trend_summary_single_point_says_no_trajectory(tmp_path, capsys):
    write_reports(tmp_path, report("2026-01-01"))
    assert bench_trend.main(["--dir", str(tmp_path)]) == 0
    assert "no trajectory yet" in capsys.readouterr().out


def test_trend_summary_two_points_reports_drift():
    reports = [report("2026-01-01", wall=1.0), report("2026-02-01", wall=1.5)]
    summary = bench_trend.trend_summary(reports)
    assert "2026-01-01 -> 2026-02-01" in summary
    assert "engine_event_chain +50.0%" in summary
    assert "end_to_end +50.0%" in summary
