"""Unit tests for the python -m repro subcommand CLI.

The legacy flag-only invocation (no subcommand) is pinned here as a
deprecated alias: it must keep behaving exactly like `run` while
emitting a DeprecationWarning.
"""

import json

import pytest

from repro.__main__ import main

FAST = [
    "--windows", "0.25", "--warmup", "0.05", "--refresh-scale", "1024",
    "--no-cache",
]


# -- legacy alias --------------------------------------------------------------


def test_legacy_invocation_warns_and_runs(capsys):
    with pytest.warns(DeprecationWarning, match="python -m repro run"):
        assert main(["WL-9", "per_bank", *FAST]) == 0
    assert "hmean IPC" in capsys.readouterr().out


def test_legacy_and_run_subcommand_print_identically(capsys):
    with pytest.warns(DeprecationWarning):
        assert main(["WL-9", "all_bank", *FAST]) == 0
    legacy = capsys.readouterr().out
    assert main(["run", "WL-9", "all_bank", *FAST]) == 0
    assert capsys.readouterr().out == legacy


def test_legacy_resume_flag_still_routes_to_run(tmp_path, capsys):
    ckpt_dir = tmp_path / "ckpts"
    assert main([
        "run", "WL-9", "per_bank", *FAST,
        "--checkpoint-every", "0.1", "--checkpoint-halt", "1",
        "--checkpoint-dir", str(ckpt_dir),
    ]) == 0
    capsys.readouterr()
    (ckpt,) = ckpt_dir.glob("ckpt-*.json")
    # `--resume` with no subcommand predates the restructure.
    with pytest.warns(DeprecationWarning):
        assert main(["--resume", str(ckpt), *FAST]) == 0
    assert "resuming" in capsys.readouterr().out


def test_run_subcommand_does_not_warn(capsys, recwarn):
    assert main(["run", "WL-9", "per_bank", *FAST]) == 0
    assert not [
        w for w in recwarn if issubclass(w.category, DeprecationWarning)
    ]


def test_no_arguments_errors():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_scenario_errors_via_subcommand():
    with pytest.raises(SystemExit):
        main(["run", "WL-9", "quantum_refresh", *FAST])


# -- sweep ---------------------------------------------------------------------


def test_sweep_writes_hash_keyed_entries(tmp_path, capsys):
    out = tmp_path / "out"
    assert main([
        "sweep", "--workloads", "WL-9", "--scenarios", "all_bank,per_bank",
        *FAST, "--out", str(out), "--jobs", "1",
    ]) == 0
    assert capsys.readouterr().out.count("hmean IPC") == 2
    entries = sorted(out.glob("*.json"))
    assert len(entries) == 2
    from repro.core.runspec import RunSpec
    from repro.experiments.cache import read_result_entry

    for path in entries:
        spec_payload, result_payload = read_result_entry(path)
        # Filename is the spec's content hash.
        assert path.stem == RunSpec.from_dict(spec_payload).content_hash()
        assert result_payload["workload"] == "WL-9"


def test_sweep_out_dirs_diff_identical(tmp_path, capsys):
    from repro.obs import __main__ as obs_main

    args = [
        "sweep", "--workloads", "WL-9", "--scenarios", "per_bank",
        *FAST, "--jobs", "1",
    ]
    assert main([*args, "--out", str(tmp_path / "a")]) == 0
    assert main([*args, "--out", str(tmp_path / "b")]) == 0
    capsys.readouterr()
    assert obs_main.main(
        ["diff", str(tmp_path / "a"), str(tmp_path / "b")]
    ) == 0


def test_sweep_requires_both_axes():
    with pytest.raises(SystemExit):
        main(["sweep", "--workloads", "WL-9", *FAST])


def test_sweep_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        main(["sweep", "--workloads", "WL-99", "--scenarios", "per_bank",
              *FAST])


# -- serve / submit ------------------------------------------------------------


@pytest.fixture
def live_server(tmp_path):
    from repro.service import SweepService, ThreadBackend, serve_in_thread

    service = SweepService(
        backend=ThreadBackend(jobs=2), cache_dir=tmp_path / "svc-cache"
    )
    server, thread = serve_in_thread(service)
    yield server
    server.stop()
    thread.join(timeout=10)
    service.backend.close()


def test_submit_matrix_and_out_entries(live_server, tmp_path, capsys):
    out = tmp_path / "svc-out"
    assert main([
        "submit", "--workloads", "WL-9", "--scenarios", "all_bank,per_bank",
        "--windows", "0.25", "--warmup", "0.05", "--refresh-scale", "1024",
        "--port", str(live_server.port), "--out", str(out),
    ]) == 0
    printed = capsys.readouterr().out
    assert printed.count("hmean IPC") == 2
    assert "[executed]" in printed
    assert len(list(out.glob("*.json"))) == 2


def test_submit_positional_spec_and_json(live_server, tmp_path, capsys):
    path = tmp_path / "result.json"
    assert main([
        "submit", "WL-9", "per_bank",
        "--windows", "0.25", "--warmup", "0.05", "--refresh-scale", "1024",
        "--port", str(live_server.port), "--json", str(path),
    ]) == 0
    data = json.loads(path.read_text())
    assert data["workload"] == "WL-9"
    assert data["hmean_ipc"] > 0


def test_submit_stream_writes_canonical_jsonl(live_server, tmp_path, capsys):
    stream = tmp_path / "events.jsonl"
    assert main([
        "submit", "WL-9", "per_bank",
        "--windows", "0.25", "--warmup", "0.05", "--refresh-scale", "1024",
        "--port", str(live_server.port), "--stream", str(stream),
    ]) == 0
    lines = stream.read_text().splitlines()
    assert lines
    for line in lines[:5]:
        payload = json.loads(line)
        assert "kind" in payload
        # Canonical encoding (sorted keys, tight separators).
        assert line == json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )


def test_submit_ping_and_status(live_server, capsys):
    assert main(["submit", "--ping", "--port", str(live_server.port)]) == 0
    hello = json.loads(capsys.readouterr().out)
    assert hello["type"] == "pong"
    assert main(["submit", "--status", "--port", str(live_server.port)]) == 0
    counters = json.loads(capsys.readouterr().out)
    assert "runs_executed" in counters


def test_submit_requires_a_target(live_server):
    with pytest.raises(SystemExit):
        main(["submit", "--port", str(live_server.port)])


def test_submit_unreachable_server_exits_one(capsys):
    # Port 1 is never listening; the CLI reports instead of tracebacking.
    assert main(["submit", "--ping", "--port", "1"]) == 1
    assert "cannot reach" in capsys.readouterr().err
