"""Unit tests for Table 2 workload mixes."""

import pytest

from repro.errors import ConfigError
from repro.workloads.benchmark import MpkiClass
from repro.workloads.mixes import (
    mix_label,
    mix_names,
    scaled_mix,
    workload_mix,
)


def test_all_ten_mixes_present():
    assert mix_names() == [f"WL-{i}" for i in range(1, 11)]


def test_every_mix_has_eight_tasks():
    # Dual-core 1:4 consolidation (Table 2).
    for name in mix_names():
        assert len(workload_mix(name)) == 8, name


def test_wl1_is_eight_mcf():
    specs = workload_mix("WL-1")
    assert all(s.name == "mcf" for s in specs)
    assert all(s.mpki_class is MpkiClass.HIGH for s in specs)


def test_wl4_composition():
    specs = workload_mix("WL-4")
    names = sorted(s.name for s in specs)
    assert names == ["h264ref"] * 4 + ["povray"] * 4


def test_wl10_composition():
    counts = {}
    for s in workload_mix("WL-10"):
        counts[s.name] = counts.get(s.name, 0) + 1
    assert counts == {"mcf": 4, "bwaves": 2, "povray": 2}


def test_mpki_categories_match_table2():
    # Table 2 categories: WL-1 H, WL-2/3/4 L, WL-5 M.
    assert all(s.mpki_class is MpkiClass.LOW for s in workload_mix("WL-2"))
    assert all(s.mpki_class is MpkiClass.LOW for s in workload_mix("WL-3"))
    assert all(s.mpki_class is MpkiClass.MEDIUM for s in workload_mix("WL-5"))


def test_unknown_mix_raises():
    with pytest.raises(ConfigError):
        workload_mix("WL-99")


def test_scaled_mix_preserves_proportions():
    specs = scaled_mix("WL-4", 16)
    counts = {}
    for s in specs:
        counts[s.name] = counts.get(s.name, 0) + 1
    assert counts == {"povray": 8, "h264ref": 8}


def test_scaled_mix_downscale():
    specs = scaled_mix("WL-6", 4)
    counts = {}
    for s in specs:
        counts[s.name] = counts.get(s.name, 0) + 1
    assert counts == {"mcf": 2, "povray": 2}


def test_scaled_mix_rejects_zero():
    with pytest.raises(ConfigError):
        scaled_mix("WL-1", 0)


def test_mix_label():
    assert mix_label(workload_mix("WL-6")) == "mcf(4), povray(4)"
