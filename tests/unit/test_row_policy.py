"""Unit tests for the row-buffer management policy (open vs closed)."""

import pytest

from repro.config.dram_configs import DramOrganization
from repro.config.system_configs import default_system_config
from repro.core.engine import Engine
from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest, RequestType
from repro.dram.timing import DramTiming
from repro.errors import ConfigError, SimulationError


def build(row_policy):
    config = default_system_config(refresh_scale=1024)
    timing = DramTiming.from_config(config)
    engine = Engine()
    org = DramOrganization()
    mapping = AddressMapping(org, total_rows_per_bank=64)
    mc = MemoryController(engine, timing, org, mapping, row_policy=row_policy)
    return engine, mapping, mc, timing


def read(mapping, frame, column=0, on_complete=None):
    a = mapping.frame_offset_to_address(frame, column * 64)
    return MemoryRequest(RequestType.READ, a, mapping.address_to_coordinate(a),
                         on_complete=on_complete)


def test_unknown_policy_rejected():
    with pytest.raises(SimulationError):
        build("lru")
    with pytest.raises(ConfigError):
        default_system_config(row_policy="lru")


def test_closed_policy_never_row_hits():
    engine, mapping, mc, timing = build("closed")
    done = []
    mc.enqueue(read(mapping, 0, 0, done.append))
    mc.enqueue(read(mapping, 0, 1, done.append))
    engine.run_until(100_000)
    assert len(done) == 2
    assert mc.stats.row_hits == 0
    assert mc.banks[0].open_row is None


def test_open_policy_hits_same_row():
    engine, mapping, mc, timing = build("open")
    done = []
    mc.enqueue(read(mapping, 0, 0, done.append))
    mc.enqueue(read(mapping, 0, 1, done.append))
    engine.run_until(100_000)
    assert mc.stats.row_hits == 1
    assert mc.banks[0].open_row is not None


def test_closed_policy_next_access_pays_act_not_pre():
    """At bank level, a closed-row access leaves the bank precharged: the
    next access to a *different* row pays ACT+CAS, never the conflict PRE."""
    from repro.dram.bank import Bank, ChannelBus, Rank
    from repro.dram.address import DramCoordinate

    config = default_system_config(refresh_scale=1024)
    timing = DramTiming.from_config(config)

    def one_pass(close_row):
        bank, rank, bus = Bank(0, 0, 0, 0), Rank(0, 0), ChannelBus()
        req0 = MemoryRequest(
            RequestType.READ, 0, DramCoordinate(0, 0, 0, 0, 0)
        )
        req0.arrive_time = 0
        bank.service(req0, 0, timing, rank, bus, close_row=close_row)
        req1 = MemoryRequest(
            RequestType.READ, 0, DramCoordinate(0, 0, 0, 5, 0)
        )
        t = 100_000  # far in the future: all recovery windows elapsed
        req1.arrive_time = t
        service = bank.service(req1, t, timing, rank, bus, close_row=close_row)
        return service.cas_time - t, bank

    closed_delay, closed_bank = one_pass(close_row=True)
    open_delay, open_bank = one_pass(close_row=False)
    assert closed_delay == timing.tRCD  # ACT + CAS
    assert open_delay == timing.tRP + timing.tRCD  # PRE + ACT + CAS
    assert closed_bank.stats.row_misses == 2
    assert open_bank.stats.row_conflicts == 1


def test_end_to_end_open_beats_closed_for_local_workload():
    from repro import run_simulation

    common = dict(num_windows=0.5, warmup_windows=0.1, refresh_scale=512)
    open_row = run_simulation("WL-7", "per_bank", row_policy="open", **common)
    closed = run_simulation("WL-7", "per_bank", row_policy="closed", **common)
    # WL-7 (stream) has 90% row locality: the open policy must win.
    assert open_row.hmean_ipc > closed.hmean_ipc
    assert open_row.row_hit_rate > 0.5
    assert closed.row_hit_rate == 0.0
