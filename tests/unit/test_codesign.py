"""Unit tests for bank-vector assignment and schedulability."""

import pytest

from repro.config.dram_configs import DramOrganization
from repro.errors import ConfigError
from repro.os.codesign import (
    assign_bank_vectors,
    default_banks_per_task,
    is_fully_schedulable,
    schedulability_report,
)

ORG = DramOrganization()


class TestDefaultBanksPerTask:
    def test_paper_sweet_spots(self):
        # 1:4 dual-core -> 6 banks (Section 6.2); 1:2 -> 4 banks (6.6).
        assert default_banks_per_task(8, 2) == 6
        assert default_banks_per_task(4, 2) == 4
        assert default_banks_per_task(16, 4) == 6
        assert default_banks_per_task(8, 4) == 4

    def test_rejects_too_few_tasks(self):
        with pytest.raises(ConfigError):
            default_banks_per_task(2, 2)  # one task per core
        with pytest.raises(ConfigError):
            default_banks_per_task(1, 2)


class TestAssignment:
    def test_vector_sizes(self):
        vectors = assign_bank_vectors(8, 2, ORG)
        for v in vectors:
            assert len(v) == 6 * 2  # 6 banks per rank x 2 ranks

    def test_exclusions_symmetric_across_ranks(self):
        vectors = assign_bank_vectors(8, 2, ORG)
        for v in vectors:
            rank0 = {b for b in v if b < 8}
            rank1 = {b - 8 for b in v if b >= 8}
            assert rank0 == rank1

    def test_per_core_exclusions_tile_all_banks(self):
        vectors = assign_bank_vectors(8, 2, ORG)
        for core in (0, 1):
            excluded = set()
            for t in range(core, 8, 2):
                excluded |= set(range(8)) - {b for b in vectors[t] if b < 8}
            assert excluded == set(range(8))

    def test_fully_schedulable_at_paper_configs(self):
        for tasks, cores in ((8, 2), (4, 2), (16, 4), (8, 4)):
            vectors = assign_bank_vectors(tasks, cores, ORG)
            assert is_fully_schedulable(vectors, cores, ORG), (tasks, cores)

    def test_explicit_banks_per_task(self):
        vectors = assign_bank_vectors(8, 2, ORG, banks_per_task=4)
        for v in vectors:
            assert len(v) == 4 * 2

    def test_one_bank_per_task(self):
        vectors = assign_bank_vectors(8, 2, ORG, banks_per_task=1)
        for v in vectors:
            assert len(v) == 2  # one bank in each rank

    def test_invalid_banks_per_task(self):
        with pytest.raises(ConfigError):
            assign_bank_vectors(8, 2, ORG, banks_per_task=8)
        with pytest.raises(ConfigError):
            assign_bank_vectors(8, 2, ORG, banks_per_task=0)

    def test_quad_core_four_ranks(self):
        org4 = DramOrganization(ranks_per_channel=4)
        vectors = assign_bank_vectors(16, 4, org4)
        assert is_fully_schedulable(vectors, 4, org4)
        for v in vectors:
            assert len(v) == 6 * 4


class TestSchedulabilityReport:
    def test_report_shape(self):
        vectors = assign_bank_vectors(8, 2, ORG)
        report = schedulability_report(vectors, 2, ORG)
        assert set(report) == set(range(16))
        for cores in report.values():
            assert cores == [0, 1]

    def test_unschedulable_detected(self):
        # All tasks span all banks: nobody is ever clean.
        vectors = [frozenset(range(16))] * 4
        assert not is_fully_schedulable(vectors, 2, ORG)
        report = schedulability_report(vectors, 2, ORG)
        assert all(cores == [] for cores in report.values())
