"""Unit tests for the configurable address layouts."""

import pytest

from repro.config.dram_configs import DramOrganization
from repro.dram.address import LAYOUTS, AddressMapping
from repro.errors import AddressMapError, ConfigError


@pytest.fixture
def org():
    return DramOrganization()


def test_unknown_layout_rejected(org):
    with pytest.raises(AddressMapError):
        AddressMapping(org, 16, layout="zigzag")


def test_config_validates_layout():
    from repro.config.system_configs import default_system_config

    with pytest.raises(ConfigError):
        default_system_config(address_layout="zigzag")


@pytest.mark.parametrize("layout", sorted(LAYOUTS))
def test_roundtrip_every_layout(org, layout):
    mapping = AddressMapping(org, 8, layout=layout)
    for frame in range(mapping.total_frames):
        coord = mapping.frame_to_coordinate(frame)
        assert mapping.coordinate_to_frame(coord) == frame


@pytest.mark.parametrize("layout", sorted(LAYOUTS))
def test_balance_every_layout(org, layout):
    mapping = AddressMapping(org, 8, layout=layout)
    counts: dict[int, int] = {}
    for frame in range(mapping.total_frames):
        bank = mapping.frame_to_bank_index(frame)
        counts[bank] = counts.get(bank, 0) + 1
    assert set(counts.values()) == {8}


def test_interleaved_stripes_banks(org):
    mapping = AddressMapping(org, 8, layout="interleaved")
    banks = [mapping.frame_to_coordinate(f).bank for f in range(8)]
    assert banks == list(range(8))


def test_bank_contiguous_keeps_rows_together(org):
    mapping = AddressMapping(org, 8, layout="bank_contiguous")
    coords = [mapping.frame_to_coordinate(f) for f in range(8)]
    assert all(c.bank == 0 and c.rank == 0 for c in coords)
    assert [c.row for c in coords] == list(range(8))


def test_rank_interleaved_alternates_ranks_before_banks(org):
    mapping = AddressMapping(org, 8, layout="rank_interleaved")
    c0 = mapping.frame_to_coordinate(0)
    c1 = mapping.frame_to_coordinate(1)
    assert (c0.rank, c0.bank) == (0, 0)
    assert (c1.rank, c1.bank) == (1, 0)


def test_layouts_affect_baseline_bank_spread_end_to_end():
    """With the bank-oblivious allocator, the interleaved layout spreads a
    task across all banks while bank_contiguous concentrates it — the
    hardware mapping is what decides baseline interference."""
    from repro.core.simulator import build_system

    spread = {}
    for layout in ("interleaved", "bank_contiguous"):
        system = build_system(
            "WL-9", "all_bank", refresh_scale=1024, address_layout=layout
        )
        task = next(t for t in system.tasks if len(t.frames) >= 16)
        spread[layout] = len(task.pages_per_bank)
    assert spread["interleaved"] == 16
    assert spread["bank_contiguous"] < spread["interleaved"]
