"""Unit tests for the trace-driven workload front-end."""

import random

import pytest

from repro.config.dram_configs import DramOrganization
from repro.config.system_configs import CacheConfig
from repro.cpu.hierarchy import CacheHierarchy
from repro.dram.address import AddressMapping
from repro.errors import ConfigError
from repro.os.task import Task
from repro.workloads.trace import (
    TraceRecord,
    TraceWorkload,
    sequential_trace,
    strided_trace,
)


@pytest.fixture
def mapping():
    return AddressMapping(DramOrganization(), total_rows_per_bank=64)


def make_hierarchy():
    return CacheHierarchy(
        CacheConfig(l1_size_bytes=1024, l2_size_per_core_bytes=4096, l2_assoc=4)
    )


def make_task(mapping, workload, num_pages=64):
    task = Task("trace", workload, task_id=0)
    task.rng = random.Random(1)
    for frame in range(num_pages):
        task.add_frame(frame, mapping.frame_to_bank_index(frame))
    return task


def test_empty_trace_rejected():
    with pytest.raises(ConfigError):
        TraceWorkload("t", [], make_hierarchy())


def test_cold_trace_generates_llc_misses(mapping):
    trace = sequential_trace(64, stride_bytes=4096)  # one access per page
    workload = TraceWorkload("t", trace, make_hierarchy())
    task = make_task(mapping, workload)
    access = workload.next_access(task)
    assert access.address is not None
    assert access.instructions >= 1


def test_translation_maps_vpages_to_frames(mapping):
    trace = [TraceRecord(1, 3 * 4096 + 128, False)]
    workload = TraceWorkload("t", trace, make_hierarchy())
    task = make_task(mapping, workload, num_pages=8)
    access = workload.next_access(task)
    frame, offset = divmod(access.address, 4096)
    assert frame == task.frames[3]
    assert offset == 128


def test_vpages_beyond_footprint_wrap(mapping):
    trace = [TraceRecord(1, 100 * 4096, False)]
    workload = TraceWorkload("t", trace, make_hierarchy())
    task = make_task(mapping, workload, num_pages=8)
    access = workload.next_access(task)
    assert access.address // 4096 == task.frames[100 % 8]


def test_cache_resident_trace_yields_compute_gaps(mapping):
    # A trace touching a single line: after the cold miss, all hits.
    trace = [TraceRecord(10, 0, False)] * 8
    workload = TraceWorkload("t", trace, make_hierarchy())
    task = make_task(mapping, workload)
    first = workload.next_access(task)
    assert first.address is not None  # cold miss
    second = workload.next_access(task)
    assert second.address is None  # full pass of hits -> compute gap
    assert second.instructions >= 7 * 10


def test_no_frames_task_gets_compute_gap(mapping):
    workload = TraceWorkload("t", sequential_trace(8), make_hierarchy())
    task = Task("empty", workload, task_id=0)
    task.rng = random.Random(1)
    assert workload.next_access(task).address is None


def test_dirty_victims_become_writebacks(mapping):
    # Write every line, then thrash far past L1+L2 capacity.
    trace = sequential_trace(512, stride_bytes=64, write_every=1)
    workload = TraceWorkload("t", trace, make_hierarchy())
    task = make_task(mapping, workload)
    writebacks = 0
    for _ in range(400):
        if workload.next_access(task).writeback_address is not None:
            writebacks += 1
    assert writebacks > 0


def test_sequential_trace_builder():
    trace = sequential_trace(4, stride_bytes=64, gap_instructions=7, write_every=2)
    assert [r.vaddr for r in trace] == [0, 64, 128, 192]
    assert [r.is_write for r in trace] == [False, True, False, True]
    assert all(r.gap_instructions == 7 for r in trace)


def test_strided_trace_wraps_in_span():
    trace = strided_trace(10, stride_bytes=100, span_bytes=256)
    assert all(0 <= r.vaddr < 256 for r in trace)
    with pytest.raises(ConfigError):
        strided_trace(4, 64, 0)
