"""Unit tests for the python -m repro run CLI."""

import json

import pytest

from repro.__main__ import main, result_to_dict

FAST = [
    "--windows", "0.25", "--warmup", "0.05", "--refresh-scale", "1024",
    "--no-cache",
]


def test_basic_run_prints_summary(capsys):
    assert main(["WL-9", "per_bank", *FAST]) == 0
    out = capsys.readouterr().out
    assert "hmean IPC" in out
    assert "WL-9" in out
    assert "energy" in out


def test_json_export(tmp_path, capsys):
    path = tmp_path / "result.json"
    assert main(["WL-9", "all_bank", "--json", str(path), *FAST]) == 0
    data = json.loads(path.read_text())
    assert data["workload"] == "WL-9"
    assert data["scenario"] == "all_bank"
    assert len(data["tasks"]) == 8
    assert data["hmean_ipc"] > 0
    assert data["energy"]["total_mj"] > 0


def test_density_and_retention_flags(capsys):
    assert main(
        ["WL-9", "all_bank", "--density", "16", "--trefw-ms", "32", *FAST]
    ) == 0
    out = capsys.readouterr().out
    assert "16Gb" in out
    assert "32.0ms" in out


def test_unknown_workload_errors():
    with pytest.raises(SystemExit):
        main(["WL-99", "all_bank", *FAST])


def test_unknown_scenario_errors():
    with pytest.raises(SystemExit):
        main(["WL-1", "quantum_refresh", *FAST])


def test_multi_scenario_fanout(tmp_path, capsys):
    path = tmp_path / "results.json"
    args = [
        "WL-9", "all_bank,codesign",
        "--windows", "0.25", "--warmup", "0.05", "--refresh-scale", "1024",
        "--cache-dir", str(tmp_path / "cache"), "--jobs", "1",
        "--json", str(path),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert out.count("hmean IPC") == 2
    data = json.loads(path.read_text())
    assert [d["scenario"] for d in data] == ["all_bank", "codesign"]


def test_cli_uses_disk_cache(tmp_path, capsys):
    cache = tmp_path / "cache"
    args = [
        "WL-9", "per_bank",
        "--windows", "0.25", "--warmup", "0.05", "--refresh-scale", "1024",
        "--cache-dir", str(cache),
    ]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert list(cache.rglob("*.json")), "cache entry written"
    assert main(args) == 0  # second run: served from disk
    assert capsys.readouterr().out == first


def test_result_to_dict_roundtrips_through_json():
    from repro import run_simulation

    result = run_simulation(
        "WL-9", "codesign", num_windows=0.25, warmup_windows=0.05,
        refresh_scale=1024,
    )
    data = json.loads(json.dumps(result_to_dict(result)))
    assert data["scheduler_clean_picks"] == result.scheduler_clean_picks
    assert data["refresh_stall_fraction"] == result.refresh_stall_fraction


def test_monitors_flag_clean_run_exits_zero(tmp_path, capsys):
    path = tmp_path / "result.json"
    assert main(
        ["WL-9", "codesign", "--monitors", "--json", str(path), *FAST]
    ) == 0
    out = capsys.readouterr().out
    assert "monitors" in out
    assert "VIOLATION" not in out
    # Monitored --json payloads carry the (empty) violation list.
    data = json.loads(path.read_text())
    assert data["monitor_violations"] == []


def test_monitors_flag_collect_exits_one_on_violations(capsys, monkeypatch):
    from repro.os.refresh_aware import RefreshAwareScheduler
    from repro.os.scheduler import CfsScheduler

    monkeypatch.setattr(
        RefreshAwareScheduler, "pick_next_task", CfsScheduler.pick_next_task
    )
    assert main(["WL-9", "codesign", "--monitors", *FAST]) == 1
    assert "VIOLATION" in capsys.readouterr().out


def test_monitors_strict_exits_two_on_violations(capsys, monkeypatch):
    from repro.os.refresh_aware import RefreshAwareScheduler
    from repro.os.scheduler import CfsScheduler

    monkeypatch.setattr(
        RefreshAwareScheduler, "pick_next_task", CfsScheduler.pick_next_task
    )
    assert main(["WL-9", "codesign", "--monitors=strict", *FAST]) == 2
    assert "monitor violation" in capsys.readouterr().err


def test_profile_flag_writes_report(tmp_path, capsys):
    path = tmp_path / "profile.json"
    assert main(["WL-9", "per_bank", "--profile", str(path), *FAST]) == 0
    report = json.loads(path.read_text())
    assert report["events_total"] > 0
    assert report["subsystems"]
    owners = {row["owner"] for row in report["callbacks"]}
    assert any("MemoryController" in owner for owner in owners)
    assert "dispatch profile" in capsys.readouterr().out


def test_unmonitored_json_has_no_violation_key(tmp_path):
    path = tmp_path / "result.json"
    assert main(["WL-9", "per_bank", "--json", str(path), *FAST]) == 0
    assert "monitor_violations" not in json.loads(path.read_text())
