"""Unit tests for result containers and the report formatter."""

import pytest

from repro.core.results import RunResult, TaskResult
from repro.dram.request import MemoryRequest, RequestType
from repro.dram.address import DramCoordinate
from repro.experiments.report import format_percent, format_table


def make_task_result(name="t", instructions=1000, cycles=2000):
    return TaskResult(
        task_id=0,
        name=name,
        instructions=instructions,
        scheduled_cycles=cycles,
        quanta=4,
        reads_completed=10,
        avg_read_latency_cycles=100.0,
        refresh_stall_cycles=5,
    )


def test_task_result_ipc():
    assert make_task_result().ipc == 0.5
    assert make_task_result(cycles=0).ipc == 0.0


def test_run_result_hmean():
    result = RunResult(
        scenario="s", workload="w", density_gbit=32, trefw_ms=64.0,
        simulated_cycles=1,
        tasks=[make_task_result(cycles=1000), make_task_result(cycles=4000)],
    )
    # IPCs 1.0 and 0.25 -> harmonic mean 0.4.
    assert result.hmean_ipc == pytest.approx(0.4)


def test_latency_unit_conversion():
    result = RunResult(
        scenario="s", workload="w", density_gbit=32, trefw_ms=64.0,
        simulated_cycles=1, avg_read_latency_cycles=400.0, cpu_per_mem_cycle=4,
    )
    assert result.avg_read_latency_mem_cycles == 100.0


def test_refresh_stall_fraction():
    result = RunResult(
        scenario="s", workload="w", density_gbit=32, trefw_ms=64.0,
        simulated_cycles=1, reads_completed=200, refresh_stalled_reads=20,
    )
    assert result.refresh_stall_fraction == 0.1
    empty = RunResult(
        scenario="s", workload="w", density_gbit=32, trefw_ms=64.0,
        simulated_cycles=1,
    )
    assert empty.refresh_stall_fraction == 0.0


def test_task_ipc_by_name():
    result = RunResult(
        scenario="s", workload="w", density_gbit=32, trefw_ms=64.0,
        simulated_cycles=1,
        tasks=[make_task_result("mcf"), make_task_result("povray")],
    )
    assert result.task_ipc("mcf") == [0.5]
    assert result.task_ipc("nope") == []


def test_summary_contains_key_fields():
    result = RunResult(
        scenario="codesign", workload="WL-6", density_gbit=32, trefw_ms=64.0,
        simulated_cycles=100, tasks=[make_task_result()],
    )
    text = result.summary()
    assert "codesign" in text and "WL-6" in text and "hmean IPC" in text


def test_request_latency_requires_completion():
    coord = DramCoordinate(0, 0, 0, 0, 0)
    request = MemoryRequest(RequestType.READ, 0, coord)
    with pytest.raises(ValueError):
        _ = request.latency


def test_format_table_alignment():
    table = format_table(["a", "bb"], [[1, 2.5], [30, "x"]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "2.500" in table
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # all rows aligned


def test_format_percent():
    assert format_percent(0.162) == "+16.2%"
    assert format_percent(-0.05) == "-5.0%"


def test_monitor_violations_round_trip():
    from repro.obs.monitors import MonitorViolation

    result = RunResult(
        scenario="codesign", workload="WL-6", density_gbit=32, trefw_ms=64.0,
        simulated_cycles=100,
        monitor_violations=[
            MonitorViolation(
                monitor="refresh_stretch", time=5, message="short stretch",
                context={"bank": 2},
            )
        ],
    )
    reloaded = RunResult.from_dict(result.to_dict())
    assert reloaded.monitor_violations == result.monitor_violations


def test_unmonitored_result_omits_violation_key():
    result = RunResult(
        scenario="codesign", workload="WL-6", density_gbit=32, trefw_ms=64.0,
        simulated_cycles=100,
    )
    data = result.to_dict()
    assert "monitor_violations" not in data
    reloaded = RunResult.from_dict(data)
    assert reloaded.monitor_violations is None


def test_monitored_clean_result_keeps_empty_list():
    result = RunResult(
        scenario="codesign", workload="WL-6", density_gbit=32, trefw_ms=64.0,
        simulated_cycles=100, monitor_violations=[],
    )
    data = result.to_dict()
    assert data["monitor_violations"] == []
    assert RunResult.from_dict(data).monitor_violations == []
