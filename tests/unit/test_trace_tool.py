"""Unit tests for the schedule tracer."""

import pytest

from repro.core.simulator import build_system
from repro.core.trace import ScheduleTracer


@pytest.fixture(scope="module")
def traced_codesign():
    system = build_system("WL-1", "codesign", refresh_scale=512)
    tracer = ScheduleTracer(system)
    system.run(num_windows=1.0, warmup_windows=0.0)
    return system, tracer


def test_records_every_core_every_quantum(traced_codesign):
    system, tracer = traced_codesign
    quanta = tracer.quanta()
    assert len(quanta) >= 16
    for t in quanta:
        cores = {r.core_id for r in tracer.records if r.time == t}
        assert cores == {0, 1}


def test_codesign_timeline_is_conflict_free(traced_codesign):
    """The Figure 9 property: under the co-design no dispatched task has
    data in the bank being refreshed during its quantum."""
    _, tracer = traced_codesign
    assert tracer.conflicts() == []
    assert tracer.conflict_free_fraction() == 1.0


def test_refresh_bank_rotates_through_stretches(traced_codesign):
    _, tracer = traced_codesign
    banks = [
        r.refresh_bank
        for r in tracer.records
        if r.core_id == 0
    ][:16]
    assert banks == list(range(16))


def test_baseline_cfs_has_conflicts():
    system = build_system("WL-1", "same_bank_hw_only", refresh_scale=512)
    tracer = ScheduleTracer(system)
    system.run(num_windows=1.0, warmup_windows=0.0)
    # CFS is refresh-oblivious: mcf tasks span all banks, so every
    # dispatch conflicts with the ongoing stretch.
    assert tracer.conflict_free_fraction() < 0.2


def test_unpredictable_schedule_records_none():
    system = build_system("WL-9", "per_bank", refresh_scale=512)
    tracer = ScheduleTracer(system)
    system.run(num_windows=0.25, warmup_windows=0.0)
    assert all(r.refresh_bank is None for r in tracer.records)
    assert tracer.conflicts() == []


def test_timeline_rendering(traced_codesign):
    _, tracer = traced_codesign
    text = tracer.timeline(max_quanta=8)
    assert "c0" in text and "c1" in text and "ref" in text
    assert "b0" in text
    lines = text.splitlines()
    assert len(lines) == 1 + 2 + 1 + 1  # header, 2 cores, refresh, legend


def test_timeline_empty():
    system = build_system("WL-9", "per_bank", refresh_scale=512)
    tracer = ScheduleTracer(system)
    assert tracer.timeline() == "(no records)"
    assert tracer.conflict_free_fraction() == 0.0
