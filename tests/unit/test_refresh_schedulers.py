"""Unit tests for all refresh schedulers, including coverage guarantees."""

import pytest

from repro.config.dram_configs import DramOrganization
from repro.config.system_configs import default_system_config
from repro.core.engine import Engine
from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.refresh import (
    REGISTRY,
    SCHEDULERS,
    available_policies,
    make_scheduler,
)
from repro.dram.refresh.adaptive import AdaptiveRefresh
from repro.dram.timing import DramTiming
from repro.errors import ConfigError


def build(scheduler_name: str, refresh_scale: int = 1024):
    config = default_system_config(refresh_scale=refresh_scale)
    timing = DramTiming.from_config(config)
    engine = Engine()
    org = DramOrganization()
    mapping = AddressMapping(org, total_rows_per_bank=16)
    mc = MemoryController(engine, timing, org, mapping)
    scheduler = make_scheduler(scheduler_name)
    scheduler.attach(mc, engine, timing)
    return engine, timing, mc, scheduler


def test_registry_contents():
    assert set(REGISTRY) == {
        "no_refresh", "all_bank", "per_bank", "same_bank",
        "ooo_per_bank", "adaptive", "elastic", "pausing",
    }
    assert SCHEDULERS is REGISTRY  # compatibility alias
    assert available_policies() == sorted(REGISTRY)
    with pytest.raises(ConfigError):
        make_scheduler("bogus")


def test_unknown_policy_suggests_close_match():
    with pytest.raises(ConfigError, match="did you mean 'same_bank'"):
        make_scheduler("samebank")


class TestNoRefresh:
    def test_issues_nothing(self):
        engine, timing, mc, sched = build("no_refresh")
        sched.start()
        engine.run_until(timing.trefw)
        assert sched.stats.commands_issued == 0
        assert not sched.is_predictable()


class TestAllBank:
    def test_each_rank_gets_full_quota_per_window(self):
        engine, timing, mc, sched = build("all_bank")
        sched.start()
        engine.run_until(timing.trefw - 1)
        # Every bank receives its quota (+/-1 for the window boundary).
        n = timing.refreshes_per_bank
        for flat in range(16):
            assert n <= sched.stats.per_bank_commands[flat] <= n + 1

    def test_ranks_staggered(self):
        engine, timing, mc, sched = build("all_bank")
        sched.start()
        engine.run_until(timing.trefi_ab // 2)
        # After half a tREFI, rank 0 and rank 1 have each been refreshed once.
        assert mc.stats.rank_refreshes == 2


class TestPerBankRoundRobin:
    def test_rotates_over_all_banks(self):
        engine, timing, mc, sched = build("per_bank")
        sched.start()
        engine.run_until(timing.trefi_pb * 15)
        assert sched.stats.commands_issued == 16
        assert set(sched.stats.per_bank_commands) == set(range(16))

    def test_full_window_coverage(self):
        engine, timing, mc, sched = build("per_bank")
        sched.start()
        engine.run_until(timing.trefw - 1)
        for flat in range(16):
            assert (
                sched.stats.per_bank_commands[flat] >= timing.refreshes_per_bank - 1
            )

    def test_not_predictable(self):
        _, _, _, sched = build("per_bank")
        assert not sched.is_predictable()


class TestSameBankSequential:
    def test_stays_on_bank_until_done(self):
        engine, timing, mc, sched = build("same_bank")
        sched.start()
        n = timing.refreshes_per_bank
        engine.run_until(timing.refresh_stretch - 1)
        # All commands so far went to flat bank 0 (Algorithm 1).
        assert sched.stats.per_bank_commands == {0: n}

    def test_advances_to_next_bank_after_quota(self):
        engine, timing, mc, sched = build("same_bank")
        sched.start()
        n = timing.refreshes_per_bank
        engine.run_until(2 * timing.refresh_stretch - 1)
        assert sched.stats.per_bank_commands[0] == n
        assert sched.stats.per_bank_commands[1] == n

    def test_full_window_covers_every_bank(self):
        engine, timing, mc, sched = build("same_bank")
        sched.start()
        engine.run_until(timing.trefw - 1)
        n = timing.refreshes_per_bank
        for flat in range(16):
            assert n - 1 <= sched.stats.per_bank_commands.get(flat, 0) <= n + 1

    def test_stretch_bank_matches_issued_commands(self):
        engine, timing, mc, sched = build("same_bank")
        assert sched.is_predictable()
        stretch = timing.refresh_stretch
        for flat in range(16):
            assert sched.stretch_bank_at(flat * stretch) == flat
            assert sched.stretch_bank_at(flat * stretch + stretch - 1) == flat
        # Wraps into the next window.
        assert sched.stretch_bank_at(16 * stretch) == 0

    def test_bank_free_outside_its_stretch(self):
        engine, timing, mc, sched = build("same_bank")
        sched.start()
        engine.run_until(timing.trefw - 1)
        # Bank 5's refreshes all landed within its stretch.
        bank5 = mc.banks[5]
        assert bank5.stats.refreshes == timing.refreshes_per_bank


class TestOutOfOrderPerBank:
    def test_full_window_coverage_despite_reordering(self):
        engine, timing, mc, sched = build("ooo_per_bank")
        sched.start()
        engine.run_until(timing.trefw - 1)
        for flat in range(16):
            assert (
                sched.stats.per_bank_commands.get(flat, 0)
                >= timing.refreshes_per_bank - 1
            ), f"bank {flat} under-refreshed"

    def test_prefers_idle_banks(self):
        engine, timing, mc, sched = build("ooo_per_bank")
        # Queue demand on bank 0 before the first refresh decision.
        from repro.dram.request import MemoryRequest, RequestType

        address = mc.mapping.frame_offset_to_address(0, 0)
        for _ in range(4):
            mc.enqueue(
                MemoryRequest(
                    RequestType.READ, address, mc.mapping.address_to_coordinate(address)
                )
            )
        sched.start()
        engine.run_until(0)
        # The very first refresh avoided the loaded bank 0.
        assert 0 not in sched.stats.per_bank_commands


class TestAdaptiveRefresh:
    def test_defaults_to_1x_under_low_load(self):
        engine, timing, mc, sched = build("adaptive")
        sched.start()
        engine.run_until(timing.trefw - 1)
        # No demand traffic -> utilization 0 -> stays 1x all-bank.
        assert sched.mode_switches == 0
        n = timing.refreshes_per_bank
        for flat in range(16):
            assert n <= sched.stats.per_bank_commands[flat] <= n + 1

    def test_row_unit_accounting(self):
        engine, timing, mc, sched = build("adaptive")
        sched.start()
        engine.run_until(timing.trefw - 1)
        expected_units = 16 * timing.refreshes_per_bank
        assert expected_units <= sched.stats.rows_refreshed_units <= expected_units + 16

    def test_switches_to_4x_when_bus_busy(self):
        engine, timing, mc, sched = build("adaptive")
        sched.start()
        # Fake a busy bus by inflating the busy counter mid-run.
        bus = mc.bus_for_channel(0)

        def load_bus():
            bus.busy_cycles += timing.trefi_ab * AdaptiveRefresh.decision_intervals

        engine.schedule(1, load_bus)
        engine.run_until(timing.trefi_ab * AdaptiveRefresh.decision_intervals + 1)
        assert sched._mode.value == 4
        assert sched.mode_switches == 1
