"""Unit tests for the exception hierarchy."""


from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "ConfigError",
        "AddressMapError",
        "AllocationError",
        "OutOfMemoryError",
        "SchedulerError",
        "SimulationError",
        "ProtocolError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_oom_is_allocation_error():
    assert issubclass(errors.OutOfMemoryError, errors.AllocationError)


def test_protocol_is_simulation_error():
    assert issubclass(errors.ProtocolError, errors.SimulationError)


def test_single_except_clause_catches_library_errors():
    caught = []
    for exc in (errors.ConfigError("x"), errors.OutOfMemoryError("y")):
        try:
            raise exc
        except errors.ReproError as e:
            caught.append(e)
    assert len(caught) == 2
