"""Unit tests for the same-bank scheduler's command batching (the 32 ms
feasibility fix — DESIGN.md Section 7, EXPERIMENTS.md Figure 13)."""

import pytest

from repro.config.dram_configs import DramOrganization
from repro.config.system_configs import default_system_config
from repro.core.engine import Engine
from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.refresh import make_scheduler
from repro.dram.timing import DramTiming
from repro.units import ms


def build(trefw_ms=64, refresh_scale=256, density=32):
    config = default_system_config(
        refresh_scale=refresh_scale, trefw_ps=ms(trefw_ms), density_gbit=density
    )
    timing = DramTiming.from_config(config)
    engine = Engine()
    org = DramOrganization()
    mapping = AddressMapping(org, total_rows_per_bank=16)
    mc = MemoryController(engine, timing, org, mapping)
    sched = make_scheduler("same_bank")
    sched.attach(mc, engine, timing)
    sched._plan_batches()
    return engine, timing, mc, sched


def test_64ms_needs_no_batching():
    _, timing, _, sched = build(trefw_ms=64)
    assert sched._commands_per_bank == timing.refreshes_per_bank
    assert sched._trfc_cmd == timing.trfc_pb


def test_32ms_batches_until_stretch_fits():
    _, timing, _, sched = build(trefw_ms=32)
    # At 32ms/32Gb, tRFC_pb > tREFI_pb: serialized commands overflow.
    assert timing.refreshes_per_bank * timing.trfc_pb > timing.refresh_stretch
    # Batching fixes it.
    assert sched._commands_per_bank < timing.refreshes_per_bank
    assert sched._commands_per_bank * sched._trfc_cmd <= timing.refresh_stretch


def test_batched_trfc_grows_sublinearly():
    _, timing, _, sched = build(trefw_ms=32)
    batch = -(-timing.refreshes_per_bank // sched._commands_per_bank)
    assert batch > 1
    # rows^0.35 scaling: much cheaper than linear.
    assert sched._trfc_cmd < batch * timing.trfc_pb
    assert sched._trfc_cmd >= timing.trfc_pb


def test_32ms_schedule_still_covers_all_row_units():
    engine, timing, mc, sched = build(trefw_ms=32)
    sched.start()
    engine.run_until(timing.trefw - 1)
    expected = 16 * timing.refreshes_per_bank
    assert sched.stats.rows_refreshed_units == pytest.approx(
        expected, rel=0.05
    )


def test_32ms_banks_refresh_only_within_their_stretch():
    engine, timing, mc, sched = build(trefw_ms=32)
    placements = []
    original = mc.refresh_bank

    def spy(channel, rank, bank, trfc, subarray=None):
        flat = mc.mapping.flat_bank_index(channel, rank, bank)
        placements.append((engine.now, flat))
        return original(channel, rank, bank, trfc, subarray=subarray)

    mc.refresh_bank = spy
    sched.start()
    engine.run_until(timing.trefw - 1)
    for time, flat in placements:
        stretch_idx = (time * 16) // timing.trefw % 16
        assert stretch_idx == flat, (time, flat)


def test_16gb_32ms_also_feasible():
    _, timing, _, sched = build(trefw_ms=32, density=16)
    assert sched._commands_per_bank * sched._trfc_cmd <= timing.refresh_stretch
