"""Unit tests for units and clock-domain conversion."""

import pytest

from repro import units


def test_size_constants():
    assert units.KB == 1024
    assert units.MB == 1024 * 1024
    assert units.GB == 1024 ** 3


def test_time_conversions():
    assert units.ns(1) == 1000
    assert units.us(1) == 1000 * units.ns(1)
    assert units.ms(1) == 1000 * units.us(1)
    assert units.ns(0.5) == 500


def test_picos_to_ns_roundtrip():
    assert units.picos_to_ns(units.ns(7.5)) == pytest.approx(7.5)


def test_clock_domain_cycles():
    cpu = units.ClockDomain(freq_mhz=3200)
    assert cpu.cycles(units.ns(10)) == 32
    assert cpu.cycles(units.ns(1)) == 4  # 3.125ns period -> ceil
    mem = units.ClockDomain(freq_mhz=800)
    assert mem.cycles(units.ns(7.5)) == 6


def test_clock_domain_duration_roundtrip():
    cpu = units.ClockDomain(freq_mhz=3200)
    assert cpu.duration_ps(32) == units.ns(10)


def test_clock_domain_rejects_nonpositive_frequency():
    with pytest.raises(ValueError):
        units.ClockDomain(0)
    with pytest.raises(ValueError):
        units.ClockDomain(-5)


def test_format_size():
    assert units.format_size(3 * units.GB) == "3.0GB"
    assert units.format_size(512) == "512B"
    assert units.format_size(1536) == "1.5KB"


def test_format_time():
    assert units.format_time_ps(units.ms(4)) == "4.000ms"
    assert units.format_time_ps(units.us(7.8)) == "7.800us"
    assert units.format_time_ps(units.ns(890)) == "890.000ns"
    assert units.format_time_ps(500) == "500ps"
