"""Unit tests for Task and TaskStats."""

import pytest

from repro.errors import ConfigError
from repro.os.task import Task, TaskStats


def test_explicit_task_ids_respected():
    a, b = Task("a", None, task_id=0), Task("b", None, task_id=1)
    assert (a.task_id, b.task_id) == (0, 1)


def test_task_id_is_required():
    # A process-global fallback counter would make ids depend on
    # allocation history and break bit-identical replay (RPR002).
    with pytest.raises(ConfigError):
        Task("a", None)
    with pytest.raises(ConfigError):
        Task("a", None, task_id=-1)  # -1 is the free-frame sentinel


def test_bank_accounting():
    task = Task("t", None, task_id=0)
    task.add_frame(10, bank=3)
    task.add_frame(11, bank=3)
    task.add_frame(12, bank=7)
    assert task.pages_per_bank == {3: 2, 7: 1}
    assert task.has_data_in_bank(3)
    assert not task.has_data_in_bank(0)
    assert task.fraction_in_bank(3) == 2 / 3
    assert task.fraction_in_bank(0) == 0.0


def test_fraction_with_no_pages():
    task = Task("t", None, task_id=0)
    assert task.fraction_in_bank(0) == 0.0


def test_scheduling_hooks_accumulate_cycles():
    task = Task("t", None, task_id=0)
    task.on_scheduled(100, core_id=0)
    assert task.current_core == 0
    task.on_descheduled(150)
    task.on_scheduled(200, core_id=1)
    task.on_descheduled(260)
    assert task.stats.scheduled_cycles == 110
    assert task.stats.quanta == 2
    assert task.current_core is None


def test_ipc_computation():
    stats = TaskStats()
    stats.instructions = 500
    stats.scheduled_cycles = 1000
    assert stats.ipc == 0.5
    assert TaskStats().ipc == 0.0


def test_read_latency_recording():
    stats = TaskStats()
    stats.record_read_latency(100, refresh_stall=20)
    stats.record_read_latency(200, refresh_stall=0)
    assert stats.reads_completed == 2
    assert stats.avg_read_latency == 150
    assert stats.refresh_stall_sum == 20
    assert TaskStats().avg_read_latency == 0.0


def test_possible_banks_frozen():
    task = Task("t", None, possible_banks={1, 2}, task_id=0)
    assert isinstance(task.possible_banks, frozenset)
    unrestricted = Task("u", None, task_id=1)
    assert unrestricted.possible_banks is None
