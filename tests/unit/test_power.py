"""Unit tests for the DRAM energy model."""

import pytest

from repro import run_simulation
from repro.dram.power import DramEnergyParams, EnergyBreakdown

FAST = dict(num_windows=0.5, warmup_windows=0.1, refresh_scale=512)


def test_breakdown_totals_and_power():
    breakdown = EnergyBreakdown(
        background_mj=1.0, activate_mj=0.5, read_mj=0.25, write_mj=0.25,
        refresh_mj=0.5, elapsed_ns=1e6,
    )
    assert breakdown.total_mj == pytest.approx(2.5)
    assert breakdown.refresh_fraction == pytest.approx(0.2)
    # 2.5 mJ over 1 ms = 2.5 W = 2500 mW.
    assert breakdown.average_power_mw == pytest.approx(2500)
    assert "mJ" in str(breakdown)


def test_zero_interval():
    breakdown = EnergyBreakdown(0, 0, 0, 0, 0, elapsed_ns=0)
    assert breakdown.total_mj == 0
    assert breakdown.average_power_mw == 0
    assert breakdown.refresh_fraction == 0


def test_params_cycle_conversion():
    params = DramEnergyParams(cpu_freq_ghz=3.2)
    assert params.cycles_to_ns(3200) == pytest.approx(1000)


def test_run_result_carries_energy():
    result = run_simulation("WL-9", "all_bank", **FAST)
    assert result.energy is not None
    assert result.energy.total_mj > 0
    assert result.energy.refresh_mj > 0
    assert 0 < result.energy.refresh_fraction < 1


def test_no_refresh_has_zero_refresh_energy():
    result = run_simulation("WL-9", "no_refresh", **FAST)
    assert result.energy.refresh_mj == 0


def test_refresh_energy_similar_across_refresh_schemes():
    """Per-bank and all-bank do the same refresh work; the co-design
    reschedules it.  Energy should differ only via the tRFC_pb/tRFC_ab
    packing (per-bank spends 16 x tRFC_pb vs 2 x 8-bank tRFC_ab)."""
    ab = run_simulation("WL-9", "all_bank", **FAST).energy.refresh_mj
    pb = run_simulation("WL-9", "per_bank", **FAST).energy.refresh_mj
    cd = run_simulation("WL-9", "codesign", **FAST).energy.refresh_mj
    assert pb == pytest.approx(cd, rel=0.1)
    assert ab > 0 and pb > 0


def test_higher_density_costs_more_refresh_energy():
    low = run_simulation("WL-9", "all_bank", density_gbit=16, **FAST)
    high = run_simulation("WL-9", "all_bank", density_gbit=32, **FAST)
    assert high.energy.refresh_mj > low.energy.refresh_mj


def test_memory_intensive_workload_costs_more_dynamic_energy():
    hot = run_simulation("WL-1", "all_bank", **FAST).energy
    cold = run_simulation("WL-2", "all_bank", **FAST).energy
    assert hot.activate_mj + hot.read_mj > cold.activate_mj + cold.read_mj
