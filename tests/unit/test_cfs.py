"""Unit tests for the CFS runqueue."""

import itertools

import pytest

from repro.errors import SchedulerError
from repro.os.cfs import CfsRunqueue
from repro.os.task import Task


_ids = itertools.count()


def make_task(name, vruntime=0.0):
    # Task requires an explicit id; mint creation-ordered ones like the
    # removed process-global counter so tie-break tests keep their meaning.
    task = Task(name, None, task_id=next(_ids))
    task.vruntime = vruntime
    return task


def test_enqueue_dequeue():
    rq = CfsRunqueue(0)
    t = make_task("a")
    rq.enqueue(t)
    assert rq.nr_running == 1
    rq.dequeue(t)
    assert rq.nr_running == 0


def test_double_enqueue_raises():
    rq = CfsRunqueue(0)
    t = make_task("a")
    rq.enqueue(t)
    with pytest.raises(SchedulerError):
        rq.enqueue(t)


def test_dequeue_missing_raises():
    rq = CfsRunqueue(0)
    with pytest.raises(SchedulerError):
        rq.dequeue(make_task("a"))


def test_pick_first_is_min_vruntime():
    rq = CfsRunqueue(0)
    a, b, c = make_task("a", 30), make_task("b", 10), make_task("c", 20)
    for t in (a, b, c):
        rq.enqueue(t)
    assert rq.pick_first() is b


def test_pick_first_tie_breaks_by_task_id():
    rq = CfsRunqueue(0)
    a, b = make_task("a", 5), make_task("b", 5)
    rq.enqueue(b)
    rq.enqueue(a)
    assert rq.pick_first() is a  # created first -> lower id


def test_pick_first_skips_non_runnable():
    rq = CfsRunqueue(0)
    a, b = make_task("a", 1), make_task("b", 2)
    a.runnable = False
    rq.enqueue(a)
    rq.enqueue(b)
    assert rq.pick_first() is b


def test_pick_first_empty_returns_none():
    assert CfsRunqueue(0).pick_first() is None


def test_in_vruntime_order():
    rq = CfsRunqueue(0)
    tasks = [make_task(str(i), vruntime=(7 * i) % 5) for i in range(5)]
    for t in tasks:
        rq.enqueue(t)
    ordered = list(rq.in_vruntime_order())
    values = [(t.vruntime, t.task_id) for t in ordered]
    assert values == sorted(values)


def test_min_vruntime():
    rq = CfsRunqueue(0)
    assert rq.min_vruntime() == 0.0
    rq.enqueue(make_task("a", 42))
    rq.enqueue(make_task("b", 17))
    assert rq.min_vruntime() == 17
