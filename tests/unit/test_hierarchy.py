"""Unit tests for the two-level cache hierarchy."""

import pytest

from repro.config.system_configs import CacheConfig
from repro.cpu.hierarchy import AccessLevel, CacheHierarchy


@pytest.fixture
def hierarchy():
    # Small hierarchy: 1KB L1, 4KB L2.
    return CacheHierarchy(
        CacheConfig(l1_size_bytes=1024, l2_size_per_core_bytes=4096, l2_assoc=4)
    )


def test_cold_access_reaches_memory(hierarchy):
    result = hierarchy.access(0, False)
    assert result.level is AccessLevel.MEMORY
    assert result.is_llc_miss


def test_second_access_hits_l1(hierarchy):
    hierarchy.access(0, False)
    result = hierarchy.access(0, False)
    assert result.level is AccessLevel.L1
    assert result.latency_cycles == 2


def test_l1_victim_caught_by_l2(hierarchy):
    # Thrash L1 set 0 (4 sets x 4 ways... 1KB/4way/64B = 4 sets).
    stride = hierarchy.l1.num_sets * 64
    lines = [i * stride for i in range(6)]
    for a in lines:
        hierarchy.access(a, False)
    # The earliest line fell out of L1 but should still be in L2.
    result = hierarchy.access(lines[0], False)
    assert result.level is AccessLevel.L2
    assert result.latency_cycles == 2 + 20


def test_llc_miss_latency_excludes_memory(hierarchy):
    result = hierarchy.access(0, False)
    assert result.latency_cycles == 2 + 20  # hierarchy traversal only


def test_dirty_l2_eviction_produces_writeback(hierarchy):
    l1_span = hierarchy.l1.num_sets * 64
    l2_span = hierarchy.l2.num_sets * 64
    hierarchy.access(0, True)  # dirty in L1
    # Thrash L1 set 0 so the dirty line is written back into L2.
    for i in range(1, hierarchy.l1.assoc + 1):
        hierarchy.access(i * l1_span, False)
    assert not hierarchy.l1.probe(0)
    # Now thrash L2 set 0: the dirty copy must surface as a DRAM writeback.
    victims = []
    for i in range(1, hierarchy.l2.assoc + 2):
        result = hierarchy.access(i * l2_span, False)
        if result.writeback_address is not None:
            victims.append(result.writeback_address)
    assert 0 in victims


def test_mpki_accounting(hierarchy):
    for i in range(10):
        hierarchy.access(i * 64, False)
    assert hierarchy.llc_misses == 10
    assert hierarchy.mpki(instructions=10_000) == pytest.approx(1.0)
    assert hierarchy.mpki(0) == 0.0
