"""Shared fixtures: small/fast configurations for the test suite."""

from __future__ import annotations

import pytest

from repro.config.dram_configs import DramOrganization
from repro.config.system_configs import default_system_config
from repro.core.engine import Engine
from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.timing import DramTiming


@pytest.fixture
def fast_config():
    """Aggressively scaled config: tiny retention window, tiny memory."""
    return default_system_config(refresh_scale=1024, capacity_scale=4096)


@pytest.fixture
def timing(fast_config):
    return DramTiming.from_config(fast_config)


@pytest.fixture
def organization():
    return DramOrganization()


@pytest.fixture
def mapping(organization):
    return AddressMapping(organization, total_rows_per_bank=64)


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def controller(engine, timing, organization, mapping):
    return MemoryController(engine, timing, organization, mapping)
