"""Integration tests for the Section 5.4 caveats: sleeping tasks,
priority tasks, and the eta_thresh fairness valve under disruption."""


from repro.config.system_configs import OsConfig
from repro.core.metrics import fairness_index
from repro.core.simulator import build_system

FAST = dict(refresh_scale=512)


def run_system(system, windows=1.0, warmup=0.1):
    return system.run(num_windows=windows, warmup_windows=warmup)


def test_sleeping_tasks_force_fallback_picks():
    """When the clean task for a stretch is asleep, the scheduler must
    fall back to the leftmost runnable task instead of idling."""
    # WL-1: every task is an mcf with data in all of its allowed banks
    # (tiny-footprint tasks would be "clean" almost everywhere, since the
    # scheduler tests actual data placement, not the allocation mask).
    system = build_system("WL-1", "codesign", **FAST)
    # Put the first two tasks of each core to sleep periodically; their
    # exclusion windows cover half the banks, so during those stretches no
    # awake task is clean.
    sleepy = system.tasks[:4]

    def toggle():
        for task in sleepy:
            task.runnable = not task.runnable
        system.engine.schedule(system.scheduler.quantum_cycles * 3, toggle)

    system.engine.schedule(system.scheduler.quantum_cycles, toggle)
    result = run_system(system)
    # The system kept running and fairness degraded gracefully.
    assert result.hmean_ipc > 0
    assert result.scheduler_fallback_picks > 0
    for core in system.cores:
        assert core.idle_cycles < result.simulated_cycles


def test_all_tasks_asleep_idles_cores():
    system = build_system("WL-9", "codesign", **FAST)
    for task in system.tasks:
        task.runnable = False
    result = run_system(system, windows=0.25, warmup=0.0)
    assert result.reads_completed == 0
    assert all(t.instructions == 0 for t in result.tasks)


def test_priority_diluted_by_refresh_awareness_restored_by_eta():
    """Section 5.4's caveat, demonstrated: the refresh-aware pick ignores
    vruntime order whenever a clean task exists, so a nice-boosted task
    gains nothing — setting eta_thresh=1 restores CFS priority behavior."""

    def vip_share(eta):
        os_config = OsConfig(eta_thresh=eta)
        system = build_system("WL-6", "codesign", os=os_config, **FAST)
        vip = system.tasks[0]
        vip.weight = 4.0
        result = run_system(system, windows=2.0)
        vip_cycles = next(
            t.scheduled_cycles for t in result.tasks if t.task_id == vip.task_id
        )
        return vip_cycles / result.simulated_cycles

    aware_share = vip_share(eta=None)  # full refresh awareness
    cfs_share = vip_share(eta=1)  # awareness disabled
    assert cfs_share > aware_share * 1.3


def test_eta_one_degenerates_to_cfs_and_stalls_return():
    """eta_thresh=1 inspects only the leftmost task (Section 5.4:
    'disable ... immediately by setting this parameter to 1'); refresh
    stalls reappear relative to the full co-design."""
    default = run_system(build_system("WL-6", "codesign", **FAST))
    eta1 = run_system(
        build_system("WL-6", "codesign", os=OsConfig(eta_thresh=1), **FAST)
    )
    assert eta1.refresh_stalled_reads > default.refresh_stalled_reads
    assert eta1.scheduler_fallback_picks > 0


def test_fairness_preserved_with_refresh_awareness():
    """Refresh-aware picking reorders quanta but CFS vruntime still
    equalizes CPU time over a full window."""
    system = build_system("WL-6", "codesign", **FAST)
    result = run_system(system, windows=2.0, warmup=0.25)
    cycles = [t.scheduled_cycles for t in result.tasks]
    assert fairness_index(cycles) > 0.95
