"""Integration tests for the sweep service.

The acceptance bar for the service layer:

* **Concurrent dedup** — N identical submissions (same spec content
  hash), from coroutines or from separate socket clients, execute
  exactly one simulation.
* **Byte-identity** — a served result is byte-identical to a direct
  local ``run_spec()`` of the same spec, on every resolution path
  (executed / dedup / memo / cache / live-streamed / monitored /
  warm-started).
"""

import asyncio
import json
import threading

import pytest

from repro.core.simulator import make_run_spec, run_spec, sweep_specs
from repro.service import (
    InlineBackend,
    ServiceClient,
    SweepService,
    ThreadBackend,
    serve_in_thread,
)

FAST = dict(num_windows=0.25, warmup_windows=0.05, refresh_scale=1024)


def _spec(scenario="per_bank", workload="WL-9", **extra):
    return make_run_spec(workload, scenario, **{**FAST, **extra})


def _canon(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


# -- SweepService (job engine, no sockets) -------------------------------------


def test_resolve_matches_direct_run_spec(tmp_path):
    service = SweepService(cache_dir=tmp_path)
    spec = _spec()
    result, source = asyncio.run(service.resolve(spec))
    assert source == "executed"
    assert _canon(result) == _canon(run_spec(spec))


def test_concurrent_identical_submissions_run_once(tmp_path):
    """The tentpole guarantee: N concurrent submissions, one simulation."""
    service = SweepService(
        backend=ThreadBackend(jobs=2), cache_dir=tmp_path
    )
    spec = _spec()

    async def fan_out():
        return await asyncio.gather(
            *(service.resolve(spec) for _ in range(5))
        )

    outcomes = asyncio.run(fan_out())
    sources = sorted(source for _, source in outcomes)
    assert sources == ["dedup"] * 4 + ["executed"]
    assert service.runs_executed == 1
    assert service.dedup_hits == 4
    expected = _canon(run_spec(spec))
    assert all(_canon(result) == expected for result, _ in outcomes)

    # Traced fan-out over a distinct spec: the joiners' results carry
    # the trace id of the one submission that executed.
    from repro.tracing import JobTrace, mint_trace_id

    traced_spec = _spec("all_bank")
    job = traced_spec.content_hash()
    traces = [
        JobTrace(mint_trace_id("fan", i), job, lambda event: None)
        for i in range(5)
    ]

    async def traced_fan_out():
        return await asyncio.gather(
            *(service.resolve(traced_spec, trace=t) for t in traces)
        )

    traced = asyncio.run(traced_fan_out())
    assert sorted(s for _, s in traced) == ["dedup"] * 4 + ["executed"]
    executor_trace = next(
        t.trace_id
        for t, (_, source) in zip(traces, traced)
        if source == "executed"
    )
    assert {r.trace_id for r, _ in traced} == {executor_trace}


def test_memo_then_disk_cache_tiers(tmp_path):
    spec = _spec()
    service = SweepService(cache_dir=tmp_path)
    _, first = asyncio.run(service.resolve(spec))
    _, second = asyncio.run(service.resolve(spec))
    assert (first, second) == ("executed", "memo")
    # A fresh service over the same cache dir hits the disk tier.
    rebooted = SweepService(cache_dir=tmp_path)
    result, third = asyncio.run(rebooted.resolve(spec))
    assert third == "cache"
    assert _canon(result) == _canon(run_spec(spec))
    assert rebooted.runs_executed == 0


def test_distinct_specs_do_not_dedup(tmp_path):
    service = SweepService(cache_dir=tmp_path)

    async def both():
        return await asyncio.gather(
            service.resolve(_spec("per_bank")),
            service.resolve(_spec("all_bank")),
        )

    outcomes = asyncio.run(both())
    assert [source for _, source in outcomes] == ["executed", "executed"]
    assert service.runs_executed == 2


def test_warm_started_spec_byte_identical(tmp_path):
    """Warm-start through the service's checkpoint store matches local."""
    (spec,) = sweep_specs(
        ["WL-9"], ["codesign"], warmup_scenario="per_bank", **FAST
    )
    service = SweepService(cache_dir=tmp_path)
    result, source = asyncio.run(service.resolve(spec))
    assert source == "executed"
    assert _canon(result) == _canon(run_spec(spec))
    # The warm-up prefix checkpoint landed in the service-wide store,
    # shared with the backend.
    assert service.backend.checkpoint_store is service.checkpoint_store


def test_monitored_jobs_never_alias_plain_ones(tmp_path):
    spec = _spec("codesign")
    service = SweepService(cache_dir=tmp_path)

    async def sequence():
        plain = await service.resolve(spec)
        monitored = await service.resolve(spec, monitors="collect")
        again = await service.resolve(spec, monitors="collect")
        return plain, monitored, again

    (plain, p_src), (mon, m_src), (again, a_src) = asyncio.run(sequence())
    assert (p_src, m_src, a_src) == ("executed", "live", "memo")
    assert mon.monitor_violations == []
    assert again.monitor_violations == []
    # Plain payloads never carry the monitor key; monitored ones do.
    assert "monitor_violations" not in plain.to_dict()
    assert "monitor_violations" in mon.to_dict()
    # Satellite: monitored traffic counts under its own counters and
    # never inflates the plain ones.
    counters = service.counters()
    assert counters["runs_executed"] == 1
    assert counters["memo_hits"] == 0
    assert counters["monitored_runs"] == 1
    assert counters["monitored_memo_hits"] == 1
    assert counters["monitored_dedup_hits"] == 0


# -- ServiceServer + ServiceClient (socket round-trips) ------------------------


@pytest.fixture
def live(tmp_path):
    service = SweepService(
        backend=ThreadBackend(jobs=2), cache_dir=tmp_path / "cache"
    )
    server, thread = serve_in_thread(service)
    yield server, service
    server.stop()
    thread.join(timeout=10)
    service.backend.close()


def test_served_result_byte_identical(live):
    server, _service = live
    spec = _spec()
    with ServiceClient(port=server.port) as client:
        result, source = client.submit(spec)
    assert source == "executed"
    assert _canon(result) == _canon(run_spec(spec))


def test_two_socket_clients_dedup_one_simulation(live):
    """Two real clients, same spec, in flight together: one simulation."""
    server, service = live
    spec = _spec("codesign")
    outcomes = {}
    barrier = threading.Barrier(2)

    def submit(tag):
        with ServiceClient(port=server.port) as client:
            barrier.wait()
            outcomes[tag] = client.submit(spec)

    threads = [
        threading.Thread(target=submit, args=(t,)) for t in ("a", "b")
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert set(outcomes) == {"a", "b"}
    sources = sorted(source for _, source in outcomes.values())
    assert sources == ["dedup", "executed"]
    assert service.runs_executed == 1
    payloads = {_canon(result) for result, _ in outcomes.values()}
    assert payloads == {_canon(run_spec(spec))}


def test_sweep_submission_and_counters(live):
    server, service = live
    specs = sweep_specs(["WL-9"], ["all_bank", "per_bank"], **FAST)
    with ServiceClient(port=server.port) as client:
        outcome = client.sweep(specs=specs)
        again = client.sweep(specs=specs)
    assert outcome.ok and again.ok
    assert [outcome.sources[j] for j in outcome.jobs] == ["executed"] * 2
    assert [again.sources[j] for j in again.jobs] == ["memo"] * 2
    assert again.counters["runs_executed"] == 2
    assert again.counters["memo_hits"] == 2
    for spec in specs:
        job = spec.content_hash()
        assert _canon(outcome.results[job]) == _canon(run_spec(spec))
        assert _canon(again.results[job]) == _canon(outcome.results[job])


def test_streamed_events_match_local_jsonl(live, tmp_path):
    """Telemetry streamed over the wire == a local JsonlSink, byte for byte."""
    from repro.telemetry import JsonlSink, Telemetry

    server, _service = live
    spec = _spec("per_bank")
    streamed = []
    with ServiceClient(port=server.port) as client:
        result, source = client.submit(
            spec, stream=True,
            on_event=lambda event, job: streamed.append(event),
        )
    assert source == "live"
    assert streamed, "expected live telemetry frames"

    local_path = tmp_path / "local.jsonl"
    telemetry = Telemetry()
    telemetry.subscribe(JsonlSink(local_path))
    local_result = run_spec(spec, telemetry=telemetry)
    telemetry.close()

    streamed_lines = [
        json.dumps(event, sort_keys=True, separators=(",", ":"))
        for event in streamed
    ]
    local_lines = local_path.read_text().splitlines()
    assert streamed_lines == local_lines
    assert _canon(result) == _canon(local_result)


def test_ping_and_status_frames(live):
    server, _service = live
    with ServiceClient(port=server.port) as client:
        hello = client.ping()
        assert hello["wire"] == 2
        assert 1 in hello["wire_supported"]
        assert hello["backend"] == "thread"
        counters = client.status()
    assert counters["runs_executed"] == 0
    assert counters["backend"] == "thread"


def test_server_side_matrix_decomposition(live):
    """The server can decompose workloads x scenarios itself."""
    server, _service = live
    options = dict(FAST)
    with ServiceClient(port=server.port) as client:
        outcome = client.sweep(
            workloads=["WL-9"],
            scenarios=["all_bank", "per_bank"],
            options=options,
        )
    assert outcome.ok
    specs = sweep_specs(["WL-9"], ["all_bank", "per_bank"], **FAST)
    assert outcome.jobs == [spec.content_hash() for spec in specs]


def test_shutdown_via_client(tmp_path):
    service = SweepService(backend=InlineBackend(), cache_dir=tmp_path)
    server, thread = serve_in_thread(service)
    with ServiceClient(port=server.port) as client:
        client.shutdown()
    thread.join(timeout=10)
    assert not thread.is_alive()
