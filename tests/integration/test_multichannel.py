"""Integration tests for multi-channel configurations."""


from repro import run_simulation
from repro.config.dram_configs import DramOrganization
from repro.core.simulator import build_system

FAST = dict(num_windows=0.5, warmup_windows=0.1, refresh_scale=512)
TWO_CHANNEL = DramOrganization(channels=2)


def test_two_channel_system_runs():
    result = run_simulation(
        "WL-6", "per_bank", organization=TWO_CHANNEL, **FAST
    )
    assert result.hmean_ipc > 0
    assert result.reads_completed > 0


def test_two_channels_give_more_bandwidth():
    one = run_simulation("WL-1", "no_refresh", **FAST)
    two = run_simulation(
        "WL-1", "no_refresh", organization=TWO_CHANNEL, **FAST
    )
    # 8x mcf is memory-bound: doubling channels/banks must help.
    assert two.hmean_ipc > one.hmean_ipc


def test_refresh_covers_both_channels():
    system = build_system(
        "WL-9", "per_bank", organization=TWO_CHANNEL, refresh_scale=512
    )
    system.run(num_windows=1.0, warmup_windows=0.0)
    commands = system.refresh_scheduler.stats.per_bank_commands
    assert set(commands) == set(range(32))  # 2ch x 2rk x 8bk


def test_codesign_on_two_channels():
    system = build_system(
        "WL-6", "codesign", organization=TWO_CHANNEL, refresh_scale=512
    )
    result = system.run(num_windows=1.0, warmup_windows=0.25)
    assert result.hmean_ipc > 0
    # Stretch covers 32 banks; picks stay clean.
    assert result.scheduler_fallback_picks == 0
    assert result.refresh_stall_fraction < 0.02


def test_two_channel_codesign_vs_all_bank():
    ab = run_simulation(
        "WL-6", "all_bank", organization=TWO_CHANNEL, **FAST
    )
    cd = run_simulation(
        "WL-6", "codesign", organization=TWO_CHANNEL, **FAST
    )
    assert cd.hmean_ipc > ab.hmean_ipc


def test_tasks_spread_across_channels():
    system = build_system(
        "WL-5", "all_bank", organization=TWO_CHANNEL, refresh_scale=512
    )
    task = system.tasks[0]
    channels = {
        system.mapping.unflatten_bank_index(b)[0] for b in task.pages_per_bank
    }
    assert channels == {0, 1}
