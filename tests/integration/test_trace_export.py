"""End-to-end trace export: deterministic Chrome traces, JSONL, metrics.

Runs a short WL-6 co-design window with every sink attached and checks
the golden properties ISSUE requirements pin down: the Chrome trace is
byte-identical across two runs of the same spec, refresh stretches and
per-core quantum picks land on their own tracks, and the JSONL stream
round-trips to typed events.
"""

import json

import pytest

from repro.__main__ import main
from repro.core.simulator import build_system_from_spec, make_run_spec
from repro.telemetry import (
    ChromeTraceSink,
    JsonlSink,
    RefreshStretchBeginEvent,
    RingBufferSink,
    SchedulerPickEvent,
    Telemetry,
    read_jsonl,
)

FAST = dict(
    num_windows=0.25, warmup_windows=0.05, refresh_scale=1024,
)


def run_traced(extra_sinks=()):
    spec = make_run_spec("WL-6", "codesign", **FAST)
    telemetry = Telemetry()
    chrome = telemetry.subscribe(ChromeTraceSink())
    for sink in extra_sinks:
        telemetry.subscribe(sink)
    system = build_system_from_spec(spec, telemetry=telemetry)
    result = system.run(
        num_windows=spec.num_windows, warmup_windows=spec.warmup_windows
    )
    telemetry.close()
    return system, result, chrome


def test_chrome_trace_is_byte_identical_across_runs():
    _, result_a, chrome_a = run_traced()
    _, result_b, chrome_b = run_traced()
    assert chrome_a.to_json() == chrome_b.to_json()
    assert result_a.hmean_ipc == result_b.hmean_ipc


def test_trace_has_stretch_and_per_core_tracks():
    system, _, chrome = run_traced()
    events = chrome.trace()["traceEvents"]
    stretches = [
        e for e in events
        if e["ph"] == "X"
        and e["pid"] == ChromeTraceSink.PID_DRAM
        and e["tid"] == ChromeTraceSink.TID_STRETCH
    ]
    assert stretches, "no refresh-stretch slices"
    assert all(e["name"].startswith("refresh b") for e in stretches)
    assert all(e["dur"] > 0 for e in stretches)
    pick_tids = {
        e["tid"] for e in events
        if e["ph"] == "X" and e["pid"] == ChromeTraceSink.PID_CPU
    }
    assert pick_tids == {core.core_id for core in system.cores}


def test_jsonl_round_trips_and_ring_evicts(tmp_path):
    path = tmp_path / "events.jsonl"
    ring = RingBufferSink(capacity=64)
    _, _, _ = run_traced(extra_sinks=[JsonlSink(path), ring])
    events = read_jsonl(path)
    assert len(events) == ring.emitted
    assert ring.evicted == ring.emitted - 64
    assert ring.events() == events[-64:]
    kinds = {type(e) for e in events}
    assert RefreshStretchBeginEvent in kinds
    assert SchedulerPickEvent in kinds


def test_observed_result_matches_cached_pipeline_result():
    from repro.core.simulator import run_spec

    spec = make_run_spec("WL-6", "codesign", **FAST)
    plain = run_spec(spec)
    _, observed, _ = run_traced()
    assert observed.hmean_ipc == plain.hmean_ipc
    assert observed.to_dict() == plain.to_dict()


CLI_FAST = [
    "--windows", "0.25", "--warmup", "0.05", "--refresh-scale", "1024",
    "--no-cache",
]


def test_cli_trace_flags_write_all_outputs(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    jsonl = tmp_path / "events.jsonl"
    metrics = tmp_path / "metrics.json"
    assert main([
        "WL-6", "codesign", *CLI_FAST,
        "--trace", str(trace),
        "--trace-jsonl", str(jsonl),
        "--metrics-out", str(metrics),
        "--timeseries", "8",
    ]) == 0
    out = capsys.readouterr().out
    assert "hmean IPC" in out

    payload = json.loads(trace.read_text())
    phases = {e["ph"] for e in payload["traceEvents"]}
    assert {"X", "M"} <= phases

    assert read_jsonl(jsonl)

    snapshot = json.loads(metrics.read_text())
    assert any(k.startswith("dram.controller.") for k in snapshot)
    assert any(k.startswith("os.task.") for k in snapshot)


def test_cli_multi_scenario_suffixes_trace_files(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    assert main([
        "WL-6", "all_bank,codesign", *CLI_FAST, "--trace", str(trace),
    ]) == 0
    assert (tmp_path / "trace.all_bank.json").exists()
    assert (tmp_path / "trace.codesign.json").exists()
    assert not trace.exists()
