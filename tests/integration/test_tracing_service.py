"""Integration tests for end-to-end causal tracing of the serving path.

The acceptance bar (ISSUE 10):

* a traced submission's result carries ``trace_id`` and its spans tell
  the causal story (resolve -> execute -> run_spec -> restore);
* tracing off leaves the served payload byte-identical to a direct
  ``run_spec()`` — no ``trace_id`` key, nothing else perturbed;
* span traces are byte-identical across runs once wall fields are
  stripped;
* the ``metrics`` op's deterministic snapshot agrees exactly with
  ``SweepService.counters()``;
* old (wire v1) clients still get answered, in v1.
"""

import asyncio
import json
import socket
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.simulator import make_run_spec, run_spec, sweep_specs
from repro.service import (
    ServiceClient,
    SweepService,
    ThreadBackend,
    serve_in_thread,
)
from repro.telemetry import ChromeTraceSink, strip_span_walls
from repro.telemetry.wire import decode_frame, encode_frame
from repro.tracing import TRACE_ID_LEN, JobTrace, mint_trace_id

FAST = dict(num_windows=0.25, warmup_windows=0.05, refresh_scale=1024)

SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "validate_trace.py"


def _spec(scenario="per_bank", workload="WL-9", **extra):
    return make_run_spec(workload, scenario, **{**FAST, **extra})


def _canon(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.fixture
def live(tmp_path):
    service = SweepService(
        backend=ThreadBackend(jobs=2), cache_dir=tmp_path / "cache"
    )
    server, thread = serve_in_thread(service)
    yield server, service
    server.stop()
    thread.join(timeout=10)
    service.backend.close()


def _by_name(spans):
    return {span.name: span for span in spans}


def test_traced_submit_stamps_result_and_tells_the_causal_story(live):
    server, service = live
    spec = _spec()
    spans = []
    with ServiceClient(port=server.port) as client:
        result, source = client.submit(spec, on_span=spans.append)
    assert source == "executed"
    assert result.trace_id is not None
    assert len(result.trace_id) == TRACE_ID_LEN
    assert spans, "expected streamed span frames"
    assert all(s.trace_id == result.trace_id for s in spans)
    named = _by_name(spans)
    # The execute chain parents cleanly: resolve -> execute -> run_spec.
    assert {"resolve", "execute", "run_spec"} <= set(named)
    assert named["resolve"].parent is None
    assert named["execute"].parent == named["resolve"].span_id
    assert named["run_spec"].parent == named["execute"].span_id
    # Span ids were allocated in open order.
    assert named["resolve"].span_id == 0
    assert named["execute"].span_id == 1
    assert named["run_spec"].span_id == 2
    assert named["resolve"].detail == "executed"
    assert named["resolve"].cycles == result.simulated_cycles
    # The service kept the spans for the obs dashboard.
    assert len(service.recent_spans) == len(spans)


def test_untraced_payload_byte_identical_traced_adds_only_trace_id(live):
    server, _service = live
    spec = _spec()
    local = run_spec(spec)
    with ServiceClient(port=server.port) as client:
        plain, _ = client.submit(spec)
        traced, t_source = client.submit(spec, trace=True)
    assert t_source == "memo"
    # Tracing off: byte-identical, no trace_id key anywhere.
    assert _canon(plain) == _canon(local)
    assert "trace_id" not in plain.to_dict()
    # Tracing on: identical except the one extra key.
    traced_dict = traced.to_dict()
    assert traced_dict.pop("trace_id") == traced.trace_id
    assert json.dumps(traced_dict, sort_keys=True) == _canon(local)


def test_warm_start_execute_span_parents_restore_span(live):
    """Satellite: the restore span nests under run_spec under execute."""
    server, _service = live
    (spec,) = sweep_specs(
        ["WL-9"], ["codesign"], warmup_scenario="per_bank", **FAST
    )
    spans = []
    with ServiceClient(port=server.port) as client:
        result, source = client.submit(spec, on_span=spans.append)
    assert source == "executed"
    named = _by_name(spans)
    assert {"resolve", "execute", "run_spec", "restore"} <= set(named)
    assert named["restore"].parent == named["run_spec"].span_id
    assert named["run_spec"].parent == named["execute"].span_id
    assert named["execute"].parent == named["resolve"].span_id
    # The restore span records the checkpoint provenance (key@cycle).
    assert "@" in named["restore"].detail
    assert all(s.trace_id == result.trace_id for s in spans)


def test_dedup_joined_clients_observe_the_executors_trace_id(tmp_path):
    """Satellite: all five concurrent traced submissions share the trace
    id of the one that actually executed."""
    service = SweepService(
        backend=ThreadBackend(jobs=2), cache_dir=tmp_path
    )
    spec = _spec("all_bank")
    job = spec.content_hash()
    events = []
    traces = [
        JobTrace(mint_trace_id("client", i), job, events.append)
        for i in range(5)
    ]

    async def fan_out():
        return await asyncio.gather(
            *(service.resolve(spec, trace=t) for t in traces)
        )

    outcomes = asyncio.run(fan_out())
    sources = sorted(source for _, source in outcomes)
    assert sources == ["dedup"] * 4 + ["executed"]
    stamped = {result.trace_id for result, _ in outcomes}
    assert len(stamped) == 1, "every joiner sees the executor's trace id"
    executor_trace = next(
        t.trace_id
        for t, (_, source) in zip(traces, outcomes)
        if source == "executed"
    )
    assert stamped == {executor_trace}
    # A later memo hit of the same key inherits it too.
    late = JobTrace(mint_trace_id("late", 9), job, events.append)
    result, source = asyncio.run(service.resolve(spec, trace=late))
    assert source == "memo"
    assert result.trace_id == executor_trace
    service.backend.close()


def test_metrics_op_matches_counters_exactly(live):
    server, service = live
    spec_a, spec_b = _spec("per_bank"), _spec("all_bank")
    with ServiceClient(port=server.port) as client:
        client.submit(spec_a)
        client.submit(spec_a)          # memo
        client.submit(spec_b)
        client.submit(spec_b, stream=True, on_event=lambda e, j: None)
        metrics = client.metrics()
        counters = client.status()
    assert counters == service.counters()
    tiers = metrics["deterministic"]["tiers"]
    # The deterministic tier counts ARE the service counters, relabeled.
    assert tiers["executed"] + tiers["live"] == counters["runs_executed"]
    assert tiers["memo"] == counters["memo_hits"]
    assert tiers["dedup"] == counters["dedup_hits"]
    assert tiers["cache"] == counters["disk_hits"]
    assert tiers["live"] == counters["live_runs"]
    # No wall-clock field hides anywhere in the deterministic subtree.
    assert set(metrics["deterministic"]) == {"tiers", "cycles"}
    assert "wall" not in json.dumps(metrics["deterministic"])
    # The Prometheus text carries the same numbers.
    text = metrics["text"]
    for tier in ("executed", "memo", "live"):
        assert (
            f'repro_service_requests_total{{tier="{tier}"}} {tiers[tier]}'
            in text
        )
    assert (
        f'repro_service_counter{{name="runs_executed"}} '
        f'{counters["runs_executed"]}' in text
    )


def test_stripped_span_trace_byte_identical_across_fresh_servers(tmp_path):
    """Two fresh servers, same submission sequence: the span traces agree
    byte-for-byte once wall fields are stripped."""

    def run_sequence(cache_dir):
        service = SweepService(
            backend=ThreadBackend(jobs=2), cache_dir=cache_dir
        )
        server, thread = serve_in_thread(service)
        try:
            sink = ChromeTraceSink()
            with ServiceClient(port=server.port) as client:
                first = client.sweep(specs=[_spec()], trace=True)
                second = client.sweep(specs=[_spec()], trace=True)
            for span in first.spans + second.spans:
                sink.emit(span)
            return json.dumps(
                strip_span_walls(sink.trace()), sort_keys=True
            )
        finally:
            server.stop()
            thread.join(timeout=10)
            service.backend.close()

    a = run_sequence(tmp_path / "a")
    b = run_sequence(tmp_path / "b")
    assert a == b
    assert '"cat": "span"'.replace(" ", "") in a.replace(" ", "")


def test_wire_v1_client_still_gets_v1_answers(live):
    """Version negotiation: a v1 peer is answered in v1."""
    server, _service = live
    with socket.create_connection(("127.0.0.1", server.port)) as sock:
        sock.sendall(encode_frame({"op": "ping", "id": 1}, version=1))
        reply = decode_frame(sock.makefile("rb").readline())
    assert reply["v"] == 1
    assert reply["type"] == "pong"
    assert 1 in reply["wire_supported"]


def test_trace_spans_artifact_validates_with_expect_spans(live, tmp_path):
    """The CLI-shaped artifact passes scripts/validate_trace.py."""
    server, _service = live
    with ServiceClient(port=server.port) as client:
        outcome = client.sweep(specs=[_spec()], trace=True)
    assert outcome.ok and outcome.spans
    sink = ChromeTraceSink()
    for span in outcome.spans:
        sink.emit(span)
    out = tmp_path / "spans-trace.json"
    sink.write(out)
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), str(out), "--expect-spans"],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout
