"""Integration tests for the simulation-scaling methodology.

DESIGN.md Section 3 claims refresh overhead *fractions* are invariant
under ``refresh_scale`` because the scaling preserves every timing ratio.
These tests verify that claim empirically — it is what justifies running
the evaluation at a fraction of the paper's wall-clock cost.
"""

import pytest

from repro import compare_scenarios


def degradation_at(refresh_scale: int, workload: str = "WL-6") -> float:
    results = compare_scenarios(
        workload,
        ["no_refresh", "all_bank"],
        num_windows=1.0,
        warmup_windows=0.25,
        refresh_scale=refresh_scale,
    )
    return 1 - results["all_bank"].hmean_ipc / results["no_refresh"].hmean_ipc


def test_all_bank_degradation_stable_across_scales():
    coarse = degradation_at(1024)
    fine = degradation_at(256)
    assert coarse == pytest.approx(fine, abs=0.03)


def test_per_bank_degradation_stable_across_scales():
    def deg(scale):
        results = compare_scenarios(
            "WL-5",
            ["no_refresh", "per_bank"],
            num_windows=1.0,
            warmup_windows=0.25,
            refresh_scale=scale,
        )
        return 1 - results["per_bank"].hmean_ipc / results["no_refresh"].hmean_ipc

    assert deg(1024) == pytest.approx(deg(256), abs=0.03)


def test_codesign_gain_stable_across_scales():
    # Very coarse scales leave only a handful of tREFIs per window, so the
    # comparison uses moderate scales where quantization noise is small.
    def gain(scale):
        results = compare_scenarios(
            "WL-6",
            ["all_bank", "codesign"],
            num_windows=2.0,
            warmup_windows=0.25,
            refresh_scale=scale,
        )
        return results["codesign"].hmean_ipc / results["all_bank"].hmean_ipc - 1

    assert gain(512) == pytest.approx(gain(256), abs=0.04)


def test_quantum_tracks_refresh_scale():
    from repro.config.system_configs import default_system_config
    from repro.dram.timing import DramTiming

    for scale in (64, 256, 1024):
        config = default_system_config(refresh_scale=scale)
        timing = DramTiming.from_config(config)
        # Quantum in cycles equals the refresh stretch (within rounding).
        from repro.units import ClockDomain

        quantum = ClockDomain(config.cores.freq_mhz).cycles(config.quantum_ps)
        assert quantum == pytest.approx(timing.refresh_stretch, rel=0.01)
