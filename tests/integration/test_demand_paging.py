"""Integration tests for demand paging in full-system simulations."""

import pytest

from repro import run_simulation
from repro.config.system_configs import OsConfig
from repro.core.simulator import build_system

FAST = dict(num_windows=0.5, warmup_windows=0.1, refresh_scale=512)


def test_cold_start_faults_in_footprint():
    system = build_system(
        "WL-9",
        "per_bank",
        os=OsConfig(demand_paging=True, prefault=False),
        refresh_scale=512,
    )
    result = system.run(num_windows=0.5, warmup_windows=0.1)
    assert result.hmean_ipc > 0
    total_minor = sum(t.vm.stats.minor_faults for t in system.tasks)
    assert total_minor > 0
    # No thrashing: everything fits (soft spill / unrestricted).
    assert all(t.vm.stats.major_faults == 0 for t in system.tasks)


def test_prefault_makes_warm_start_fault_free():
    system = build_system(
        "WL-9", "per_bank", os=OsConfig(demand_paging=True), refresh_scale=512
    )
    for task in system.tasks:
        assert task.vm.resident_pages == task.vm.footprint_pages
    system.run(num_windows=0.5, warmup_windows=0.1)
    assert all(t.vm.stats.faults == 0 for t in system.tasks)


def test_demand_paging_matches_preallocation_when_warm():
    slow = dict(num_windows=1.0, warmup_windows=0.25, refresh_scale=512)
    pre = run_simulation("WL-9", "per_bank", **slow)
    demand = run_simulation(
        "WL-9", "per_bank", os=OsConfig(demand_paging=True), **slow
    )
    # Warm-start demand paging behaves like preallocation.
    assert demand.hmean_ipc == pytest.approx(pre.hmean_ipc, rel=0.1)


def _overcommitted_specs():
    """Four streaming tasks whose footprints (2000 pages each at
    capacity_scale=1024) overflow their 2-banks-per-rank hard partitions
    (2048 frames shared by two tasks) but fit total memory (8192 frames)
    when allowed to spill.  The sequential sweep with no reuse touches the
    whole footprint quickly, forcing the overflow to manifest."""
    from repro.units import KB
    from repro.workloads.benchmark import AccessPattern, BenchmarkSpec

    footprint = 2000 * 4 * KB * 1024  # -> 2000 pages after scaling
    return [
        BenchmarkSpec(
            "bigdata",
            mpki=50.0,
            footprint_bytes=footprint,
            mlp=8,
            base_cpi=0.4,
            row_locality=0.0,
            pattern=AccessPattern.SEQUENTIAL,
        )
    ] * 4


def test_hard_partition_thrashing_is_catastrophic():
    """The Section 5.2.1 warning, end to end: hard-partitioned tasks whose
    footprints exceed their banks thrash (major faults) and collapse,
    while the soft variant spills and survives."""
    specs = _overcommitted_specs()
    build_kwargs = dict(
        os=OsConfig(demand_paging=True),
        capacity_scale=1024,
        banks_per_task=2,
        refresh_scale=512,
    )
    soft_system = build_system(specs, "codesign", **build_kwargs)
    soft = soft_system.run(num_windows=0.5, warmup_windows=0.1)
    hard_system = build_system(specs, "codesign_hard", **build_kwargs)
    hard = hard_system.run(num_windows=0.5, warmup_windows=0.1)

    hard_majors = sum(t.vm.stats.major_faults for t in hard_system.tasks)
    soft_majors = sum(t.vm.stats.major_faults for t in soft_system.tasks)
    assert hard_majors > 0
    assert soft_majors == 0
    assert hard.hmean_ipc < soft.hmean_ipc


def test_codesign_with_demand_paging_still_avoids_refresh_stalls():
    result = run_simulation(
        "WL-6", "codesign", os=OsConfig(demand_paging=True),
        num_windows=1.0, warmup_windows=0.25, refresh_scale=512,
    )
    assert result.refresh_stall_fraction < 0.02


def test_working_set_resident_pages_bounded_by_footprint():
    system = build_system(
        "WL-9", "per_bank", os=OsConfig(demand_paging=True), refresh_scale=512
    )
    system.run(num_windows=0.5, warmup_windows=0.0)
    for task in system.tasks:
        assert task.vm.resident_pages <= task.vm.footprint_pages
        assert len(task.frames) == task.vm.resident_pages
