"""Seeded-fuzz checkpoint/restore round trips on WL-6.

Snapshots the codesign scenario at random tREFW-aligned barriers
(multiples of tREFW/16, covering both the warm-up and the measured
interval), forces each snapshot through JSON — exactly what a
checkpoint file persists — restores into a freshly built system, and
requires the continuation to be bit-identical to a straight-through
run: same ``events_processed``, same metrics-registry export, same
result digest.
"""

import json
import random

import pytest

from repro.core.simulator import build_system_from_spec, make_run_spec
from repro.serialize import content_hash

WINDOWS = dict(num_windows=1.0, warmup_windows=0.25)
STEP = 1 / 16  # barrier grid: tREFW/16


def _spec():
    return make_run_spec("WL-6", "codesign", refresh_scale=512, **WINDOWS)


def _barriers():
    """Ten distinct random barrier indices on the tREFW/16 grid, strictly
    inside the 1.25-window run.  The measurement boundary itself is not a
    periodic barrier (it is offered only via ``checkpoint_measure_start``),
    so its index is excluded."""
    total = int((WINDOWS["num_windows"] + WINDOWS["warmup_windows"]) / STEP)
    boundary = int(WINDOWS["warmup_windows"] / STEP)
    candidates = [k for k in range(1, total) if k != boundary]
    return sorted(random.Random(0x5EED).sample(candidates, 10))


@pytest.fixture(scope="module")
def baseline():
    system = build_system_from_spec(_spec())
    result = system.run(**WINDOWS)
    return {
        "digest": content_hash(result.to_dict()),
        "events": system.engine.events_processed,
        "metrics": system.metrics().snapshot(),
    }


@pytest.mark.parametrize("k", _barriers())
def test_roundtrip_is_bit_identical_at_barrier(k, baseline):
    spec = _spec()
    system = build_system_from_spec(spec)
    target = k * int(system.window_cycles * STEP)
    captured = {}

    def sink(cycle, state):
        if cycle == target:
            captured["state"] = state
            return True
        return False

    halted = system.run(
        checkpoint_every=STEP, checkpoint_sink=sink, **WINDOWS
    )
    assert halted is None
    assert captured["state"]["engine"]["now"] == target

    state = json.loads(json.dumps(captured["state"]))

    resumed = build_system_from_spec(spec)
    result = resumed.run(resume_state=state, **WINDOWS)
    assert resumed.engine.events_processed == baseline["events"]
    assert resumed.metrics().snapshot() == baseline["metrics"]
    assert content_hash(result.to_dict()) == baseline["digest"]
