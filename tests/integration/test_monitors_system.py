"""Invariant monitors on real runs: clean baselines and mutation tripwires.

The mutation tests are the monitors' reason to exist: deliberately
break Algorithm 1 (stretch one command short) and Algorithm 3 (pick
refresh-obliviously) and assert the corresponding monitor trips.  If a
monitor ever goes blind, these tests — not a production run — find out.
"""

import pytest

from repro.core.results import RunResult
from repro.core.simulator import make_run_spec, run_spec
from repro.dram.refresh.same_bank import SameBankSequential
from repro.errors import MonitorError
from repro.obs.monitors import MonitorSuite, run_spec_with_monitors
from repro.os.refresh_aware import RefreshAwareScheduler
from repro.os.scheduler import CfsScheduler
from repro.telemetry import Telemetry

FAST = dict(num_windows=0.25, warmup_windows=0.05, refresh_scale=1024)


def fast_spec(scenario="codesign", **overrides):
    return make_run_spec("WL-6", scenario, **{**FAST, **overrides})


@pytest.mark.parametrize("scenario", ["all_bank", "per_bank", "codesign"])
def test_monitored_run_is_clean(scenario):
    result, suite = run_spec_with_monitors(fast_spec(scenario))
    assert result.monitor_violations == []
    # Monitors actually looked at traffic, not just stayed silent.
    summary = suite.summary()
    assert summary["refresh_overlap"]["commands_checked"] > 0
    if scenario == "codesign":
        assert summary["refresh_stretch"]["stretches_checked"] > 0
        assert summary["scheduler_conflict"]["picks_checked"] > 0
        assert summary["allocation_partition"]["allocs_checked"] > 0


def test_monitoring_does_not_change_the_result():
    spec = fast_spec()
    plain = run_spec(spec)
    monitored, _ = run_spec_with_monitors(spec)
    plain_dict = plain.to_dict()
    monitored_dict = monitored.to_dict()
    assert monitored_dict.pop("monitor_violations") == []
    assert "monitor_violations" not in plain_dict  # unmonitored: omitted
    assert monitored_dict == plain_dict


def test_monitored_result_round_trips():
    result, _ = run_spec_with_monitors(fast_spec())
    reloaded = RunResult.from_dict(result.to_dict())
    assert reloaded.monitor_violations == []
    assert reloaded.to_dict() == result.to_dict()


def test_mutation_oblivious_pick_trips_conflict_monitor(monkeypatch):
    """Degrade Algorithm 3 to a pure fairness pick: the scheduler now
    dispatches tasks into the refreshed bank without flagging fallbacks,
    and the conflict monitor must notice."""
    monkeypatch.setattr(
        RefreshAwareScheduler, "pick_next_task", CfsScheduler.pick_next_task
    )
    result, _ = run_spec_with_monitors(fast_spec())
    conflicts = [
        v for v in result.monitor_violations if v.monitor == "scheduler_conflict"
    ]
    assert conflicts, "refresh-oblivious picks went unnoticed"
    assert all("without an eta_thresh fallback" in v.message for v in conflicts)


def test_mutation_short_stretch_trips_stretch_monitor(monkeypatch):
    """Break Algorithm 1 by planning one refresh command too few per
    stretch: rows are no longer all covered once per tREFW.  The monitor
    recomputes the expected count from timing alone, so it trips."""
    orig = SameBankSequential._plan_batches

    def short_plan(self):
        orig(self)
        self._commands_per_bank -= 1

    monkeypatch.setattr(SameBankSequential, "_plan_batches", short_plan)
    result, _ = run_spec_with_monitors(fast_spec())
    stretch = [
        v for v in result.monitor_violations if v.monitor == "refresh_stretch"
    ]
    assert stretch, "a too-short refresh stretch went unnoticed"
    assert any("expected" in v.message for v in stretch)


def test_strict_mode_aborts_on_mutated_run(monkeypatch):
    monkeypatch.setattr(
        RefreshAwareScheduler, "pick_next_task", CfsScheduler.pick_next_task
    )
    with pytest.raises(MonitorError, match="scheduler_conflict"):
        run_spec_with_monitors(fast_spec(), strict=True)


def test_eta_thresh_fallbacks_are_not_violations():
    """With a tight eta_thresh the scheduler legitimately falls back to
    conflicted picks; those are tallied, never flagged."""
    from dataclasses import replace

    base = fast_spec()
    config = replace(base.config, os=replace(base.config.os, eta_thresh=1))
    spec = fast_spec(config=config)
    result, suite = run_spec_with_monitors(spec)
    assert result.monitor_violations == []
    summary = suite.summary()
    assert summary["scheduler_conflict"]["fallback_picks"] > 0
    assert result.scheduler_fallback_picks >= (
        summary["scheduler_conflict"]["fallback_picks"]
    )


def test_suite_shares_a_telemetry_hub_with_other_sinks():
    """Monitors coexist with user sinks on one hub (the CLI wiring)."""
    from repro.core.simulator import build_system_from_spec
    from repro.telemetry import RingBufferSink

    spec = fast_spec()
    telemetry = Telemetry()
    ring = telemetry.subscribe(RingBufferSink(capacity=64))
    suite = MonitorSuite().attach(telemetry)
    system = build_system_from_spec(spec, telemetry=telemetry)
    suite.bind(system)
    system.run(
        num_windows=spec.num_windows, warmup_windows=spec.warmup_windows
    )
    suite.finish(system.engine.now)
    assert suite.violations() == []
    assert ring.emitted > 0
