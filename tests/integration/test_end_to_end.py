"""End-to-end integration tests for the full simulated system.

These encode the paper's qualitative claims as assertions, on a scaled-down
configuration (refresh_scale=512) so the suite stays fast.
"""

import pytest

from repro import compare_scenarios, run_simulation
from repro.units import ms

FAST = dict(num_windows=1.0, warmup_windows=0.25, refresh_scale=512)


@pytest.fixture(scope="module")
def wl6_results():
    return compare_scenarios(
        "WL-6",
        ["no_refresh", "all_bank", "per_bank", "codesign", "same_bank_hw_only"],
        num_windows=1.0,
        warmup_windows=0.25,
        refresh_scale=512,
    )


class TestSchemeOrdering:
    """Figure 3 / Figure 10's qualitative ordering."""

    def test_no_refresh_is_upper_bound(self, wl6_results):
        ideal = wl6_results["no_refresh"].hmean_ipc
        for name, result in wl6_results.items():
            assert result.hmean_ipc <= ideal * 1.02, name

    def test_per_bank_beats_all_bank(self, wl6_results):
        assert (
            wl6_results["per_bank"].hmean_ipc > wl6_results["all_bank"].hmean_ipc
        )

    def test_codesign_beats_per_bank(self, wl6_results):
        assert (
            wl6_results["codesign"].hmean_ipc > wl6_results["per_bank"].hmean_ipc
        )

    def test_hw_only_same_bank_is_not_enough(self, wl6_results):
        """Section 4.2: the same-bank schedule only pays off with the OS
        changes; alone it hammers one bank and loses to round-robin."""
        assert (
            wl6_results["same_bank_hw_only"].hmean_ipc
            < wl6_results["per_bank"].hmean_ipc
        )


class TestCodesignMechanism:
    def test_codesign_eliminates_refresh_stalls(self, wl6_results):
        codesign = wl6_results["codesign"]
        baseline = wl6_results["all_bank"]
        assert baseline.refresh_stall_fraction > 0.01
        assert codesign.refresh_stall_fraction < 0.005

    def test_scheduler_always_finds_clean_task(self, wl6_results):
        codesign = wl6_results["codesign"]
        assert codesign.scheduler_clean_picks > 0
        assert codesign.scheduler_fallback_picks == 0

    def test_codesign_reduces_memory_latency(self, wl6_results):
        assert (
            wl6_results["codesign"].avg_read_latency_mem_cycles
            < wl6_results["all_bank"].avg_read_latency_mem_cycles
        )

    def test_refresh_commands_unchanged_by_codesign(self, wl6_results):
        """The co-design reschedules refreshes, it never skips them."""
        codesign = wl6_results["codesign"]
        per_bank = wl6_results["per_bank"]
        assert codesign.refresh_commands == pytest.approx(
            per_bank.refresh_commands, rel=0.05
        )


class TestWorkloadSensitivity:
    def test_low_mpki_workload_sees_no_refresh_pain(self):
        """WL-2 (povray x8) is insensitive to refresh (Section 6.2)."""
        results = compare_scenarios(
            "WL-2", ["no_refresh", "all_bank"], **FAST
        )
        degradation = 1 - results["all_bank"].hmean_ipc / results[
            "no_refresh"
        ].hmean_ipc
        assert degradation < 0.02

    def test_high_mpki_workload_hurts_most(self):
        wl1 = compare_scenarios("WL-1", ["no_refresh", "all_bank"], **FAST)
        wl2 = compare_scenarios("WL-2", ["no_refresh", "all_bank"], **FAST)
        deg1 = 1 - wl1["all_bank"].hmean_ipc / wl1["no_refresh"].hmean_ipc
        deg2 = 1 - wl2["all_bank"].hmean_ipc / wl2["no_refresh"].hmean_ipc
        assert deg1 > deg2 + 0.05


class TestDensityScaling:
    def test_refresh_pain_grows_with_density(self):
        degradations = {}
        for density in (8, 32):
            results = compare_scenarios(
                "WL-6", ["no_refresh", "all_bank"], density_gbit=density, **FAST
            )
            degradations[density] = (
                1 - results["all_bank"].hmean_ipc / results["no_refresh"].hmean_ipc
            )
        assert degradations[32] > degradations[8]


class TestRetentionScaling:
    def test_32ms_hurts_more_than_64ms(self):
        deg = {}
        for trefw in (ms(64), ms(32)):
            results = compare_scenarios(
                "WL-6", ["no_refresh", "all_bank"], trefw_ps=trefw, **FAST
            )
            deg[trefw] = (
                1 - results["all_bank"].hmean_ipc / results["no_refresh"].hmean_ipc
            )
        assert deg[ms(32)] > deg[ms(64)]


class TestAccountingConsistency:
    def test_task_cycles_sum_to_core_time(self, wl6_results):
        result = wl6_results["codesign"]
        total_scheduled = sum(t.scheduled_cycles for t in result.tasks)
        # 2 cores, never idle (8 runnable tasks).
        assert total_scheduled == pytest.approx(2 * result.simulated_cycles, rel=0.02)

    def test_all_tasks_made_progress(self, wl6_results):
        for name, result in wl6_results.items():
            for task in result.tasks:
                assert task.instructions > 0, (name, task.name)
                assert task.quanta > 0

    def test_reads_issued_reads_completed_close(self, wl6_results):
        result = wl6_results["all_bank"]
        assert result.reads_completed > 0
        assert result.writes_completed > 0

    def test_fair_scheduling_across_tasks(self, wl6_results):
        """CFS gives equal-weight always-runnable tasks equal time."""
        from repro.core.metrics import fairness_index

        for name in ("all_bank", "codesign"):
            cycles = [t.scheduled_cycles for t in wl6_results[name].tasks]
            assert fairness_index(cycles) > 0.97, (name, cycles)


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_simulation("WL-8", "codesign", **FAST)
        b = run_simulation("WL-8", "codesign", **FAST)
        assert a.hmean_ipc == b.hmean_ipc
        assert a.reads_completed == b.reads_completed

    def test_different_seed_different_result(self):
        a = run_simulation("WL-8", "codesign", seed=1, **FAST)
        b = run_simulation("WL-8", "codesign", seed=2, **FAST)
        assert a.hmean_ipc != b.hmean_ipc
