"""Cross-cutting consistency checks on RunResult across scenarios."""

import pytest

from repro import run_simulation

FAST = dict(num_windows=0.5, warmup_windows=0.1, refresh_scale=512)


@pytest.fixture(scope="module")
def result():
    return run_simulation("WL-6", "codesign", **FAST)


def test_simulated_cycles_matches_request(result):
    # 0.5 windows at refresh_scale 512 = 0.5 * 400_000 CPU cycles.
    assert result.simulated_cycles == 200_000


def test_task_reads_sum_close_to_controller_total(result):
    task_reads = sum(t.reads_completed for t in result.tasks)
    # Task counters include stale completions around switches; controller
    # counts exactly once per request — they agree within in-flight slack.
    assert abs(task_reads - result.reads_completed) <= 64


def test_latency_fields_consistent(result):
    assert result.avg_read_latency_cycles > 0
    assert result.avg_read_latency_mem_cycles == pytest.approx(
        result.avg_read_latency_cycles / result.cpu_per_mem_cycle
    )
    for task in result.tasks:
        if task.reads_completed:
            # Unloaded row-hit floor: tCL + tBL = 60 CPU cycles.
            assert task.avg_read_latency_cycles >= 60


def test_quanta_counts(result):
    # 0.5 windows = 8 quanta per core; each task runs >= 1 quantum.
    total_quanta = sum(t.quanta for t in result.tasks)
    assert total_quanta >= 16
    assert all(t.quanta >= 1 for t in result.tasks)


def test_bus_utilization_sane(result):
    assert 0.0 <= result.bus_utilization <= 1.0


def test_energy_attached_and_consistent(result):
    energy = result.energy
    assert energy.total_mj > 0
    assert energy.background_mj > 0
    parts = (
        energy.background_mj + energy.activate_mj + energy.read_mj
        + energy.write_mj + energy.refresh_mj
    )
    assert energy.total_mj == pytest.approx(parts)


def test_trefw_reported_in_ms(result):
    assert result.trefw_ms == 64.0
    assert result.density_gbit == 32
