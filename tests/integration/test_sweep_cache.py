"""Integration tests for the disk-backed, process-parallel SweepRunner."""

import json

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.runner import ExperimentProfile, SweepRunner

TINY = ExperimentProfile(
    name="tiny",
    num_windows=0.25,
    warmup_windows=0.05,
    refresh_scale=1024,
    workloads=("WL-9",),
)


def make_runner(cache_dir, jobs=1):
    return SweepRunner(TINY, jobs=jobs, cache_dir=cache_dir)


def test_disk_cache_hit_across_runners(tmp_path):
    first = make_runner(tmp_path)
    a = first.run("WL-9", "all_bank")
    assert first.runs_executed == 1

    # A brand-new runner (fresh memo) sharing the cache dir never simulates.
    second = make_runner(tmp_path)
    b = second.run("WL-9", "all_bank")
    assert second.runs_executed == 0
    assert second.disk_hits == 1
    assert b == a


def test_cache_invalidated_by_config_change(tmp_path):
    first = make_runner(tmp_path)
    first.run("WL-9", "all_bank")

    second = make_runner(tmp_path)
    second.run("WL-9", "all_bank", density_gbit=16)
    assert second.runs_executed == 1  # different config, different key


def test_corrupt_cache_entry_is_recomputed(tmp_path):
    first = make_runner(tmp_path)
    a = first.run("WL-9", "per_bank")

    # Garble every entry on disk.
    files = list((tmp_path).rglob("*.json"))
    assert files
    for f in files:
        f.write_text("{ not json")

    second = make_runner(tmp_path)
    b = second.run("WL-9", "per_bank")
    assert second.runs_executed == 1  # corrupt entry -> miss -> recompute
    assert b == a
    # The corrupt file was discarded and replaced with a good one.
    (entry,) = tmp_path.rglob("*.json")
    assert json.loads(entry.read_text())["result"]["scenario"] == "per_bank"


def test_stale_schema_entry_is_recomputed(tmp_path):
    first = make_runner(tmp_path)
    first.run("WL-9", "per_bank")
    (entry,) = tmp_path.rglob("*.json")
    payload = json.loads(entry.read_text())
    payload["schema"] = "0.0"
    entry.write_text(json.dumps(payload))

    second = make_runner(tmp_path)
    second.run("WL-9", "per_bank")
    assert second.runs_executed == 1


def test_cache_layout_is_schema_versioned(tmp_path):
    cache = ResultCache(tmp_path)
    from repro.experiments.cache import CACHE_SCHEMA

    assert cache.root == tmp_path / f"v{CACHE_SCHEMA}"
    assert cache.path("abcdef").parent.name == "ab"


def test_parallel_results_bit_identical_to_sequential(tmp_path):
    points = [
        ("WL-9", "all_bank", {}),
        ("WL-9", "per_bank", {}),
        ("WL-9", "codesign", {}),
        ("WL-9", "all_bank", {"density_gbit": 16}),
    ]

    seq = SweepRunner(TINY, jobs=1, use_cache=False)
    seq.prefetch(seq.spec(w, s, **o) for w, s, o in points)
    seq_results = [seq.run(w, s, **o) for w, s, o in points]
    assert seq.runs_executed == 4

    par = SweepRunner(TINY, jobs=2, use_cache=False)
    executed = par.prefetch(par.spec(w, s, **o) for w, s, o in points)
    assert executed == 4
    par_results = [par.run(w, s, **o) for w, s, o in points]
    assert par.runs_executed == 4  # prefetch covered everything

    for a, b in zip(seq_results, par_results):
        assert a == b  # bit-identical, not approximately equal
        assert a.to_dict() == b.to_dict()


def test_prefetch_dedupes_and_memoizes(tmp_path):
    runner = make_runner(tmp_path)
    spec = runner.spec("WL-9", "all_bank")
    assert runner.prefetch([spec, spec, spec]) == 1
    assert runner.runs_executed == 1
    runner.run("WL-9", "all_bank")
    assert runner.runs_executed == 1  # memo hit
    assert runner.memo_hits == 1


def test_warm_cache_figure_rerun_executes_zero_simulations(tmp_path):
    from repro.experiments import figure11

    cold = make_runner(tmp_path)
    rows_cold = figure11.run(cold)
    assert cold.runs_executed > 0

    warm = make_runner(tmp_path)
    rows_warm = figure11.run(warm)
    assert warm.runs_executed == 0
    assert warm.disk_hits > 0
    assert rows_warm == rows_cold


def test_readonly_cache_degrades_gracefully(tmp_path):
    import os

    if os.getuid() == 0:
        pytest.skip("root ignores file permissions")
    ro = tmp_path / "ro"
    ro.mkdir()
    ro.chmod(0o500)
    runner = make_runner(ro)
    result = runner.run("WL-9", "all_bank")
    assert result.hmean_ipc > 0  # simulation fine, cache write silently skipped
