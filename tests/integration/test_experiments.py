"""Integration tests for the experiment harness (tiny profiles)."""

import pytest

from repro.experiments.runner import ExperimentProfile, SweepRunner

TINY = ExperimentProfile(
    name="tiny",
    num_windows=0.5,
    warmup_windows=0.1,
    refresh_scale=1024,
    workloads=("WL-6",),
)


@pytest.fixture(scope="module")
def runner():
    # Disk cache off: these tests assert on exact execution counts.
    return SweepRunner(TINY, jobs=1, use_cache=False)


def test_runner_memoizes(runner):
    before = runner.runs_executed
    a = runner.run("WL-6", "all_bank")
    mid = runner.runs_executed
    b = runner.run("WL-6", "all_bank")
    assert mid == before + 1
    assert runner.runs_executed == mid  # cached
    assert a is b


def test_runner_distinguishes_overrides(runner):
    runner.run("WL-6", "all_bank", density_gbit=16)
    n = runner.runs_executed
    runner.run("WL-6", "all_bank", density_gbit=24)
    assert runner.runs_executed == n + 1


def test_runner_distinguishes_same_named_scenarios(runner):
    """Custom scenarios are keyed by content, not by name (regression:
    the old memo keyed a Scenario object only by ``.name``)."""
    from repro.core.system import Scenario

    alike_a = Scenario("alike", "all_bank")
    alike_b = Scenario("alike", "per_bank")
    n = runner.runs_executed
    a = runner.run("WL-6", alike_a)
    b = runner.run("WL-6", alike_b)
    assert runner.runs_executed == n + 2
    assert a != b  # different refresh policies, different measurements


def test_runner_rejects_unserializable_override(runner):
    from repro.errors import ConfigError

    class Opaque:
        def validate(self):
            pass

    with pytest.raises(ConfigError, match="not JSON-serializable"):
        runner.run("WL-6", "all_bank", dram_timing=Opaque())


def test_figure3_shape(runner):
    from repro.experiments import figure3

    rows = figure3.run(runner)
    assert len(rows) == 4 * 2 * 2  # densities x retentions x schemes
    by_key = {(r.density_gbit, r.trefw_ms, r.scheme): r.degradation for r in rows}
    # All-bank hurts more than per-bank at 32Gb/64ms.
    assert by_key[(32, 64, "all_bank")] > by_key[(32, 64, "per_bank")]
    # 32ms hurts more than 64ms.
    assert by_key[(32, 32, "all_bank")] > by_key[(32, 64, "all_bank")]
    assert "Figure 3" in figure3.format_results(rows)


def test_figure5_shape():
    from repro.experiments import figure5

    rows = figure5.run(capacity_scale=2048)
    avg = figure5.averages(rows)
    # Fraction on one bank grows with density (Section 3.3).
    assert avg[8] <= avg[16] <= avg[24] <= avg[32]
    assert 0 < avg[8] <= 1.0
    # mcf (1.7GB) cannot fit one 8Gb-era bank.
    mcf8 = [r for r in rows if r.benchmark == "mcf" and r.density_gbit == 8][0]
    assert mcf8.fraction_on_bank0 < 0.5
    assert "Figure 5" in figure5.format_results(rows)


def test_figure10_rows(runner):
    from repro.experiments import figure10

    rows = figure10.run(runner)
    assert len(rows) == 3 * 1 * 2  # densities x workloads x schemes
    avg = figure10.averages(rows)
    assert avg[(32, "codesign")] > 0
    assert "Figure 10" in figure10.format_results(rows)


def test_figure11_rows(runner):
    from repro.experiments import figure11

    rows = figure11.run(runner)
    by_scheme = {r.scheme: r.avg_latency_mem_cycles for r in rows}
    assert by_scheme["codesign"] < by_scheme["all_bank"]
    assert "Figure 11" in figure11.format_results(rows)


def test_figure14_rows(runner):
    from repro.experiments import figure14

    rows = figure14.run(runner)
    avg = figure14.averages(rows)
    assert set(avg) == {"per_bank", "ooo_per_bank", "adaptive", "codesign"}
    assert avg["codesign"] >= avg["adaptive"]
    assert "Figure 14" in figure14.format_results(rows)


def test_ablation_component_study(runner):
    from repro.experiments import ablations

    rows = ablations.component_study(runner, workload="WL-6")
    by_variant = {r.variant: r.improvement for r in rows}
    assert by_variant["full co-design (soft)"] > by_variant["same-bank schedule only"]
    assert "Ablation" in ablations.format_results(rows)


def test_report_format_table_smoke():
    from repro.experiments.report import format_table

    out = format_table(["x"], [[1], [2]])
    assert out.count("\n") == 3
