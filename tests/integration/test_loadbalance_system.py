"""Integration tests for the load balancer inside full simulations."""


from repro.config.system_configs import OsConfig
from repro.core.metrics import fairness_index
from repro.core.simulator import build_system


def test_balancer_recovers_from_skewed_admission():
    """All tasks admitted to one CPU: the balancer restores parallelism."""
    system = build_system(
        "WL-9", "per_bank", os=OsConfig(load_balance=True), refresh_scale=512
    )
    # Undo the round-robin admission: pile everything onto cpu0.
    scheduler = system.scheduler
    for task in list(scheduler.runqueues[1].tasks()):
        scheduler.runqueues[1].dequeue(task)
        scheduler.runqueues[0].enqueue(task)
    result = system.run(num_windows=1.0, warmup_windows=0.25)
    assert system.load_balancer.migrations >= 3
    # Both cores ended up doing work.
    per_core_cycles = sum(t.scheduled_cycles for t in result.tasks)
    assert per_core_cycles > 1.5 * result.simulated_cycles
    assert fairness_index([t.scheduled_cycles for t in result.tasks]) > 0.8


def test_balancer_idle_on_balanced_system():
    system = build_system(
        "WL-9", "per_bank", os=OsConfig(load_balance=True), refresh_scale=512
    )
    system.run(num_windows=0.5, warmup_windows=0.1)
    assert system.load_balancer.migrations == 0


def test_bank_aware_balancing_under_codesign():
    system = build_system(
        "WL-1", "codesign", os=OsConfig(load_balance=True), refresh_scale=512
    )
    assert system.load_balancer.bank_aware
    scheduler = system.scheduler
    # Skew: move one task over, creating 5 vs 3.
    victim = scheduler.runqueues[1].tasks()[0]
    scheduler.runqueues[1].dequeue(victim)
    scheduler.runqueues[0].enqueue(victim)
    result = system.run(num_windows=1.0, warmup_windows=0.25)
    assert system.load_balancer.migrations >= 1
    assert result.hmean_ipc > 0


def test_no_balancer_by_default():
    system = build_system("WL-9", "per_bank", refresh_scale=512)
    assert system.load_balancer is None
