"""Integration tests for the remaining scenarios and scenario plumbing."""

import pytest

from repro import SCENARIOS, available_scenarios, available_workloads, run_simulation
from repro.config.dram_configs import DDR4_1600, FgrMode
from repro.core.simulator import build_system, compare_scenarios
from repro.errors import ConfigError
from repro.workloads.benchmark import BenchmarkSpec
from repro.units import MB

FAST = dict(num_windows=0.5, warmup_windows=0.1, refresh_scale=512)


def test_every_registered_scenario_runs():
    for name in available_scenarios():
        result = run_simulation("WL-9", name, **FAST)
        assert result.hmean_ipc > 0, name
        assert result.scenario == name


def test_available_workloads_all_run():
    for name in available_workloads():
        result = run_simulation(name, "per_bank", **FAST)
        assert result.hmean_ipc > 0, name


def test_unknown_scenario_and_workload_raise():
    with pytest.raises(ConfigError):
        run_simulation("WL-1", "warp_drive", **FAST)
    with pytest.raises(ConfigError):
        run_simulation("WL-0", "all_bank", **FAST)
    with pytest.raises(ConfigError):
        run_simulation([], "all_bank", **FAST)


def test_custom_spec_list_workload():
    specs = [
        BenchmarkSpec("custom_hot", mpki=20.0, footprint_bytes=64 * MB, mlp=4),
        BenchmarkSpec("custom_cold", mpki=0.2, footprint_bytes=8 * MB),
    ] * 2
    result = run_simulation(specs, "codesign", **FAST)
    assert result.workload == "custom"
    assert {t.name for t in result.tasks} == {"custom_hot", "custom_cold"}
    assert result.hmean_ipc > 0


def test_ooo_per_bank_beats_all_bank():
    results = compare_scenarios("WL-5", ["all_bank", "ooo_per_bank"], **FAST)
    assert results["ooo_per_bank"].hmean_ipc > results["all_bank"].hmean_ipc


def test_ddr4_fgr_modes_order():
    """Section 6.3: 2x/4x modes are worse than 1x for all-bank refresh."""
    ipc = {}
    for mode in (FgrMode.X1, FgrMode.X4):
        result = run_simulation(
            "WL-1", "all_bank", dram_timing=DDR4_1600, fgr_mode=mode, **FAST
        )
        ipc[mode] = result.hmean_ipc
    assert ipc[FgrMode.X4] < ipc[FgrMode.X1]


def test_codesign_hard_partition_runs():
    result = run_simulation("WL-9", "codesign_hard", **FAST)
    assert result.hmean_ipc > 0


def test_best_effort_handles_spilling_footprints():
    """Section 5.4.1: footprints exceeding the partition spill; the
    best-effort scheduler still runs and degrades gracefully."""
    # Tiny memory so mcf's footprint spills outside its 6-bank partition.
    result = run_simulation(
        "WL-1", "codesign_best_effort", capacity_scale=2048, **FAST
    )
    assert result.hmean_ipc > 0
    # Spilling forces some non-clean picks; best-effort handles them.
    assert result.scheduler_clean_picks + result.scheduler_fallback_picks > 0


def test_banks_per_task_override():
    narrow = run_simulation("WL-6", "codesign", banks_per_task=2, **FAST)
    wide = run_simulation("WL-6", "codesign", banks_per_task=6, **FAST)
    # Paper footnote 11: 6 banks beats 2 banks at 1:4 consolidation.
    assert wide.hmean_ipc > narrow.hmean_ipc


def test_quad_core_system_runs():
    from repro.config.dram_configs import DramOrganization
    from repro.config.system_configs import CoreConfig
    from repro.workloads.mixes import scaled_mix

    specs = scaled_mix("WL-6", 16)
    result = run_simulation(
        specs,
        "codesign",
        cores=CoreConfig(num_cores=4),
        organization=DramOrganization(ranks_per_channel=4),
        **FAST,
    )
    assert len(result.tasks) == 16
    assert result.hmean_ipc > 0
    assert result.scheduler_fallback_picks == 0


def test_system_cannot_run_twice():
    system = build_system("WL-9", "all_bank", refresh_scale=512)
    system.run(num_windows=0.25, warmup_windows=0.0)
    with pytest.raises(ConfigError):
        system.run(num_windows=0.25)


def test_scenario_objects_exposed():
    assert "codesign" in SCENARIOS
    scenario = SCENARIOS["codesign"]
    assert scenario.refresh_policy == "same_bank"
    assert scenario.refresh_aware
