"""Property-based tests for the address mapping (bijectivity, balance)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.dram_configs import DramOrganization
from repro.dram.address import AddressMapping

geometries = st.tuples(
    st.sampled_from([1, 2]),        # channels
    st.sampled_from([1, 2, 4]),     # ranks
    st.sampled_from([2, 4, 8]),     # banks
    st.integers(min_value=1, max_value=64),  # rows per bank
)


@given(geometry=geometries, data=st.data())
@settings(max_examples=100, deadline=None)
def test_frame_coordinate_bijection(geometry, data):
    channels, ranks, banks, rows = geometry
    org = DramOrganization(
        channels=channels, ranks_per_channel=ranks, banks_per_rank=banks
    )
    mapping = AddressMapping(org, rows)
    frame = data.draw(st.integers(0, mapping.total_frames - 1))
    coord = mapping.frame_to_coordinate(frame)
    assert mapping.coordinate_to_frame(coord) == frame


@given(geometry=geometries)
@settings(max_examples=50, deadline=None)
def test_flat_bank_index_bijection(geometry):
    channels, ranks, banks, rows = geometry
    org = DramOrganization(
        channels=channels, ranks_per_channel=ranks, banks_per_rank=banks
    )
    mapping = AddressMapping(org, rows)
    seen = set()
    for flat in range(org.total_banks):
        triple = mapping.unflatten_bank_index(flat)
        assert mapping.flat_bank_index(*triple) == flat
        seen.add(triple)
    assert len(seen) == org.total_banks


@given(geometry=geometries)
@settings(max_examples=50, deadline=None)
def test_frames_balanced_across_banks(geometry):
    channels, ranks, banks, rows = geometry
    org = DramOrganization(
        channels=channels, ranks_per_channel=ranks, banks_per_rank=banks
    )
    mapping = AddressMapping(org, rows)
    counts = [0] * org.total_banks
    for frame in range(mapping.total_frames):
        counts[mapping.frame_to_bank_index(frame)] += 1
    assert set(counts) == {rows}


@given(geometry=geometries, data=st.data())
@settings(max_examples=100, deadline=None)
def test_address_roundtrip_through_coordinate(geometry, data):
    channels, ranks, banks, rows = geometry
    org = DramOrganization(
        channels=channels, ranks_per_channel=ranks, banks_per_rank=banks
    )
    mapping = AddressMapping(org, rows)
    address = data.draw(st.integers(0, mapping.total_bytes - 1))
    coord = mapping.address_to_coordinate(address)
    frame = mapping.coordinate_to_frame(
        type(coord)(coord.channel, coord.rank, coord.bank, coord.row, 0)
    )
    rebuilt = mapping.frame_offset_to_address(
        frame, coord.column * org.cacheline_bytes
    )
    # Same cache line (offsets within a line collapse to its base).
    assert rebuilt // org.cacheline_bytes == address // org.cacheline_bytes
