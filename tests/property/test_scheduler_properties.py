"""Property-based tests for the OS schedulers."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.dram_configs import DramOrganization
from repro.config.system_configs import default_system_config
from repro.core.engine import Engine
from repro.cpu.core import Core
from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.refresh import make_scheduler
from repro.dram.timing import DramTiming
from repro.os.refresh_aware import RefreshAwareScheduler
from repro.os.scheduler import CfsScheduler
from repro.os.task import Task
from repro.workloads.benchmark import MemAccess


class ComputeWorkload:
    mlp = 1
    name = "compute"

    def next_access(self, task):
        return MemAccess(100, 100, None)


def build(num_cores, quantum, refresh_aware=False):
    config = default_system_config(refresh_scale=1024)
    timing = DramTiming.from_config(config)
    engine = Engine()
    org = DramOrganization()
    mapping = AddressMapping(org, total_rows_per_bank=16)
    mc = MemoryController(engine, timing, org, mapping)
    cores = [Core(i, engine, mc) for i in range(num_cores)]
    if refresh_aware:
        refresh = make_scheduler("same_bank")
        refresh.attach(mc, engine, timing)
        scheduler = RefreshAwareScheduler(engine, cores, quantum, refresh)
    else:
        scheduler = CfsScheduler(engine, cores, quantum)
    return engine, scheduler, timing


_ids = itertools.count()


def make_task(name, banks=None):
    task = Task(name, ComputeWorkload(),
                possible_banks=frozenset(banks) if banks else None,
                task_id=next(_ids))
    task.rng = random.Random(1)
    if banks:
        for i, bank in enumerate(sorted(banks)):
            task.add_frame(i, bank)
    return task


@given(
    num_tasks=st.integers(1, 12),
    num_cores=st.sampled_from([1, 2, 4]),
    quanta=st.integers(8, 40),
)
@settings(max_examples=50, deadline=None)
def test_cfs_equal_share_property(num_tasks, num_cores, quanta):
    """Equal-weight always-runnable tasks receive CPU time within one
    quantum of each other over any horizon."""
    quantum = 500
    engine, scheduler, _ = build(num_cores, quantum)
    tasks = [make_task(f"t{i}") for i in range(num_tasks)]
    for task in tasks:
        scheduler.add_task(task)
    scheduler.start()
    engine.run_until(quantum * quanta)
    for core in scheduler.cores:
        core.preempt()
    cycles = [t.stats.scheduled_cycles for t in tasks]
    total = sum(cycles)
    busy_cores = min(num_cores, num_tasks)
    assert total == quantum * quanta * busy_cores
    # Fairness holds *within* each runqueue (cross-queue balance is the
    # load balancer's job, not CFS's).
    for runqueue in scheduler.runqueues:
        queue_cycles = [t.stats.scheduled_cycles for t in runqueue.tasks()]
        if queue_cycles:
            assert max(queue_cycles) - min(queue_cycles) <= 2 * quantum


@given(
    data=st.data(),
    num_tasks=st.integers(2, 8),
)
@settings(max_examples=50, deadline=None)
def test_refresh_aware_never_picks_dirty_when_clean_exists(data, num_tasks):
    """Algorithm 3's defining property, under arbitrary bank vectors."""
    stretch = DramTiming.from_config(
        default_system_config(refresh_scale=1024)
    ).refresh_stretch
    engine, scheduler, timing = build(1, stretch, refresh_aware=True)
    tasks = []
    for i in range(num_tasks):
        banks = data.draw(
            st.sets(st.integers(0, 15), min_size=1, max_size=16),
            label=f"banks{i}",
        )
        task = make_task(f"t{i}", banks=banks)
        task.vruntime = float(data.draw(st.integers(0, 100), label=f"vr{i}"))
        tasks.append(task)
        scheduler.add_task(task, cpu=0)

    refresh_bank = scheduler.next_refresh_bank()
    picked = scheduler.pick_next_task(scheduler.runqueues[0])
    assert picked is not None
    clean_exists = any(not t.has_data_in_bank(refresh_bank) for t in tasks)
    if clean_exists:
        assert not picked.has_data_in_bank(refresh_bank)
    else:
        # Fairness fallback: leftmost by vruntime.
        leftmost = min(tasks, key=lambda t: (t.vruntime, t.task_id))
        assert picked is leftmost
