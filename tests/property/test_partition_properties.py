"""Property-based tests for the Algorithm 2 partitioning allocator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.dram_configs import DramOrganization
from repro.dram.address import AddressMapping
from repro.os.page import PhysicalMemory
from repro.os.partition import PartitioningAllocator, PartitionPolicy
from repro.os.task import Task


def build(rows_per_bank, policy=PartitionPolicy.SOFT):
    mapping = AddressMapping(DramOrganization(), total_rows_per_bank=rows_per_bank)
    memory = PhysicalMemory(mapping)
    return memory, PartitioningAllocator(memory, policy)


bank_sets = st.sets(st.integers(0, 15), min_size=1, max_size=16)


@given(
    banks=bank_sets,
    num_pages=st.integers(1, 40),
    rows=st.sampled_from([4, 8, 16]),
)
@settings(max_examples=100, deadline=None)
def test_soft_partition_respects_vector_until_full(banks, num_pages, rows):
    memory, allocator = build(rows)
    task = Task("t", None, possible_banks=banks, task_id=0)
    allocated = allocator.alloc_footprint(task, num_pages)
    capacity_in_banks = len(banks) * rows
    inside = sum(task.pages_per_bank.get(b, 0) for b in banks)
    outside = allocated - inside
    if allocated <= capacity_in_banks:
        assert outside == 0, "spilled despite free partition space"
    else:
        assert inside == capacity_in_banks, "partition not exhausted first"
    # Ownership is consistent.
    for frame in task.frames:
        assert memory.owner(frame) == task.task_id


@given(
    banks=bank_sets,
    num_pages=st.integers(1, 60),
)
@settings(max_examples=100, deadline=None)
def test_hard_partition_never_leaks(banks, num_pages):
    memory, allocator = build(4, PartitionPolicy.HARD)
    task = Task("t", None, possible_banks=banks, task_id=0)
    allocated = allocator.alloc_footprint(task, num_pages)
    assert set(task.pages_per_bank) <= banks
    assert allocated <= len(banks) * 4


@given(
    footprints=st.lists(st.integers(1, 20), min_size=1, max_size=8),
    seed=st.integers(0, 1000),
)
@settings(max_examples=80, deadline=None)
def test_multi_task_no_frame_shared(footprints, seed):
    import random

    rng = random.Random(seed)
    memory, allocator = build(16)
    tasks = []
    for i, pages in enumerate(footprints):
        banks = frozenset(rng.sample(range(16), rng.randint(1, 16)))
        task = Task(f"t{i}", None, possible_banks=banks, task_id=i)
        allocator.alloc_footprint(task, pages)
        tasks.append(task)
    seen: set[int] = set()
    for task in tasks:
        frames = set(task.frames)
        assert not (frames & seen)
        seen |= frames
    # Conservation: free + allocated == total.
    assert allocator.free_frames() + len(seen) == memory.total_frames


@given(
    banks=bank_sets,
    pages=st.integers(1, 30),
)
@settings(max_examples=80, deadline=None)
def test_free_task_restores_everything(banks, pages):
    memory, allocator = build(8)
    task = Task("t", None, possible_banks=banks, task_id=0)
    allocator.alloc_footprint(task, pages)
    allocator.free_task(task)
    assert memory.used_frames() == 0
    assert allocator.free_frames() == memory.total_frames
    # Memory is fully usable again.
    other = Task("u", None, possible_banks=None, task_id=1)
    assert allocator.alloc_footprint(other, memory.total_frames) == (
        memory.total_frames
    )


@given(
    banks=st.sets(st.integers(0, 15), min_size=2, max_size=16),
    pages=st.integers(2, 32),
)
@settings(max_examples=80, deadline=None)
def test_round_robin_balance_within_partition(banks, pages):
    """Consecutive allocations stripe: bank counts differ by at most 1
    while the partition has room."""
    memory, allocator = build(64)  # plenty of room
    task = Task("t", None, possible_banks=banks, task_id=0)
    allocator.alloc_footprint(task, pages)
    counts = [task.pages_per_bank.get(b, 0) for b in banks]
    assert max(counts) - min(counts) <= 1
