"""Property-based tests for bank-vector assignment schedulability."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.config.dram_configs import DramOrganization
from repro.os.codesign import (
    assign_bank_vectors,
    is_fully_schedulable,
    schedulability_report,
)


@given(
    num_cores=st.sampled_from([2, 4]),
    tasks_per_core=st.sampled_from([2, 4, 8]),
    ranks=st.sampled_from([2, 4]),
)
@settings(max_examples=40, deadline=None)
def test_default_assignment_fully_schedulable(num_cores, tasks_per_core, ranks):
    """At every even consolidation ratio, every core always has a clean
    task for whichever bank is being refreshed."""
    org = DramOrganization(ranks_per_channel=ranks)
    num_tasks = num_cores * tasks_per_core
    vectors = assign_bank_vectors(num_tasks, num_cores, org)
    assert is_fully_schedulable(vectors, num_cores, org)


@given(
    num_cores=st.sampled_from([2, 4]),
    num_tasks=st.integers(4, 24),
    banks_per_task=st.integers(1, 7),
)
@settings(max_examples=80, deadline=None)
def test_explicit_assignment_invariants(num_cores, num_tasks, banks_per_task):
    assume(num_tasks >= num_cores)
    org = DramOrganization()
    vectors = assign_bank_vectors(
        num_tasks, num_cores, org, banks_per_task=banks_per_task
    )
    assert len(vectors) == num_tasks
    for allowed in vectors:
        # Correct size: banks_per_task per rank, every rank.
        assert len(allowed) == banks_per_task * org.ranks_per_channel
        # Flat indices in range.
        assert all(0 <= b < org.total_banks for b in allowed)
        # Rank-symmetric exclusions.
        per_rank = [
            {b % org.banks_per_rank for b in allowed
             if b // org.banks_per_rank == r}
            for r in range(org.ranks_per_channel)
        ]
        assert all(s == per_rank[0] for s in per_rank)


@given(
    tasks_per_core=st.sampled_from([2, 4, 8]),
)
@settings(max_examples=20, deadline=None)
def test_report_lists_every_core_when_windows_tile(tasks_per_core):
    org = DramOrganization()
    num_cores = 2
    vectors = assign_bank_vectors(num_cores * tasks_per_core, num_cores, org)
    report = schedulability_report(vectors, num_cores, org)
    for flat, cores in report.items():
        assert cores == list(range(num_cores)), (flat, cores)
