"""Property-based tests for the cache (inclusion of recency, capacity)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.cache import Cache


@given(
    accesses=st.lists(
        st.tuples(st.integers(0, 4095), st.booleans()), min_size=1, max_size=300
    )
)
@settings(max_examples=100, deadline=None)
def test_capacity_never_exceeded(accesses):
    cache = Cache(size_bytes=512, assoc=2, line_bytes=64)
    for address, is_write in accesses:
        cache.access(address, is_write)
    assert cache.occupied_lines <= 8


@given(
    accesses=st.lists(st.integers(0, 8191), min_size=1, max_size=200),
)
@settings(max_examples=100, deadline=None)
def test_most_recent_line_always_resident(accesses):
    cache = Cache(size_bytes=512, assoc=2, line_bytes=64)
    for address in accesses:
        cache.access(address, False)
        assert cache.probe(address)


@given(
    accesses=st.lists(
        st.tuples(st.integers(0, 2047), st.booleans()), min_size=1, max_size=300
    )
)
@settings(max_examples=100, deadline=None)
def test_stats_balance(accesses):
    cache = Cache(size_bytes=256, assoc=2, line_bytes=64)
    for address, is_write in accesses:
        cache.access(address, is_write)
    stats = cache.stats
    assert stats.hits + stats.misses == len(accesses)
    assert stats.writebacks <= stats.evictions
    assert stats.evictions <= stats.misses
    # Lines present = misses - evictions (every miss fills, evictions remove).
    assert cache.occupied_lines == stats.misses - stats.evictions


@given(
    working_set=st.integers(1, 4),
    rounds=st.integers(2, 6),
)
@settings(max_examples=50, deadline=None)
def test_small_working_set_all_hits_after_warmup(working_set, rounds):
    cache = Cache(size_bytes=1024, assoc=4, line_bytes=64)
    lines = [i * 64 for i in range(working_set)]
    for a in lines:
        cache.access(a, False)
    hits_before = cache.stats.hits
    for _ in range(rounds):
        for a in lines:
            hit, _ = cache.access(a, False)
            assert hit
    assert cache.stats.hits == hits_before + rounds * working_set
