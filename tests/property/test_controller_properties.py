"""Property-based tests for the memory controller.

Invariants: every enqueued request completes; no request finishes before
its unloaded minimum latency; queue occupancy returns to zero; bank state
timestamps are monotone.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.dram_configs import DramOrganization
from repro.config.system_configs import default_system_config
from repro.core.engine import Engine
from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest, RequestType
from repro.dram.timing import DramTiming


def build():
    config = default_system_config(refresh_scale=1024)
    timing = DramTiming.from_config(config)
    engine = Engine()
    org = DramOrganization()
    mapping = AddressMapping(org, total_rows_per_bank=32)
    mc = MemoryController(engine, timing, org, mapping)
    return engine, mapping, mc, timing


request_plans = st.lists(
    st.tuples(
        st.integers(0, 511),       # frame
        st.integers(0, 63),        # column
        st.booleans(),             # is_write
        st.integers(0, 2000),      # arrival delay
    ),
    min_size=1,
    max_size=80,
)


@given(plan=request_plans)
@settings(max_examples=60, deadline=None)
def test_every_request_completes_exactly_once(plan):
    engine, mapping, mc, timing = build()
    completed = []

    def arrival(frame, column, is_write):
        def fire():
            address = mapping.frame_offset_to_address(frame, column * 64)
            rtype = RequestType.WRITE if is_write else RequestType.READ
            mc.enqueue(
                MemoryRequest(
                    rtype, address, mapping.address_to_coordinate(address),
                    on_complete=completed.append,
                )
            )
        return fire

    reads = 0
    for frame, column, is_write, delay in plan:
        engine.schedule(delay, arrival(frame, column, is_write))
        if not is_write:
            reads += 1
    engine.run_until(10_000_000)

    assert mc.stats.reads_completed == reads
    assert mc.stats.writes_completed == len(plan) - reads
    assert len(completed) == len(plan)
    assert len({r.req_id for r in completed}) == len(plan)
    assert mc.read_count == 0 and mc.write_count == 0
    assert not mc.drain_mode


@given(plan=request_plans)
@settings(max_examples=60, deadline=None)
def test_latency_never_below_unloaded_minimum(plan):
    engine, mapping, mc, timing = build()
    completed = []
    for i, (frame, column, is_write, delay) in enumerate(plan):
        address = mapping.frame_offset_to_address(frame, column * 64)
        rtype = RequestType.WRITE if is_write else RequestType.READ
        request = MemoryRequest(
            rtype, address, mapping.address_to_coordinate(address),
            on_complete=completed.append,
        )
        engine.schedule(delay, lambda r=request: mc.enqueue(r))
    engine.run_until(10_000_000)
    minimum = timing.tCL + timing.tBL  # best case: row hit read
    min_write = timing.tCWL + timing.tBL
    for request in completed:
        floor = minimum if request.is_read else min_write
        assert request.latency >= floor


@given(plan=request_plans, seed=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_interleaved_refresh_preserves_completion(plan, seed):
    """Random per-bank refresh injections never lose demand requests."""
    engine, mapping, mc, timing = build()
    rng = random.Random(seed)
    completed = []
    for frame, column, is_write, delay in plan:
        address = mapping.frame_offset_to_address(frame, column * 64)
        rtype = RequestType.WRITE if is_write else RequestType.READ
        request = MemoryRequest(
            rtype, address, mapping.address_to_coordinate(address),
            on_complete=completed.append,
        )
        engine.schedule(delay, lambda r=request: mc.enqueue(r))

    def refresher():
        flat = rng.randrange(16)
        channel, rank, bank = mapping.unflatten_bank_index(flat)
        mc.refresh_bank(channel, rank, bank, timing.trfc_pb)
        engine.schedule(rng.randrange(200, 1500), refresher)

    engine.schedule(0, refresher)
    engine.run_until(5_000_000)
    # Stop injecting and drain.
    engine.clear_pending()
    engine.run_until(15_000_000)
    assert len(completed) == len(plan)


@given(plan=request_plans)
@settings(max_examples=40, deadline=None)
def test_bank_timestamps_monotone(plan):
    engine, mapping, mc, timing = build()
    for frame, column, is_write, delay in plan:
        address = mapping.frame_offset_to_address(frame, column * 64)
        rtype = RequestType.WRITE if is_write else RequestType.READ
        request = MemoryRequest(
            rtype, address, mapping.address_to_coordinate(address)
        )
        engine.schedule(delay, lambda r=request: mc.enqueue(r))
    engine.run_until(10_000_000)
    serviced = 0
    for bank in mc.banks:
        assert bank.cas_ready >= 0
        assert bank.pre_ready >= 0
        assert bank.act_ready >= 0
        stats = bank.stats
        # Every serviced access was classified exactly once.
        assert (
            stats.row_hits + stats.row_misses + stats.row_conflicts
            == stats.reads + stats.writes
        )
        serviced += stats.reads + stats.writes
    assert serviced == len(plan)