"""Property-based tests for demand-paged virtual memory."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.dram_configs import DramOrganization
from repro.dram.address import AddressMapping
from repro.os.page import PhysicalMemory
from repro.os.partition import PartitioningAllocator, PartitionPolicy
from repro.os.task import Task
from repro.os.vm import VirtualMemory


def build_vm(footprint, resident_limit=None, banks=None,
             policy=PartitionPolicy.SOFT, rows_per_bank=8):
    mapping = AddressMapping(DramOrganization(), total_rows_per_bank=rows_per_bank)
    memory = PhysicalMemory(mapping)
    allocator = PartitioningAllocator(memory, policy)
    task = Task("t", None, task_id=0,
                possible_banks=frozenset(banks) if banks else None)
    vm = VirtualMemory(task, allocator, footprint, resident_limit=resident_limit)
    return memory, allocator, task, vm


@given(
    footprint=st.integers(2, 64),
    limit=st.integers(1, 16),
    vpns=st.lists(st.integers(0, 127), min_size=1, max_size=200),
)
@settings(max_examples=100, deadline=None)
def test_residency_never_exceeds_limit(footprint, limit, vpns):
    memory, allocator, task, vm = build_vm(footprint, resident_limit=limit)
    for vpn in vpns:
        vm.translate(vpn)
        assert vm.resident_pages <= min(limit, footprint)
        assert len(task.frames) == vm.resident_pages


@given(
    footprint=st.integers(2, 64),
    vpns=st.lists(st.integers(0, 127), min_size=1, max_size=200),
)
@settings(max_examples=100, deadline=None)
def test_translation_is_stable_while_resident(footprint, vpns):
    """A vpn translated twice without an intervening eviction returns the
    same frame, and distinct resident vpns map to distinct frames."""
    memory, allocator, task, vm = build_vm(footprint)
    seen: dict[int, int] = {}
    for vpn in vpns:
        frame, _ = vm.translate(vpn)
        key = vpn % footprint
        if key in seen:
            assert seen[key] == frame
        seen[key] = frame
    assert len(set(seen.values())) == len(seen)


@given(
    footprint=st.integers(4, 64),
    limit=st.integers(2, 8),
    vpns=st.lists(st.integers(0, 127), min_size=20, max_size=200),
)
@settings(max_examples=80, deadline=None)
def test_fault_accounting_consistent(footprint, limit, vpns):
    memory, allocator, task, vm = build_vm(footprint, resident_limit=limit)
    for vpn in vpns:
        vm.translate(vpn)
    stats = vm.stats
    assert stats.hits + stats.faults == len(vpns)
    assert stats.evictions == stats.major_faults
    # Frames in flight equal faults minus evictions.
    assert vm.resident_pages == stats.faults - stats.evictions
    # Memory accounting closes.
    assert memory.used_frames() == vm.resident_pages


@given(
    footprint=st.integers(2, 32),
    vpns=st.lists(st.integers(0, 63), min_size=1, max_size=120),
)
@settings(max_examples=80, deadline=None)
def test_release_all_returns_every_frame(footprint, vpns):
    memory, allocator, task, vm = build_vm(footprint)
    for vpn in vpns:
        vm.translate(vpn)
    vm.release_all()
    assert memory.used_frames() == 0
    assert allocator.free_frames() == memory.total_frames
    assert task.frames == []
    assert task.pages_per_bank == {}


@given(
    vpns=st.lists(st.integers(0, 255), min_size=30, max_size=300),
)
@settings(max_examples=60, deadline=None)
def test_hard_partition_residency_stays_inside_banks(vpns):
    memory, allocator, task, vm = build_vm(
        footprint=64, banks={0, 5}, policy=PartitionPolicy.HARD,
        rows_per_bank=4,
    )
    for vpn in vpns:
        vm.translate(vpn)
        assert set(task.pages_per_bank) <= {0, 5}
        assert vm.resident_pages <= 8  # 2 banks x 4 frames