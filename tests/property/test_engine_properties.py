"""Property-based tests for the event engine (ordering, monotonic time)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import Engine


@given(delays=st.lists(st.integers(0, 10_000), min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_execution_order_is_time_then_insertion(delays):
    eng = Engine()
    fired = []
    for i, delay in enumerate(delays):
        eng.schedule(delay, lambda d=delay, i=i: fired.append((d, i)))
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(delays=st.lists(st.integers(0, 1000), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_now_is_monotonic(delays):
    eng = Engine()
    times = []
    for delay in delays:
        eng.schedule(delay, lambda: times.append(eng.now))
    eng.run()
    assert times == sorted(times)
    assert eng.now == max(delays)


@given(
    delays=st.lists(st.integers(0, 1000), min_size=2, max_size=50),
    cancel_mask=st.lists(st.booleans(), min_size=2, max_size=50),
)
@settings(max_examples=100, deadline=None)
def test_cancelled_events_never_fire(delays, cancel_mask):
    eng = Engine()
    fired = []
    events = []
    for i, delay in enumerate(delays):
        events.append(eng.schedule_event(delay, lambda i=i: fired.append(i)))
    cancelled = {
        i for i, (event, cancel) in enumerate(zip(events, cancel_mask))
        if cancel and event.cancel() is None and cancel
    }
    eng.run()
    assert set(fired).isdisjoint(cancelled)
    assert set(fired) | cancelled == set(range(min(len(delays), len(cancel_mask)))) | set(fired)


@given(
    chain_lengths=st.lists(st.integers(1, 5), min_size=1, max_size=10),
)
@settings(max_examples=50, deadline=None)
def test_recursive_scheduling_runs_to_completion(chain_lengths):
    eng = Engine()
    completed = []

    def make_chain(remaining, tag):
        def step():
            if remaining == 1:
                completed.append(tag)
            else:
                eng.schedule(1, make_chain(remaining - 1, tag))
        return step

    for tag, length in enumerate(chain_lengths):
        eng.schedule(tag, make_chain(length, tag))
    eng.run()
    assert sorted(completed) == list(range(len(chain_lengths)))
