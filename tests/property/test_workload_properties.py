"""Property-based tests for the statistical workload generator."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.dram_configs import DramOrganization
from repro.dram.address import AddressMapping
from repro.os.task import Task
from repro.workloads.benchmark import (
    AccessPattern,
    BenchmarkSpec,
    StatisticalWorkload,
)

specs = st.builds(
    BenchmarkSpec,
    name=st.just("prop"),
    mpki=st.floats(min_value=0.5, max_value=60.0),
    footprint_bytes=st.integers(min_value=4096, max_value=40 * 4096),
    base_cpi=st.floats(min_value=0.3, max_value=1.0),
    mlp=st.integers(min_value=1, max_value=10),
    row_locality=st.floats(min_value=0.0, max_value=0.95),
    write_fraction=st.floats(min_value=0.0, max_value=0.6),
    pattern=st.sampled_from(list(AccessPattern)),
)


def make_task(spec, seed, num_pages=16):
    mapping = AddressMapping(DramOrganization(), total_rows_per_bank=64)
    workload = StatisticalWorkload(spec, mapping)
    task = Task(spec.name, workload, task_id=0)
    task.rng = random.Random(seed)
    for frame in range(num_pages):
        task.add_frame(frame, mapping.frame_to_bank_index(frame))
    return task, mapping


@given(spec=specs, seed=st.integers(0, 2**16))
@settings(max_examples=100, deadline=None)
def test_addresses_always_within_task_pages(spec, seed):
    task, mapping = make_task(spec, seed)
    frames = set(task.frames)
    for _ in range(100):
        access = task.workload.next_access(task)
        assert access.instructions >= 1
        assert access.gap_cycles >= 1
        if access.address is not None:
            assert access.address // mapping.page_bytes in frames
        if access.writeback_address is not None:
            assert access.writeback_address // mapping.page_bytes in frames


@given(spec=specs, seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_mean_instructions_matches_mpki(spec, seed):
    task, _ = make_task(spec, seed)
    n = 3000
    total = sum(task.workload.next_access(task).instructions for _ in range(n))
    expected = spec.instructions_per_miss()
    assert 0.7 * expected <= total / n <= 1.4 * expected


@given(spec=specs, seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_generator_deterministic(spec, seed):
    a, _ = make_task(spec, seed)
    b, _ = make_task(spec, seed)
    for _ in range(60):
        x = a.workload.next_access(a)
        y = b.workload.next_access(b)
        assert (x.instructions, x.address, x.writeback_address) == (
            y.instructions,
            y.address,
            y.writeback_address,
        )


@given(
    mlp=st.integers(min_value=2, max_value=10),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_burst_structure_has_mlp_misses_per_burst(mlp, seed):
    spec = BenchmarkSpec(
        "burst", mpki=20.0, footprint_bytes=16 * 4096, mlp=mlp,
        row_locality=0.0,
    )
    task, _ = make_task(spec, seed)
    workload = task.workload
    gaps = [workload.next_access(task).instructions for _ in range(mlp * 6)]
    intra = workload._intra_instr
    # Within each burst of `mlp` misses, gaps 1..mlp-1 are the short ones.
    for burst_start in range(0, len(gaps), mlp):
        chunk = gaps[burst_start : burst_start + mlp]
        assert all(g == intra for g in chunk[1:])
        assert chunk[0] >= 1
