"""Property-based tests for bank-level DDR timing invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.system_configs import default_system_config
from repro.dram.address import DramCoordinate
from repro.dram.bank import Bank, ChannelBus, Rank
from repro.dram.request import MemoryRequest, RequestType
from repro.dram.timing import DramTiming

TIMING = DramTiming.from_config(default_system_config(refresh_scale=1024))

access_plans = st.lists(
    st.tuples(
        st.integers(0, 7),        # row
        st.integers(0, 63),       # column
        st.booleans(),            # is_write
        st.integers(0, 500),      # time advance before the access
    ),
    min_size=1,
    max_size=60,
)


def make_request(row, column, is_write, arrive):
    coord = DramCoordinate(0, 0, 0, row, column)
    req = MemoryRequest(
        RequestType.WRITE if is_write else RequestType.READ, 0, coord
    )
    req.arrive_time = arrive
    return req


@given(plan=access_plans)
@settings(max_examples=120, deadline=None)
def test_service_timing_invariants(plan):
    bank, rank, bus = Bank(0, 0, 0, 0), Rank(0, 0), ChannelBus()
    now = 0
    prev_data_start = -1
    for row, column, is_write, advance in plan:
        now += advance
        req = make_request(row, column, is_write, now)
        service = bank.service(req, now, TIMING, rank, bus)
        # Commands never issue in the past.
        assert service.cas_time >= now
        # Data follows the CAS by exactly the CAS latency.
        gap = TIMING.tCL if not is_write else TIMING.tCWL
        assert service.data_start == service.cas_time + gap
        assert service.finish == service.data_start + TIMING.tBL
        # The shared bus is strictly serialized.
        assert service.data_start >= prev_data_start + TIMING.tBL or (
            prev_data_start == -1
        )
        prev_data_start = service.data_start
        # Row-hit classification is consistent with the open row.
        assert req.refresh_stall == 0
        assert bank.open_row == row  # open policy keeps the row


@given(plan=access_plans, trfc_point=st.integers(0, 30))
@settings(max_examples=80, deadline=None)
def test_no_access_overlaps_refresh(plan, trfc_point):
    """Any access issued after a refresh begins starts after it ends."""
    bank, rank, bus = Bank(0, 0, 0, 0), Rank(0, 0), ChannelBus()
    now = 0
    refresh_end = None
    for i, (row, column, is_write, advance) in enumerate(plan):
        now += advance
        if i == trfc_point % len(plan):
            start = bank.refresh_start_time(now, TIMING)
            refresh_end = bank.begin_refresh(start, TIMING.trfc_pb)
        req = make_request(row, column, is_write, now)
        service = bank.service(req, now, TIMING, rank, bus)
        if refresh_end is not None:
            assert service.cas_time >= refresh_end - TIMING.tRCD - TIMING.tRP


@given(plan=access_plans)
@settings(max_examples=80, deadline=None)
def test_closed_policy_never_leaves_row_open(plan):
    bank, rank, bus = Bank(0, 0, 0, 0), Rank(0, 0), ChannelBus()
    now = 0
    for row, column, is_write, advance in plan:
        now += advance
        req = make_request(row, column, is_write, now)
        bank.service(req, now, TIMING, rank, bus, close_row=True)
        assert bank.open_row is None
    assert bank.stats.row_hits == 0
    assert bank.stats.row_conflicts == 0
    assert bank.stats.row_misses == len(plan)


@given(
    activations=st.lists(st.integers(0, 100), min_size=5, max_size=30),
)
@settings(max_examples=80, deadline=None)
def test_faw_window_bounds_activate_rate(activations):
    """No more than 4 activates in any tFAW window."""
    rank = Rank(0, 0)
    times = []
    wanted = 0
    for advance in activations:
        wanted += advance
        t = rank.earliest_activate(wanted, TIMING)
        rank.record_activate(t, TIMING)
        times.append(t)
        wanted = t
    for i in range(len(times) - 4):
        assert times[i + 4] - times[i] >= TIMING.tFAW
    for a, b in zip(times, times[1:]):
        assert b - a >= TIMING.tRRD
