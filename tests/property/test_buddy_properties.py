"""Property-based tests for the buddy allocator.

Invariants: allocated blocks never overlap, never exceed memory, frames are
conserved, and any alloc/free sequence fully coalesces back to the initial
free-block structure.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OutOfMemoryError
from repro.os.buddy import BuddyAllocator

# A program is a list of operations: (True, order) = alloc, (False, i) =
# free the i-th live allocation (mod length).
operations = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=5)),
    min_size=1,
    max_size=60,
)


@given(total=st.integers(min_value=1, max_value=300), ops=operations)
@settings(max_examples=150, deadline=None)
def test_no_overlap_and_conservation(total, ops):
    buddy = BuddyAllocator(total)
    live: list[tuple[int, int]] = []  # (base, order)

    for is_alloc, arg in ops:
        if is_alloc:
            order = arg % buddy.max_order
            try:
                base = buddy.alloc(order)
            except OutOfMemoryError:
                continue
            live.append((base, order))
        elif live:
            base, order = live.pop(arg % len(live))
            buddy.free(base, order)

    # Invariant 1: allocated blocks are in range and aligned.
    for base, order in live:
        assert base % (1 << order) == 0
        assert 0 <= base and base + (1 << order) <= total

    # Invariant 2: no two allocated blocks overlap.
    spans = sorted((b, b + (1 << o)) for b, o in live)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2

    # Invariant 3: frame conservation.
    allocated = sum(1 << o for _, o in live)
    assert buddy.free_frames() + allocated == total

    # Invariant 4: free blocks don't overlap allocations.
    for order, base in buddy.free_blocks():
        span = (base, base + (1 << order))
        for s, e in spans:
            assert span[1] <= s or e <= span[0]


@given(total=st.integers(min_value=1, max_value=256))
@settings(max_examples=60, deadline=None)
def test_full_drain_and_refill(total):
    buddy = BuddyAllocator(total)
    frames = []
    while True:
        try:
            frames.append(buddy.alloc_page())
        except OutOfMemoryError:
            break
    assert len(frames) == total
    assert len(set(frames)) == total
    assert set(frames) == set(range(total))
    for frame in frames:
        buddy.free(frame)
    assert buddy.free_frames() == total


@given(total=st.integers(min_value=2, max_value=256), seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_alloc_free_alloc_reuses_memory(total, seed):
    import random

    rng = random.Random(seed)
    buddy = BuddyAllocator(total)
    frames = [buddy.alloc_page() for _ in range(total)]
    rng.shuffle(frames)
    for frame in frames[: total // 2]:
        buddy.free(frame)
    # We can re-allocate exactly as many frames as we freed.
    for _ in range(total // 2):
        buddy.alloc_page()
    assert buddy.free_frames() == 0
