"""Property-based tests: every refresh scheduler covers every bank.

The data-integrity invariant behind all of Section 5.1: whatever the
scheduling policy, each bank must receive its full quota of refresh
commands within each retention window.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.dram_configs import DramOrganization
from repro.config.system_configs import default_system_config
from repro.core.engine import Engine
from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.refresh import make_scheduler
from repro.dram.request import MemoryRequest, RequestType
from repro.dram.timing import DramTiming

SCHEDULER_NAMES = ["all_bank", "per_bank", "same_bank", "ooo_per_bank", "adaptive"]


def build(name, refresh_scale, density):
    config = default_system_config(refresh_scale=refresh_scale, density_gbit=density)
    timing = DramTiming.from_config(config)
    engine = Engine()
    org = DramOrganization()
    mapping = AddressMapping(org, total_rows_per_bank=16)
    mc = MemoryController(engine, timing, org, mapping)
    scheduler = make_scheduler(name)
    scheduler.attach(mc, engine, timing)
    return engine, timing, mc, scheduler


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
@given(
    refresh_scale=st.sampled_from([512, 1024, 2048]),
    density=st.sampled_from([16, 24, 32]),
)
@settings(max_examples=8, deadline=None)
def test_every_bank_fully_refreshed_each_window(name, refresh_scale, density):
    engine, timing, mc, scheduler = build(name, refresh_scale, density)
    scheduler.start()
    windows = 2
    engine.run_until(windows * timing.trefw - 1)
    required = timing.refreshes_per_bank * windows
    for flat in range(16):
        units = scheduler.stats.per_bank_commands.get(flat, 0)
        # Row-units per command differ for adaptive 4x, so compare command
        # counts only for the uniform schedulers.
        assert units >= required - 2, (
            f"{name}: bank {flat} got {units} < {required} commands"
        )


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
@given(seed=st.integers(0, 2**16))
@settings(max_examples=5, deadline=None)
def test_coverage_holds_under_demand_traffic(name, seed):
    """Demand requests racing with refreshes must not starve the schedule."""
    import random

    engine, timing, mc, scheduler = build(name, 1024, 32)
    rng = random.Random(seed)

    def traffic():
        frame = rng.randrange(mc.mapping.total_frames)
        address = mc.mapping.frame_offset_to_address(frame, 0)
        mc.enqueue(
            MemoryRequest(
                RequestType.READ, address, mc.mapping.address_to_coordinate(address)
            )
        )
        engine.schedule(rng.randrange(50, 500), traffic)

    engine.schedule(0, traffic)
    scheduler.start()
    engine.run_until(timing.trefw - 1)
    required = timing.refreshes_per_bank
    for flat in range(16):
        assert scheduler.stats.per_bank_commands.get(flat, 0) >= required - 1


@given(refresh_scale=st.sampled_from([256, 512, 1024]))
@settings(max_examples=6, deadline=None)
def test_same_bank_stretch_prediction_is_exact(refresh_scale):
    """stretch_bank_at must agree with what the hardware actually refreshes."""
    engine, timing, mc, scheduler = build("same_bank", refresh_scale, 32)
    mismatches = []
    original = mc.refresh_bank

    def checked(channel, rank, bank, trfc, subarray=None):
        flat = mc.mapping.flat_bank_index(channel, rank, bank)
        predicted = scheduler.stretch_bank_at(engine.now)
        if predicted != flat:
            mismatches.append((engine.now, predicted, flat))
        return original(channel, rank, bank, trfc, subarray=subarray)

    mc.refresh_bank = checked
    scheduler.start()
    engine.run_until(timing.trefw - 1)
    assert not mismatches
