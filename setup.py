"""Thin setup.py so legacy editable installs work without the wheel package
(this environment is offline; pyproject.toml carries the real metadata)."""

from setuptools import setup

setup()
