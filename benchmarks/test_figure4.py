"""Benchmark: regenerate Figure 4 (tRFC vs bank-level parallelism).

Paper: with refresh eliminated, confining tasks to >= 4 banks/rank still
beats the all-bank baseline at 16Gb+; at 8Gb confinement loses.
"""

from repro.experiments import figure4


def test_figure4(benchmark, runner, save_table):
    rows = benchmark.pedantic(
        lambda: figure4.run(runner), rounds=1, iterations=1
    )
    save_table("figure4", figure4.format_results(rows))

    by_key = {(r.density_gbit, r.banks_per_task): r.improvement for r in rows}
    # Unconfined no-refresh is the best case at every density.
    for density in (8, 16, 24, 32):
        for banks in (4, 2, 1):
            assert by_key[(density, 8)] >= by_key[(density, banks)] - 0.02
    # More confinement -> less improvement (BLP cost), at every density.
    for density in (8, 16, 24, 32):
        assert by_key[(density, 4)] >= by_key[(density, 1)] - 0.02
    # At 32Gb, even 4-bank confinement beats the all-bank baseline.
    assert by_key[(32, 4)] > 0
