"""Benchmark: extensions beyond the paper's main line.

* **Subarray-granularity refresh** (Section 7: "exposing the sub-array
  structures ... we expect our co-design to yield even better performance"):
  SALP-style hardware where a per-bank refresh blocks only one subarray.
* **Elastic Refresh** (Stuecheli et al., MICRO'10, Section 7 related work):
  postponement helps low-intensity workloads, not memory-intensive ones.
* **Refresh energy** across schemes: rescheduling refreshes (the co-design)
  does not change refresh energy; it only hides the latency.
"""

from repro.config.dram_configs import DramOrganization
from repro.experiments.report import format_percent, format_table


def test_subarray_extension(benchmark, runner, save_table):
    salp_org = DramOrganization(subarrays_per_bank=8)

    def sweep():
        rows = []
        for workload in ("WL-1", "WL-5", "WL-8"):
            base = runner.run(workload, "all_bank").hmean_ipc
            for scheme, org in (
                ("per_bank", None),
                ("per_bank+subarray", salp_org),
                ("codesign", None),
                ("codesign+subarray", salp_org),
            ):
                kwargs = {"organization": org} if org else {}
                value = runner.run(
                    workload, scheme.split("+")[0], **kwargs
                ).hmean_ipc
                rows.append([workload, scheme, format_percent(value / base - 1)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_table(
        "ext_subarray",
        format_table(
            ["workload", "scheme", "IPC vs all-bank"],
            rows,
            title="Extension: subarray-granularity refresh (Section 7)",
        ),
    )
    # Subarray support never hurts (it only unblocks accesses), and it
    # visibly helps the baseline per-bank scheme — under the co-design the
    # refresh stalls are already gone, so there is little left to recover.
    # (tolerance covers run-to-run stochastic variation of the mixes)
    by_row = {(r[0], r[1]): float(r[2].rstrip("%")) for r in rows}
    for workload in ("WL-1", "WL-5", "WL-8"):
        assert by_row[(workload, "codesign+subarray")] >= (
            by_row[(workload, "codesign")] - 3.0
        )
        assert by_row[(workload, "per_bank+subarray")] >= (
            by_row[(workload, "per_bank")] - 3.0
        )


def test_elastic_refresh_extension(benchmark, runner, save_table):
    def sweep():
        rows = []
        for workload in ("WL-1", "WL-2"):
            base = runner.run(workload, "all_bank").hmean_ipc
            elastic = runner.run(workload, "elastic").hmean_ipc
            rows.append([workload, format_percent(elastic / base - 1)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_table(
        "ext_elastic",
        format_table(
            ["workload", "elastic vs all-bank"],
            rows,
            title="Extension: Elastic Refresh (MICRO'10 baseline)",
        ),
    )
    # Helps somewhere, and never catastrophically hurts.
    gains = [float(r[1].strip("%+")) for r in rows]
    assert max(gains) > -1.0
    assert all(g > -10.0 for g in gains)


def test_refresh_energy_across_schemes(benchmark, runner, save_table):
    def sweep():
        rows = []
        for scheme in ("no_refresh", "all_bank", "per_bank", "codesign"):
            result = runner.run("WL-5", scheme)
            energy = result.energy
            rows.append(
                [
                    scheme,
                    f"{energy.total_mj:.3f}",
                    f"{energy.refresh_mj:.4f}",
                    f"{energy.refresh_fraction:.1%}",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_table(
        "ext_energy",
        format_table(
            ["scheme", "total mJ", "refresh mJ", "refresh %"],
            rows,
            title="Extension: DRAM energy by refresh scheme (WL-5, 32Gb)",
        ),
    )
    by_scheme = {r[0]: float(r[2]) for r in rows}
    assert by_scheme["no_refresh"] == 0.0
    assert by_scheme["codesign"] > 0
    # The co-design hides latency; it does not skip refresh work.
    assert abs(by_scheme["codesign"] - by_scheme["per_bank"]) <= 0.35 * max(
        by_scheme["per_bank"], 1e-9
    )
