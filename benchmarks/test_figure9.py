"""Benchmark: regenerate Figure 9 (schedule rotation, as data).

Asserts the figure's defining property: under the co-design, zero
dispatched quanta conflict with the ongoing refresh stretch; under
refresh-oblivious scheduling on the same hardware, nearly all do.
"""

from repro.experiments import figure9


def test_figure9(benchmark, save_table):
    results = benchmark.pedantic(lambda: figure9.run(), rounds=1, iterations=1)
    save_table("figure9", figure9.format_results(results))

    by_scenario = {r.scenario: r for r in results}
    assert by_scenario["codesign"].conflict_free_fraction == 1.0
    assert by_scenario["same_bank_hw_only"].conflict_free_fraction < 0.2
    assert by_scenario["codesign"].quanta >= 16
