"""Benchmark: ablation studies (DESIGN.md Section 5).

Not a paper figure — isolates each co-design ingredient's contribution and
sweeps eta_thresh and banks-per-task.
"""

from repro.experiments import ablations


def test_ablation_components(benchmark, runner, save_table):
    rows = benchmark.pedantic(
        lambda: ablations.component_study(runner, workload="WL-6"),
        rounds=1,
        iterations=1,
    )
    save_table("ablation_components", ablations.format_results(rows))

    by_variant = {r.variant: r.improvement for r in rows}
    full = by_variant["full co-design (soft)"]
    # Neither half of the co-design alone reaches the full combination.
    assert full > by_variant["same-bank schedule only"]
    assert full > by_variant["partitioning only"]
    # Best-effort mode matches the plain co-design when nothing spills.
    assert abs(by_variant["co-design, best effort"] - full) < 0.03


def test_ablation_banks_sweep(benchmark, runner, save_table):
    rows = benchmark.pedantic(
        lambda: ablations.banks_sweep(runner, workload="WL-6"),
        rounds=1,
        iterations=1,
    )
    save_table("ablation_banks", ablations.format_results(rows))
    by_banks = {r.variant: r.improvement for r in rows}
    # Paper footnote 11: 6 banks is the dual-core 1:4 sweet spot.
    assert by_banks["6 banks"] >= by_banks["4 banks"] >= by_banks["2 banks"] - 0.02


def test_ablation_eta_sweep(benchmark, runner, save_table):
    rows = benchmark.pedantic(
        lambda: ablations.eta_sweep(runner, workload="WL-6"),
        rounds=1,
        iterations=1,
    )
    save_table("ablation_eta", ablations.format_results(rows))
    by_eta = {r.variant: r.improvement for r in rows}
    # eta=1 disables refresh awareness; large eta recovers the full gain.
    assert by_eta["eta=8"] >= by_eta["eta=1"]
