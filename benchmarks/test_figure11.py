"""Benchmark: regenerate Figure 11 (average memory access latency).

Paper: the co-design cuts average memory latency because scheduled tasks'
demand requests never queue behind a tRFC.
"""

from repro.experiments import figure11


def test_figure11(benchmark, runner, save_table):
    rows = benchmark.pedantic(
        lambda: figure11.run(runner), rounds=1, iterations=1
    )
    save_table("figure11", figure11.format_results(rows))

    by_key = {(r.workload, r.scheme): r.avg_latency_mem_cycles for r in rows}
    workloads = {r.workload for r in rows}
    memory_bound = [w for w in workloads if w not in ("WL-2", "WL-3", "WL-4")]
    better = sum(
        1 for w in memory_bound
        if by_key[(w, "codesign")] < by_key[(w, "all_bank")]
    )
    # The co-design reduces latency on (at least almost) every
    # memory-intensive workload.
    assert better >= len(memory_bound) - 1
