"""Benchmark: regenerate Figure 10 (the headline co-design result).

Paper averages vs all-bank refresh: co-design +16.2%/+12.1%/+9.03% and
per-bank +9.9%/+6.7%/+6.5% at 32/24/16Gb.  The asserted *shape*: both
schemes win, the co-design beats per-bank, and the margin grows with
density.
"""

from repro.experiments import figure10


def test_figure10(benchmark, runner, save_table):
    rows = benchmark.pedantic(
        lambda: figure10.run(runner), rounds=1, iterations=1
    )
    save_table("figure10", figure10.format_results(rows))

    avg = figure10.averages(rows)
    for density in (16, 24, 32):
        assert avg[(density, "codesign")] > 0
        assert avg[(density, "per_bank")] > 0
    # Co-design beats per-bank at the high densities the paper targets.
    assert avg[(32, "codesign")] > avg[(32, "per_bank")]
    assert avg[(24, "codesign")] > avg[(24, "per_bank")]
    # Improvements grow with density.
    assert avg[(32, "codesign")] > avg[(24, "codesign")] > avg[(16, "codesign")]

    # Per-workload claims (Section 6.2): the low-MPKI mixes gain little;
    # WL-2 (povray, MPKI 0.05) gains essentially nothing.
    low = [
        r.improvement
        for r in rows
        if r.workload in ("WL-2", "WL-3", "WL-4") and r.scheme == "codesign"
    ]
    assert all(abs(v) < 0.08 for v in low)
    wl2 = [
        r.improvement
        for r in rows
        if r.workload == "WL-2" and r.scheme == "codesign"
    ]
    assert all(abs(v) < 0.01 for v in wl2)
