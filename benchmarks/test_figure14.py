"""Benchmark: regenerate Figure 14 (comparison with prior proposals, 32Gb).

Paper averages vs all-bank: OOO per-bank +9.5% (marginal over per-bank),
AR +1.9%, co-design ahead of both (+6.1% over OOO per-bank, +14.6% over
AR).
"""

from repro.experiments import figure14


def test_figure14(benchmark, runner, save_table):
    rows = benchmark.pedantic(
        lambda: figure14.run(runner), rounds=1, iterations=1
    )
    save_table("figure14", figure14.format_results(rows))

    avg = figure14.averages(rows)
    # Everything beats (or at least matches) the all-bank baseline.
    for scheme, value in avg.items():
        assert value > -0.02, scheme
    # OOO per-bank is only marginally better than per-bank (Section 6.5).
    assert abs(avg["ooo_per_bank"] - avg["per_bank"]) < 0.05
    # AR is the weakest of the per-bank-or-better alternatives.
    assert avg["adaptive"] <= avg["per_bank"] + 0.01
    # The co-design leads the field.
    assert avg["codesign"] >= max(
        avg["per_bank"], avg["ooo_per_bank"], avg["adaptive"]
    ) - 0.005
