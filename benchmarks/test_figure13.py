"""Benchmark: regenerate Figure 13 (32 ms retention, > 85C operation).

Paper averages vs all-bank at 32ms: co-design +34.1%/+23.4%/+16.4% at
32/24/16Gb; +6.7%/+6.3%/+3.9% over per-bank.  Shape under test: all gains
grow versus the 64ms case, and the ordering is preserved.
"""

from repro.experiments import figure10, figure13


def test_figure13(benchmark, runner, save_table):
    rows = benchmark.pedantic(
        lambda: figure13.run(runner), rounds=1, iterations=1
    )
    save_table("figure13", figure13.format_results(rows))

    avg = figure13.averages(rows)
    for density in (16, 24, 32):
        assert avg[(density, "codesign")] > 0
        assert avg[(density, "codesign")] >= avg[(density, "per_bank")] - 0.01
    assert avg[(32, "codesign")] > avg[(16, "codesign")]

    # The 32ms gains exceed the 64ms gains (Figure 10 vs Figure 13).
    rows64 = figure10.run(runner)
    avg64 = figure10.averages(rows64)
    assert avg[(32, "codesign")] > avg64[(32, "codesign")]
