"""Benchmark: regenerate Figure 5 (single-bank capacity feasibility).

Paper: at 8Gb ~68% of the average footprint fits one bank, rising with
density (our absolute level is higher because our SPEC footprint set
skews below the bank size; the monotone shape is the claim under test).
"""

from repro.experiments import figure5


def test_figure5(benchmark, save_table):
    rows = benchmark.pedantic(lambda: figure5.run(), rounds=1, iterations=1)
    save_table("figure5", figure5.format_results(rows))

    avg = figure5.averages(rows)
    assert avg[8] <= avg[16] <= avg[24] <= avg[32]
    assert avg[32] > 0.9  # nearly everything fits a 2GB bank
    # Large-footprint benchmarks dominate the shortfall at 8Gb.
    mcf = {r.density_gbit: r.fraction_on_bank0 for r in rows if r.benchmark == "mcf"}
    assert mcf[8] < 0.5
    assert mcf[32] == 1.0
