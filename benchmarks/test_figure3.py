"""Benchmark: regenerate Figure 3 (refresh-induced IPC degradation).

Paper: all-bank degrades 5.4% -> 17.2% (8 -> 32Gb) at 64ms and up to
34.8% at 32ms; per-bank 0.24% -> 9.8% and up to 20.3%.
"""

from repro.experiments import figure3


def test_figure3(benchmark, runner, save_table):
    rows = benchmark.pedantic(
        lambda: figure3.run(runner), rounds=1, iterations=1
    )
    save_table("figure3", figure3.format_results(rows))

    by_key = {(r.density_gbit, r.trefw_ms, r.scheme): r.degradation for r in rows}
    # Degradation grows monotonically with density for all-bank at 64ms.
    series = [by_key[(d, 64, "all_bank")] for d in (8, 16, 24, 32)]
    assert series == sorted(series)
    # Per-bank is always gentler than all-bank.
    for density in (8, 16, 24, 32):
        for trefw in (64, 32):
            assert by_key[(density, trefw, "per_bank")] <= by_key[
                (density, trefw, "all_bank")
            ]
    # 32ms roughly doubles the pain at 32Gb.
    assert by_key[(32, 32, "all_bank")] > 1.5 * by_key[(32, 64, "all_bank")]
