"""Shared fixtures for the benchmark harness.

One :class:`SweepRunner` is shared across every figure benchmark so runs
common to several figures (e.g. Figure 10's sweep feeds Figure 11's
latency view and Figure 14's 32Gb comparison) execute once.

Each benchmark writes its formatted table to ``benchmarks/results/`` and
prints it (visible with ``pytest -s`` / in the benchmark log).

Profiles: default is quick; ``REPRO_PROFILE=full`` runs longer windows at
finer refresh scaling.

The runner uses the persistent disk cache (``~/.cache/repro`` or
``REPRO_CACHE_DIR``) and fans cache misses out over ``REPRO_JOBS``
worker processes, so a repeated benchmark run with an unchanged config
executes zero simulations.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.runner import SweepRunner, active_profile

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner():
    return SweepRunner(active_profile())


@pytest.fixture(scope="session")
def save_table():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
