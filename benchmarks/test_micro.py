"""Micro-benchmarks: raw throughput of the simulator's hot components.

Unlike the figure benchmarks (one-shot experiment regenerations), these
use pytest-benchmark conventionally — many rounds of small operations —
to track the simulator's own performance over time.
"""

import random

from repro.bench import kernels
from repro.config.dram_configs import DramOrganization
from repro.config.system_configs import default_system_config
from repro.core.engine import Engine
from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest, RequestType
from repro.dram.timing import DramTiming
from repro.os.buddy import BuddyAllocator
from repro.os.page import PhysicalMemory
from repro.os.partition import PartitioningAllocator, PartitionPolicy
from repro.os.task import Task


def test_engine_event_throughput(benchmark):
    def run_events():
        engine = Engine()
        counter = [0]

        def tick():
            counter[0] += 1
            if counter[0] < 5000:
                engine.schedule(1, tick)

        engine.schedule(0, tick)
        engine.run()
        return counter[0]

    assert benchmark(run_events) == 5000


def test_controller_request_throughput(benchmark):
    config = default_system_config(refresh_scale=1024)
    timing = DramTiming.from_config(config)
    org = DramOrganization()
    mapping = AddressMapping(org, total_rows_per_bank=64)
    rng = random.Random(7)
    addresses = [
        mapping.frame_offset_to_address(
            rng.randrange(mapping.total_frames), rng.randrange(64) * 64
        )
        for _ in range(2000)
    ]

    def run_requests():
        engine = Engine()
        mc = MemoryController(engine, timing, org, mapping)
        done = []
        for address in addresses:
            mc.enqueue(
                MemoryRequest(
                    RequestType.READ, address,
                    mapping.address_to_coordinate(address),
                    on_complete=done.append,
                )
            )
        engine.run_until(50_000_000)
        return len(done)

    assert benchmark(run_requests) == 2000


def test_buddy_alloc_free_throughput(benchmark):
    def churn():
        buddy = BuddyAllocator(4096)
        frames = [buddy.alloc_page() for _ in range(4096)]
        for frame in frames:
            buddy.free(frame)
        return buddy.free_frames()

    assert benchmark(churn) == 4096


def test_partition_allocator_throughput(benchmark):
    org = DramOrganization()
    mapping = AddressMapping(org, total_rows_per_bank=256)

    def churn():
        memory = PhysicalMemory(mapping)
        allocator = PartitioningAllocator(memory, PartitionPolicy.SOFT)
        task = Task("bench", None, possible_banks=frozenset(range(0, 16, 2)))
        allocated = allocator.alloc_footprint(task, 2000)
        allocator.free_task(task)
        return allocated

    assert benchmark(churn) == 2000


def test_engine_handle_churn_throughput(benchmark):
    """Cancellable handles: event pool reuse + stub compaction."""
    assert benchmark(kernels.engine_handle_churn) == 2500


def test_engine_far_future_mix_throughput(benchmark):
    """Mixed near/far delays exercising the bucket -> heap spill path."""
    assert benchmark(kernels.engine_far_future_mix) == 5000


def test_address_decode_throughput(benchmark):
    """Byte-address decode through the memoised frame tables."""
    assert benchmark(kernels.address_decode) == 20_000


def test_refresh_all_bank_tick_rate(benchmark):
    """All-bank refresh cadence incl. batched rank wake-ups."""
    assert benchmark(kernels.refresh_schedule_ticks) > 0


def test_core_compute_fast_forward_rate(benchmark):
    """Compute-gap issue loop: folded gap chains, one event per chain."""
    assert benchmark(kernels.core_compute_fast_forward) > 0


def test_full_quantum_simulation_rate(benchmark):
    """End-to-end cost of one scheduling quantum of WL-6 under codesign."""
    from repro.core.simulator import build_system

    def one_quantum():
        system = build_system("WL-6", "codesign", refresh_scale=2048)
        result = system.run(num_windows=0.25, warmup_windows=0.0)
        return result.reads_completed

    assert benchmark(one_quantum) >= 0


def test_checkpoint_roundtrip_rate(benchmark):
    """Per-barrier checkpoint cost: snapshot -> JSON -> fresh-system
    restore at a mid-run barrier of WL-6 codesign."""
    assert benchmark(kernels.checkpoint_roundtrip) > 0
