"""Benchmark: regenerate Figure 15 (cores x consolidation sensitivity).

Paper: the co-design beats all-bank and per-bank at every (cores, ratio)
point; 1:2 gains are smaller than 1:4 (tasks keep only 4 banks/rank).
"""

import os

from repro.experiments import figure15


def test_figure15(benchmark, runner, save_table):
    workloads = (
        ("WL-1", "WL-5", "WL-6", "WL-8")
        if os.environ.get("REPRO_PROFILE") == "full"
        else ("WL-5", "WL-6")
    )
    rows = benchmark.pedantic(
        lambda: figure15.run(runner, workloads=workloads), rounds=1, iterations=1
    )
    save_table("figure15", figure15.format_results(rows))

    by_key = {
        (r.num_cores, r.ratio, r.density_gbit, r.scheme): r.improvement
        for r in rows
    }
    # Co-design positive at every sensitivity point and density.
    for cores, ratio in ((2, 2), (2, 4), (4, 2), (4, 4)):
        for density in (16, 24, 32):
            assert by_key[(cores, ratio, density, "codesign")] > -0.02, (
                cores, ratio, density,
            )
    # At 32Gb, the dual-core 1:4 sweet spot beats 1:2 (more banks/task).
    assert by_key[(2, 4, 32, "codesign")] > by_key[(2, 2, 32, "codesign")]
