"""Benchmark: regenerate Figure 12 (DDR4 Fine Granularity Refresh).

Paper: DDR4 2x/4x modes fare *worse* than 1x (tRFC shrinks sub-linearly),
while the co-design masks the refresh overhead entirely.
"""

from repro.experiments import figure12


def test_figure12(benchmark, runner, save_table):
    rows = benchmark.pedantic(
        lambda: figure12.run(runner), rounds=1, iterations=1
    )
    save_table("figure12", figure12.format_results(rows))

    def avg(scheme):
        values = [r.improvement for r in rows if r.scheme == scheme]
        return sum(values) / len(values)

    # Finer FGR modes hurt on average (normalized to 1x = 0).
    assert avg("ddr4_2x") <= 0.01
    assert avg("ddr4_4x") <= avg("ddr4_2x") + 0.01
    # The co-design wins over every FGR mode.
    assert avg("codesign") > avg("ddr4_2x")
    assert avg("codesign") > avg("ddr4_4x")
    assert avg("codesign") > 0
