#!/usr/bin/env python3
"""Quickstart: compare DRAM refresh strategies on one consolidated workload.

Runs the paper's WL-6 mix (4x mcf + 4x povray on 2 cores, 1:4
consolidation) under the main scenarios and prints the IPC improvement of
each over the all-bank-refresh baseline.

Usage:  python examples/quickstart.py [WL-name]
"""

import sys

from repro import api
from repro.experiments.report import format_percent, format_table

SCENARIOS = ["no_refresh", "all_bank", "per_bank", "codesign"]


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "WL-6"
    print(f"Simulating {workload} under {', '.join(SCENARIOS)} (32Gb, 64ms)...")
    results = {
        r.scenario: r
        for r in api.sweep([workload], SCENARIOS, num_windows=1.0).values()
    }

    baseline = results["all_bank"].hmean_ipc
    rows = []
    for name in SCENARIOS:
        r = results[name]
        rows.append(
            [
                name,
                f"{r.hmean_ipc:.4f}",
                format_percent(r.hmean_ipc / baseline - 1.0),
                f"{r.avg_read_latency_mem_cycles:.1f}",
                f"{r.refresh_stall_fraction:.2%}",
            ]
        )
    print(
        format_table(
            ["scenario", "hmean IPC", "vs all-bank", "mem latency", "reads stalled"],
            rows,
        )
    )
    codesign = results["codesign"]
    print(
        f"\nrefresh-aware scheduler picks: {codesign.scheduler_clean_picks} clean, "
        f"{codesign.scheduler_fallback_picks} fairness fallbacks"
    )


if __name__ == "__main__":
    main()
