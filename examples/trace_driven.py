#!/usr/bin/env python3
"""Trace-driven mode: drive the DRAM model through a real cache hierarchy.

Builds two synthetic traces (a streaming walk and a strided walk that
thrashes the L2), replays them through 32KB-L1/1MB-L2 hierarchies, and
runs the resulting LLC miss streams against the full memory system under
per-bank refresh — demonstrating the alternative workload front-end.
"""

from repro.config.system_configs import default_system_config
from repro.core.system import System, scenario
from repro.cpu.hierarchy import CacheHierarchy
from repro.experiments.report import format_table
from repro.units import MB
from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.trace import TraceWorkload, sequential_trace, strided_trace


def main() -> None:
    # Mild capacity scaling so each trace's span maps onto enough physical
    # pages to overflow the 1MB L2 (heavy scaling would alias the virtual
    # span onto a handful of frames and everything would hit in L1).
    config = default_system_config(capacity_scale=16, refresh_scale=512)
    # Placeholder specs supply name/footprint; the trace workloads replace
    # the statistical models after construction.
    specs = [
        BenchmarkSpec("stream_trace", mpki=10.0, footprint_bytes=32 * MB),
        BenchmarkSpec("stride_trace", mpki=10.0, footprint_bytes=32 * MB),
    ]
    system = System(config, specs, scenario("per_bank"), workload_name="traces")

    span = 32 * MB // config.capacity_scale  # 2MB of distinct addresses
    system.tasks[0].workload = TraceWorkload(
        "stream",
        sequential_trace(span // 64, stride_bytes=64, write_every=3),
        CacheHierarchy(config.caches, core_id=0),
        mlp=8,
    )
    system.tasks[1].workload = TraceWorkload(
        "stride",
        strided_trace(span // 64, stride_bytes=4096 + 64, span_bytes=span),
        CacheHierarchy(config.caches, core_id=1),
        mlp=4,
    )

    result = system.run(num_windows=1.0, warmup_windows=0.1)
    rows = [
        [t.name, f"{t.ipc:.4f}", t.reads_completed,
         f"{t.avg_read_latency_cycles / 4:.1f}"]
        for t in result.tasks
    ]
    print(
        format_table(
            ["trace", "IPC", "LLC misses to DRAM", "avg latency (mem cyc)"],
            rows,
            title="Trace-driven workloads through the cache hierarchy",
        )
    )
    for task in system.tasks:
        h = task.workload.hierarchy
        print(
            f"  {task.name}: L1 miss rate {h.l1.stats.miss_rate:.1%}, "
            f"L2 miss rate {h.l2.stats.miss_rate:.1%}, "
            f"replayed {task.workload.records_replayed} records"
        )


if __name__ == "__main__":
    main()
