#!/usr/bin/env python3
"""Consolidation study: does the co-design hold up as you pack more tasks
per core (the virtualized-server scenario that motivates the paper)?

Sweeps consolidation ratios 1:2 / 1:4 / 1:8 on a dual-core system and
reports the co-design's improvement over all-bank and per-bank refresh.
Higher consolidation leaves fewer banks per task (Section 6.6), trading
bank-level parallelism for refresh immunity.
"""

from repro import api
from repro.experiments.report import format_percent, format_table
from repro.workloads.mixes import scaled_mix


def main() -> None:
    rows = []
    for ratio in (2, 4, 8):
        num_tasks = 2 * ratio
        specs = scaled_mix("WL-6", num_tasks)
        results = {
            name: api.run(specs, name, num_windows=1.0)
            for name in ("all_bank", "per_bank", "codesign")
        }
        all_bank = results["all_bank"].hmean_ipc
        per_bank = results["per_bank"].hmean_ipc
        codesign = results["codesign"].hmean_ipc
        rows.append(
            [
                f"1:{ratio}",
                num_tasks,
                f"{codesign:.4f}",
                format_percent(codesign / all_bank - 1.0),
                format_percent(codesign / per_bank - 1.0),
            ]
        )
    print(
        format_table(
            ["ratio", "tasks", "co-design IPC", "vs all-bank", "vs per-bank"],
            rows,
            title="Co-design vs consolidation ratio (WL-6 mix, dual-core, 32Gb)",
        )
    )


if __name__ == "__main__":
    main()
