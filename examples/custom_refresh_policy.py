#!/usr/bin/env python3
"""Extending the library: plug in a custom refresh scheduler.

Implements a "lazy half-rate" refresh scheduler (refreshing at half the
required rate — as a *what-if* for future DRAM with longer retention) by
subclassing :class:`repro.dram.refresh.base.RefreshScheduler`, registers it
in the scheduler registry, and compares it against the standard schemes.

This mirrors how RAIDR-style retention-aware proposals would slot into the
framework (they skip refreshes for strong rows — here approximated by a
uniform rate cut).
"""

from repro import api
from repro.core.system import SCENARIOS, Scenario
from repro.dram.refresh import SCHEDULERS
from repro.dram.refresh.base import RefreshScheduler
from repro.experiments.report import format_percent, format_table


class LazyHalfRateRefresh(RefreshScheduler):
    """Per-bank round-robin at half the standard command rate."""

    name = "lazy_half"

    def __init__(self):
        super().__init__()
        self._next_flat = 0

    def start(self) -> None:
        self.engine.schedule(0, self._fire)

    def _fire(self) -> None:
        mc = self.controller
        channel, rank, bank = mc.mapping.unflatten_bank_index(self._next_flat)
        mc.refresh_bank(channel, rank, bank, self.timing.trfc_pb)
        self.stats.record(self._next_flat)
        self._next_flat = (self._next_flat + 1) % mc.org.total_banks
        # Half rate: double the interval.  (Data integrity would need
        # retention-time profiling, as RAIDR does — see Section 7.)
        self.engine.schedule(2 * self.timing.trefi_pb, self._fire)


def main() -> None:
    # Register the custom scheduler and a scenario that uses it.
    SCHEDULERS["lazy_half"] = LazyHalfRateRefresh
    SCENARIOS["lazy_half"] = Scenario("lazy_half", "lazy_half")

    rows = []
    baseline = None
    for name in ("all_bank", "per_bank", "lazy_half", "codesign"):
        result = api.run("WL-8", name, num_windows=1.0)
        if baseline is None or name == "all_bank":
            baseline = result.hmean_ipc
        rows.append(
            [
                name,
                f"{result.hmean_ipc:.4f}",
                format_percent(result.hmean_ipc / baseline - 1.0),
                result.refresh_commands,
            ]
        )
    print(
        format_table(
            ["scheme", "hmean IPC", "vs all-bank", "refresh cmds"],
            rows,
            title="Custom refresh scheduler (WL-8, 32Gb)",
        )
    )


if __name__ == "__main__":
    main()
