#!/usr/bin/env python3
"""Visualize the co-design in action (the paper's Figure 9, in ASCII).

Prints the per-quantum schedule of each core alongside the bank being
refreshed by the same-bank schedule.  Under the refresh-aware scheduler,
no dispatched task ever has data in the refreshed bank (no ``*`` marks);
under plain CFS on the same hardware, almost every quantum conflicts.
"""

from repro.core.simulator import build_system
from repro.core.trace import ScheduleTracer


def show(scenario: str) -> None:
    system = build_system("WL-1", scenario, refresh_scale=512)
    tracer = ScheduleTracer(system)
    system.run(num_windows=1.0, warmup_windows=0.0)
    print(f"--- {scenario} "
          f"(conflict-free quanta: {tracer.conflict_free_fraction():.0%}) ---")
    print(tracer.timeline(max_quanta=16))
    print()


def main() -> None:
    print("WL-1 (8x mcf) on a dual-core, 32Gb, same-bank refresh hardware.\n")
    show("codesign")
    show("same_bank_hw_only")
    print("The co-design rotates tasks so the refreshed bank is always one")
    print("nobody scheduled is using; refresh-oblivious CFS conflicts on")
    print("nearly every quantum.")


if __name__ == "__main__":
    main()
