#!/usr/bin/env python3
"""Capacity planning with the bank-aware allocator (Figure 5 style).

Given a set of applications, checks for each DRAM density whether their
footprints fit inside a bank partition (and how much spills), using the
real Algorithm 2 allocator — the feasibility question of Section 3.3.
"""

from repro.config.system_configs import default_system_config
from repro.dram.address import AddressMapping
from repro.experiments.report import format_table
from repro.os.codesign import assign_bank_vectors
from repro.os.page import PhysicalMemory
from repro.os.partition import PartitioningAllocator, PartitionPolicy
from repro.os.task import Task
from repro.workloads.mixes import workload_mix


def main() -> None:
    workload = "WL-10"  # mcf(4), bwaves(2), povray(2): 8.7GB total
    specs = workload_mix(workload)
    rows = []
    for density in (8, 16, 24, 32):
        config = default_system_config(density_gbit=density)
        rows_per_bank = max(
            1, config.bank_capacity_bytes // config.organization.row_size_bytes
        )
        mapping = AddressMapping(config.organization, rows_per_bank)
        memory = PhysicalMemory(mapping)
        allocator = PartitioningAllocator(memory, PartitionPolicy.SOFT)
        vectors = assign_bank_vectors(len(specs), 2, config.organization)

        total_pages = spilled = 0
        for spec, banks in zip(specs, vectors):
            task = Task(spec.name, workload=None, possible_banks=banks)
            pages = max(
                1, config.scale_footprint(spec.footprint_bytes) // mapping.page_bytes
            )
            allocator.alloc_footprint(task, pages)
            total_pages += len(task.frames)
            spilled += sum(
                count
                for bank, count in task.pages_per_bank.items()
                if bank not in banks
            )
        rows.append(
            [
                f"{density}Gb",
                mapping.total_frames,
                total_pages,
                spilled,
                f"{spilled / total_pages:.1%}" if total_pages else "-",
            ]
        )
    print(
        format_table(
            ["density", "capacity (pages)", "allocated", "spilled", "spill %"],
            rows,
            title=f"Partition capacity check for {workload} (6 banks/rank/task)",
        )
    )
    print("\nSpilled pages make the refresh-aware scheduler fall back to")
    print("best-effort picks (Section 5.4.1) — see codesign_best_effort.")


if __name__ == "__main__":
    main()
