"""repro — reproduction of "Hardware-Software Co-design to Mitigate DRAM
Refresh Overheads: A Case for Refresh-Aware Process Scheduling"
(Kotra et al., ASPLOS 2017).

Public API
----------
:func:`run_simulation`
    Simulate one workload mix under one scenario; returns a
    :class:`~repro.core.results.RunResult`.
:func:`compare_scenarios`
    Run the same workload under several refresh/OS scenarios.
:func:`default_system_config`
    The paper's Table 1 configuration with simulation scaling applied.
:func:`make_run_spec` / :func:`run_spec`
    The serializable run pipeline: resolve a workload/scenario/config
    into a pure-data :class:`~repro.core.runspec.RunSpec`, then execute
    it deterministically (the experiment layer caches and parallelizes
    on top of this).
:class:`~repro.telemetry.Telemetry` / :func:`build_system_from_spec`
    The observability layer: attach event sinks (ring buffer, JSONL,
    Chrome trace) and snapshot metrics — see ``docs/OBSERVABILITY.md``.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.config.system_configs import SystemConfig, default_system_config
from repro.core.results import RunResult, TaskResult
from repro.core.runspec import RunSpec
from repro.core.simulator import (
    available_scenarios,
    available_workloads,
    build_system,
    build_system_from_spec,
    compare_scenarios,
    make_run_spec,
    run_simulation,
    run_spec,
)
from repro.telemetry import MetricsRegistry, Telemetry
from repro.core.system import SCENARIOS, Scenario, System
from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.mixes import WORKLOAD_MIXES, workload_mix

__version__ = "1.0.0"

__all__ = [
    "run_simulation",
    "run_spec",
    "make_run_spec",
    "RunSpec",
    "compare_scenarios",
    "build_system",
    "build_system_from_spec",
    "MetricsRegistry",
    "Telemetry",
    "available_scenarios",
    "available_workloads",
    "SystemConfig",
    "default_system_config",
    "RunResult",
    "TaskResult",
    "System",
    "Scenario",
    "SCENARIOS",
    "BenchmarkSpec",
    "WORKLOAD_MIXES",
    "workload_mix",
    "__version__",
]
