"""repro — reproduction of "Hardware-Software Co-design to Mitigate DRAM
Refresh Overheads: A Case for Refresh-Aware Process Scheduling"
(Kotra et al., ASPLOS 2017).

Public API
----------
:mod:`repro.api` is the single supported public surface::

    from repro import api

    result = api.run(workload="WL-6", scenario="codesign")
    results = api.sweep(["WL-6", "WL-8"], api.available_scenarios())

It covers one-shot runs, local cached sweeps, submission to a running
sweep service (``python -m repro serve`` — see ``docs/SERVICE.md``),
warm-starting, and result diffing.  The names below remain importable
from ``repro`` for compatibility; ``run_simulation`` is a deprecated
shim for :func:`repro.api.run`.

:class:`~repro.telemetry.Telemetry` / :func:`build_system_from_spec`
    The observability layer: attach event sinks (ring buffer, JSONL,
    Chrome trace, wire) and snapshot metrics — ``docs/OBSERVABILITY.md``.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.config.system_configs import SystemConfig, default_system_config
from repro.core.results import RunResult, TaskResult
from repro.core.runspec import RunSpec
from repro.core.simulator import (
    available_scenarios,
    available_workloads,
    build_system,
    build_system_from_spec,
    compare_scenarios,
    make_run_spec,
    run_simulation,
    run_spec,
)
from repro.telemetry import MetricsRegistry, Telemetry
from repro.core.system import SCENARIOS, Scenario, System
from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.mixes import WORKLOAD_MIXES, workload_mix
from repro import api

__version__ = "1.2.0"

__all__ = [
    "api",
    "run_simulation",
    "run_spec",
    "make_run_spec",
    "RunSpec",
    "compare_scenarios",
    "build_system",
    "build_system_from_spec",
    "MetricsRegistry",
    "Telemetry",
    "available_scenarios",
    "available_workloads",
    "SystemConfig",
    "default_system_config",
    "RunResult",
    "TaskResult",
    "System",
    "Scenario",
    "SCENARIOS",
    "BenchmarkSpec",
    "WORKLOAD_MIXES",
    "workload_mix",
    "__version__",
]
