"""Rule registry: rules self-register at import via :func:`register`.

Importing :mod:`repro.analysis.rules` pulls in every rule module, whose
``@register`` decorations populate the table.  Codes are unique; a
duplicate registration is a programming error and fails loudly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.analysis.engine import Rule

_RULES: dict[str, "Rule"] = {}


def register(cls):
    """Class decorator: instantiate and register a :class:`Rule`."""
    rule = cls()
    if not rule.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if rule.code in _RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    _RULES[rule.code] = rule
    return cls


def all_rules() -> list["Rule"]:
    """Every registered rule, sorted by code (imports the rule modules)."""
    import repro.analysis.rules  # noqa: F401  (side effect: registration)

    return [_RULES[code] for code in sorted(_RULES)]


def get_rule(code: str) -> "Rule":
    import repro.analysis.rules  # noqa: F401

    try:
        return _RULES[code]
    except KeyError:
        raise KeyError(f"unknown rule code {code!r}") from None
