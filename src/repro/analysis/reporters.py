"""Finding reporters: human text and machine JSON.

Reporters render to strings; only the CLI writes to a stream.  The JSON
document is stable (sorted findings, fixed keys) so CI annotations and
tooling can consume it.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.analysis.engine import Finding


def render_text(findings: Iterable[Finding], suppressed_count: int = 0) -> str:
    """GCC-style ``path:line:col: CODE message`` lines plus a summary."""
    findings = sorted(findings, key=Finding.sort_key)
    lines = [str(f) for f in findings]
    if findings:
        by_code: dict[str, int] = {}
        for f in findings:
            by_code[f.code] = by_code.get(f.code, 0) + 1
        summary = ", ".join(f"{code} x{n}" for code, n in sorted(by_code.items()))
        lines.append(f"{len(findings)} finding(s): {summary}")
    else:
        lines.append("no findings")
    if suppressed_count:
        lines.append(f"({suppressed_count} baselined finding(s) suppressed)")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding], suppressed_count: int = 0) -> str:
    """Stable JSON document: ``{"findings": [...], "count": N, ...}``."""
    findings = sorted(findings, key=Finding.sort_key)
    return json.dumps(
        {
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
            "baselined": suppressed_count,
        },
        indent=2,
        sort_keys=True,
    )
