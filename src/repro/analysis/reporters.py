"""Finding reporters: human text, machine JSON, and SARIF.

Reporters render to strings; only the CLI writes to a stream.  The JSON
and SARIF documents are stable (sorted findings, fixed keys, no
timestamps) so CI annotations and tooling can consume them and so two
runs over the same tree are byte-identical.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.analysis.engine import Finding, Rule


def render_text(findings: Iterable[Finding], suppressed_count: int = 0) -> str:
    """GCC-style ``path:line:col: CODE message`` lines plus a summary."""
    findings = sorted(findings, key=Finding.sort_key)
    lines = [str(f) for f in findings]
    if findings:
        by_code: dict[str, int] = {}
        for f in findings:
            by_code[f.code] = by_code.get(f.code, 0) + 1
        summary = ", ".join(f"{code} x{n}" for code, n in sorted(by_code.items()))
        lines.append(f"{len(findings)} finding(s): {summary}")
    else:
        lines.append("no findings")
    if suppressed_count:
        lines.append(f"({suppressed_count} baselined finding(s) suppressed)")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding], suppressed_count: int = 0) -> str:
    """Stable JSON document: ``{"findings": [...], "count": N, ...}``."""
    findings = sorted(findings, key=Finding.sort_key)
    return json.dumps(
        {
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
            "baselined": suppressed_count,
        },
        indent=2,
        sort_keys=True,
    )


#: SARIF spec pin — GitHub code scanning requires exactly this pair.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _posix(path: str) -> str:
    return path.replace("\\", "/")


def render_sarif(
    findings: Iterable[Finding],
    rules: Optional[Iterable[Rule]] = None,
    suppressed_count: int = 0,
) -> str:
    """SARIF 2.1.0 log for code-scanning upload.

    Deliberately deterministic: no invocation timestamps or absolute
    URIs, rules sorted by code, results sorted by location — CI diffs
    two runs byte-for-byte to prove analyzer determinism.
    """
    findings = sorted(findings, key=Finding.sort_key)
    rule_meta = sorted(
        (r for r in (rules or []) if r.code), key=lambda r: r.code
    )
    descriptors = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in rule_meta
    ]
    results = [
        {
            "ruleId": f.code,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _posix(f.path),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col,
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    document = {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "informationUri": (
                            "https://github.com/local/repro#static-analysis"
                        ),
                        "rules": descriptors,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "columnKind": "unicodeCodePoints",
                "results": results,
                "properties": {"baselinedFindings": suppressed_count},
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
