"""Baseline files: grandfather existing findings, gate new ones.

A baseline is a JSON file of finding *fingerprints*.  Fingerprints hash
``(code, path, message, occurrence-index)`` — deliberately not the line
number, so unrelated edits that shift a grandfathered finding up or down
the file don't resurrect it, while a genuinely new instance of the same
violation in the same file still fires (its occurrence index is new).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable

from repro.analysis.engine import Finding
from repro.errors import ConfigError

BASELINE_VERSION = 1

#: Default baseline location (repo root, checked in).
DEFAULT_BASELINE = Path(".analysis-baseline.json")


def _posix(path: str) -> str:
    return path.replace("\\", "/")


def fingerprint_findings(
    findings: Iterable[Finding],
) -> list[tuple[Finding, str]]:
    """Pair each finding with its stable fingerprint.

    The fingerprint covers (code, path, message, occurrence-index) — not
    the line number — so edits that shift lines don't churn the baseline.
    """
    counts: dict[tuple[str, str, str], int] = {}
    out: list[tuple[Finding, str]] = []
    for finding in sorted(findings, key=Finding.sort_key):
        key = (finding.code, _posix(finding.path), finding.message)
        index = counts.get(key, 0)
        counts[key] = index + 1
        digest = hashlib.sha256(
            "\x00".join((*key, str(index))).encode("utf-8")
        ).hexdigest()[:16]
        out.append((finding, digest))
    return out


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write a baseline grandfathering *findings*; returns the count."""
    fingerprints = {
        digest: {
            "code": finding.code,
            "path": _posix(finding.path),
            "message": finding.message,
        }
        for finding, digest in fingerprint_findings(findings)
    }
    payload = {"version": BASELINE_VERSION, "fingerprints": fingerprints}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(fingerprints)


def load_baseline_entries(path: Path) -> dict[str, dict]:
    """Load fingerprint -> recorded entry info (must exist and parse).

    The entry info (code/path/message captured at --write-baseline time)
    lets the RPR015 audit describe *what* a dead fingerprint used to
    grandfather.
    """
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise ConfigError(f"cannot read baseline {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"baseline {path} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ConfigError(
            f"baseline {path} has unsupported layout "
            f"(want version {BASELINE_VERSION})"
        )
    fingerprints = payload.get("fingerprints", {})
    if not isinstance(fingerprints, dict):
        raise ConfigError(f"baseline {path}: 'fingerprints' must be an object")
    return {
        fp: (info if isinstance(info, dict) else {})
        for fp, info in fingerprints.items()
    }


def load_baseline(path: Path) -> set[str]:
    """Load the fingerprint set from *path* (must exist and parse)."""
    return set(load_baseline_entries(path))


def filter_baselined(
    findings: Iterable[Finding], baseline: set[str]
) -> tuple[list[Finding], int]:
    """Drop grandfathered findings; returns (new findings, dropped count)."""
    kept: list[Finding] = []
    dropped = 0
    for finding, fingerprint in fingerprint_findings(findings):
        if fingerprint in baseline:
            dropped += 1
        else:
            kept.append(finding)
    return kept, dropped
