"""Incremental analysis cache keyed by per-file content hashes.

One JSON document stores, per analyzed file: the content hash, the
serialized :class:`ModuleSummary`, and the file's *raw* (pre-noqa,
pre-baseline) per-file-rule findings.  A warm run re-parses only files
whose hash changed; summaries of unchanged files rebuild the project
model without touching their source, and their cached findings are
merged into the report unchanged.

The cache is invalidated wholesale when the *analysis signature*
changes — the rule set, the configuration, or the cache schema — so a
``--select`` subset can never leak partial findings into a full run.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from repro.analysis.engine import Finding
from repro.analysis.model.summary import SUMMARY_VERSION, ModuleSummary

CACHE_VERSION = 1

#: Default cache location (repo root, never checked in).
DEFAULT_CACHE = Path(".analysis-cache.json")


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def analysis_signature(config, rule_codes) -> str:
    """Fingerprint of everything besides file content that shapes findings."""
    payload = {
        "cache_version": CACHE_VERSION,
        "summary_version": SUMMARY_VERSION,
        "rules": sorted(rule_codes),
        "config": {
            "pure_packages": list(config.pure_packages),
            "heap_packages": list(config.heap_packages),
            "engine_driver_modules": list(config.engine_driver_modules),
            "print_exempt": list(config.print_exempt),
            "event_packages": list(config.event_packages),
            "order_exempt_modules": list(config.order_exempt_modules),
            "snapshot_exempt_methods": list(config.snapshot_exempt_methods),
            "select": (
                None if config.select is None else sorted(config.select)
            ),
            "exclude": list(config.exclude),
        },
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


class AnalysisCache:
    """Load/store per-file summaries and raw findings atomically."""

    def __init__(self, path: Path, signature: str):
        self.path = path
        self.signature = signature
        self._files: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    @classmethod
    def load(cls, path: Path, signature: str) -> "AnalysisCache":
        """Read *path*; a missing, corrupt, or stale-signature cache is
        treated as empty (never an error — the cache is an accelerator)."""
        cache = cls(path, signature)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, ValueError):
            return cache
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CACHE_VERSION
            or payload.get("signature") != signature
            or not isinstance(payload.get("files"), dict)
        ):
            return cache
        cache._files = payload["files"]
        return cache

    def lookup(
        self, display_path: str, file_hash: str
    ) -> Optional[tuple[ModuleSummary, list[Finding]]]:
        """Cached (summary, raw findings) when the content hash matches."""
        entry = self._files.get(display_path)
        if not isinstance(entry, dict) or entry.get("hash") != file_hash:
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_dict(entry["summary"])
            findings = [Finding.from_dict(f) for f in entry["findings"]]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return summary, findings

    def store(
        self,
        display_path: str,
        file_hash: str,
        summary: ModuleSummary,
        findings: list[Finding],
    ) -> None:
        self._files[display_path] = {
            "hash": file_hash,
            "summary": summary.to_dict(),
            "findings": [f.to_dict() for f in findings],
        }

    def prune(self, live_paths: set[str]) -> None:
        """Drop entries for files no longer in the analyzed set."""
        for path in sorted(self._files):
            if path not in live_paths:
                del self._files[path]

    def save(self) -> None:
        """Atomic write (tmp + rename) of the full cache document."""
        payload = {
            "version": CACHE_VERSION,
            "signature": self.signature,
            "files": {
                path: self._files[path] for path in sorted(self._files)
            },
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, self.path)
