"""Whole-program project model for interprocedural lint rules.

The per-file rules (RPR001–RPR010) see one AST at a time.  The
invariants added since — every mutated field round-trips through
``snapshot_state`` (PR 6), same-cycle bucket insertion order *is*
ChannelBus arbitration order (PR 4), pure packages stay transitively
deterministic (PR 1/2) — span modules, so enforcing them needs a model
of the whole program:

* :class:`~repro.analysis.model.summary.ModuleSummary` — everything one
  file contributes to the model (classes with their attribute
  assignment sites and snapshot/serialization key sets, functions with
  their resolved outgoing calls, ``engine.schedule*`` call sites, noqa
  comments), fully JSON-serializable so the incremental cache can
  reuse it without re-parsing.
* :class:`~repro.analysis.model.project.ProjectModel` — the summaries
  assembled into a module import graph, a class inventory with base
  resolution, and a name-resolved call graph, built in one pass and
  shared by every project rule.
* :class:`~repro.analysis.model.cache.AnalysisCache` — per-file
  content-hash keyed storage of summaries + raw per-file findings, so
  a warm run re-parses only changed files and re-analyzes only their
  reverse import closure.
"""

from repro.analysis.model.cache import AnalysisCache, DEFAULT_CACHE
from repro.analysis.model.project import ProjectModel
from repro.analysis.model.summary import ModuleSummary, extract_summary

__all__ = [
    "AnalysisCache",
    "DEFAULT_CACHE",
    "ModuleSummary",
    "ProjectModel",
    "extract_summary",
]
