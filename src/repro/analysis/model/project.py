"""The assembled whole-program model shared by project rules.

Built in one pass from per-file :class:`ModuleSummary` objects, the
model offers the three views the interprocedural rules need:

* **module graph** — who imports whom, restricted to modules actually
  in the analyzed set, with reverse-closure queries driving the
  incremental re-analysis scope;
* **class inventory** — every class keyed ``module.Class`` with base
  resolution across modules, so snapshot/serialization key sets and
  attribute inventories compose along inheritance chains;
* **call graph** — name-resolved edges between project functions
  (``module.func`` / ``module.Class.method``), the substrate for the
  RPR013 taint propagation.

Everything is deterministic: inputs are sorted, queries return sorted
results, and no state mutates after construction.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.model.summary import (
    CallSite,
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
)


class ProjectModel:
    """Immutable whole-program view over a set of module summaries."""

    def __init__(self, summaries: Iterable[ModuleSummary]):
        self.modules: dict[str, ModuleSummary] = {}
        for summary in sorted(summaries, key=lambda s: (s.module, s.path)):
            self.modules[summary.module] = summary

        #: module -> display path (and back) for finding locations.
        self.path_of: dict[str, str] = {
            name: s.path for name, s in self.modules.items()
        }

        # -- module graph ----------------------------------------------------------
        self._imports: dict[str, tuple[str, ...]] = {}
        self._importers: dict[str, list[str]] = {name: [] for name in self.modules}
        for name, summary in self.modules.items():
            resolved = []
            for candidate in summary.imported_modules:
                target = self._known_module(candidate)
                if target is not None and target != name:
                    resolved.append(target)
            deduped = tuple(sorted(set(resolved)))
            self._imports[name] = deduped
            for target in deduped:
                self._importers[target].append(name)
        for name in self._importers:
            self._importers[name].sort()

        # -- class inventory -------------------------------------------------------
        self.classes: dict[str, tuple[str, ClassSummary]] = {}
        for name, summary in self.modules.items():
            for cls in summary.classes:
                self.classes[f"{name}.{cls.name}"] = (name, cls)

        # -- function inventory ----------------------------------------------------
        self.functions: dict[str, FunctionSummary] = {}
        self._function_module: dict[str, str] = {}
        for name, summary in self.modules.items():
            for fn in summary.functions:
                key = f"{name}.{fn.name}"
                self.functions[key] = fn
                self._function_module[key] = name

    # -- module graph --------------------------------------------------------------

    def _known_module(self, candidate: str) -> Optional[str]:
        """Longest known module matching an import candidate, if any."""
        parts = candidate.split(".")
        while parts:
            name = ".".join(parts)
            if name in self.modules:
                return name
            parts.pop()
        return None

    def imports_of(self, module: str) -> tuple[str, ...]:
        return self._imports.get(module, ())

    def importers_of(self, module: str) -> tuple[str, ...]:
        return tuple(self._importers.get(module, ()))

    def reverse_closure(self, modules: Iterable[str]) -> set[str]:
        """*modules* plus every module transitively importing one of them.

        This is the set whose findings can change when *modules* change:
        per-file findings are content-local, and every interprocedural
        edge (base-class key sets, call-graph taint, signature unit
        flow) follows an import, so dependents are always importers.
        """
        closure: set[str] = set()
        stack = sorted(m for m in modules if m in self.modules)
        while stack:
            module = stack.pop()
            if module in closure:
                continue
            closure.add(module)
            stack.extend(
                importer
                for importer in self._importers.get(module, ())
                if importer not in closure
            )
        return closure

    def module_of_path(self, display_path: str) -> Optional[str]:
        for name, path in sorted(self.path_of.items()):
            if path == display_path:
                return name
        return None

    # -- class inventory -----------------------------------------------------------

    def resolve_class(
        self, module: str, ref: str
    ) -> Optional[tuple[str, ClassSummary]]:
        """Resolve a base-class reference seen in *module* to a class key.

        *ref* is the import-resolved dotted name recorded in the summary
        (``RefreshSchedulerBase`` for a same-module base,
        ``repro.dram.refresh.base.RefreshSchedulerBase`` for an imported
        one).
        """
        if "." not in ref:
            key = f"{module}.{ref}"
            if key in self.classes:
                return key, self.classes[key][1]
            return None
        if ref in self.classes:
            return ref, self.classes[ref][1]
        return None

    def mro_chain(
        self, module: str, cls: ClassSummary
    ) -> list[tuple[str, ClassSummary]]:
        """*cls* plus every resolvable ancestor (left-to-right, no dups)."""
        chain: list[tuple[str, ClassSummary]] = []
        seen: set[str] = set()
        stack: list[tuple[str, ClassSummary]] = [(module, cls)]
        while stack:
            mod, current = stack.pop(0)
            key = f"{mod}.{current.name}"
            if key in seen:
                continue
            seen.add(key)
            chain.append((mod, current))
            for base in current.bases:
                resolved = self.resolve_class(mod, base)
                if resolved is not None:
                    base_key, base_cls = resolved
                    base_mod = self.classes[base_key][0]
                    stack.append((base_mod, base_cls))
        return chain

    def effective_state_keys(
        self, module: str, cls: ClassSummary
    ) -> tuple[Optional[set[str]], bool]:
        """(snapshot/serialization key set, analyzable) along the MRO.

        The key set unions literal ``snapshot_state``/``to_dict`` keys,
        dataclass fields, and ``__slots__``-free declared fields of the
        class and every resolvable base.  *analyzable* is False when any
        contributing state method was dynamic, when a ``super()`` call
        points at an unresolvable base, or when the class has no state
        protocol at all — in each case coverage rules must stand down.
        """
        has_protocol = False
        keys: set[str] = set()
        for mod, current in self.mro_chain(module, cls):
            if current.snapshot_keys is not None:
                has_protocol = True
                keys.update(current.snapshot_keys)
                if not current.snapshot_complete:
                    return None, False
                if current.snapshot_calls_super and not self._has_resolvable_base(
                    mod, current
                ):
                    return None, False
            if current.serial_keys is not None:
                has_protocol = True
                keys.update(current.serial_keys)
                keys.update(current.fields)
                if not current.serial_complete:
                    return None, False
                if current.serial_calls_super and not self._has_resolvable_base(
                    mod, current
                ):
                    return None, False
        if not has_protocol:
            return None, False
        return keys, True

    def _has_resolvable_base(self, module: str, cls: ClassSummary) -> bool:
        return any(
            self.resolve_class(module, base) is not None for base in cls.bases
        )

    # -- call graph ----------------------------------------------------------------

    def resolve_call(
        self, caller_key: str, site: CallSite
    ) -> Optional[str]:
        """Resolve a call site to a project function key, if possible.

        Handles three shapes: ``self.m()`` (looked up through the owning
        class and its bases), bare same-module calls, and import-
        resolved dotted calls (``repro.units.ns`` or
        ``from repro.os import scheduler; scheduler.pick()``).
        """
        module = self._function_module.get(caller_key)
        if module is None:
            return None
        if site.is_self_call:
            caller_fn = caller_key[len(module) + 1 :]
            if "." not in caller_fn:
                return None
            class_name = caller_fn.split(".", 1)[0]
            entry = self.classes.get(f"{module}.{class_name}")
            if entry is None:
                return None
            for mod, current in self.mro_chain(entry[0], entry[1]):
                if site.callee in current.methods:
                    return f"{mod}.{current.name}.{site.callee}"
            return None
        dotted = site.callee
        if "." not in dotted:
            key = f"{module}.{dotted}"
            return key if key in self.functions else None
        owner = self._known_module(dotted)
        if owner is None:
            return None
        remainder = dotted[len(owner) + 1 :]
        if not remainder:
            return None
        key = f"{owner}.{remainder}"
        if key in self.functions:
            return key
        # ``Class(...)`` constructor call: taint flows into __init__.
        init_key = f"{owner}.{remainder}.__init__"
        if init_key in self.functions:
            return init_key
        return None

    def call_edges(self) -> dict[str, tuple[str, ...]]:
        """Adjacency: function key -> sorted resolved callee keys."""
        edges: dict[str, tuple[str, ...]] = {}
        for key in sorted(self.functions):
            fn = self.functions[key]
            resolved = {
                target
                for target in (
                    self.resolve_call(key, site) for site in fn.calls
                )
                if target is not None
            }
            edges[key] = tuple(sorted(resolved))
        return edges

    def function_module(self, key: str) -> Optional[str]:
        return self._function_module.get(key)
