"""Per-file model extraction: everything one file contributes.

A :class:`ModuleSummary` is extracted from a parsed file once and is
fully JSON-serializable, so the incremental cache can rebuild the
project model for unchanged files without re-parsing them.  Summaries
are config-independent: they record *sites* (every ``self.X``
assignment, every resolved call, every ``engine.schedule*``), and the
rules decide later which sites matter under the active configuration.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.engine import FileContext, _NOQA_RE
from repro.analysis.rules.determinism import _BANNED_CALLS, _RANDOM_ALLOWED
from repro.analysis.rules.units import _suffix_of, _unit_leaves

SUMMARY_VERSION = 1

#: Engine scheduling entry points (see ``repro.core.engine.Engine``).
SCHEDULE_METHODS = ("schedule", "schedule_at", "schedule_event")

#: Receiver name tails that conventionally hold the engine (mirrors the
#: RPR008 heuristic in :mod:`repro.analysis.rules.hygiene`).
_ENGINE_TAILS = ("engine", "_engine", "eng")

_ORDER_COMMENT_RE = re.compile(r"#[^\n]*\border\b", re.IGNORECASE)


@dataclass(frozen=True)
class CallArg:
    """One argument at a call site, reduced to what unit-flow needs."""

    position: Optional[int]
    keyword: Optional[str]
    unit_suffix: Optional[str]
    display: str

    def to_dict(self) -> dict:
        return {
            "position": self.position,
            "keyword": self.keyword,
            "unit_suffix": self.unit_suffix,
            "display": self.display,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CallArg":
        return cls(**data)


@dataclass(frozen=True)
class CallSite:
    """One resolved outgoing call from a function or method.

    ``callee`` is the import-resolved dotted name (``repro.units.ns``,
    ``time.time``) or — when ``is_self_call`` — the bare method name
    dispatched on ``self``; the project model qualifies it against the
    owning class and its bases.
    """

    callee: str
    is_self_call: bool
    line: int
    col: int
    args: tuple[CallArg, ...] = ()

    def to_dict(self) -> dict:
        return {
            "callee": self.callee,
            "is_self_call": self.is_self_call,
            "line": self.line,
            "col": self.col,
            "args": [a.to_dict() for a in self.args],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CallSite":
        return cls(
            callee=data["callee"],
            is_self_call=data["is_self_call"],
            line=data["line"],
            col=data["col"],
            args=tuple(CallArg.from_dict(a) for a in data["args"]),
        )


@dataclass(frozen=True)
class ScheduleSite:
    """One ``engine.schedule*`` call site (the event-wiring surface)."""

    method: str
    line: int
    col: int
    same_cycle: bool
    callback_self_method: Optional[str]
    has_order_comment: bool
    owner: str

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "line": self.line,
            "col": self.col,
            "same_cycle": self.same_cycle,
            "callback_self_method": self.callback_self_method,
            "has_order_comment": self.has_order_comment,
            "owner": self.owner,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduleSite":
        return cls(**data)


@dataclass
class FunctionSummary:
    """One function or method: signature plus resolved outgoing calls."""

    name: str
    line: int
    params: tuple[str, ...]
    kwonly: tuple[str, ...]
    has_varargs: bool
    calls: tuple[CallSite, ...]
    banned_calls: tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "line": self.line,
            "params": list(self.params),
            "kwonly": list(self.kwonly),
            "has_varargs": self.has_varargs,
            "calls": [c.to_dict() for c in self.calls],
            "banned_calls": list(self.banned_calls),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionSummary":
        return cls(
            name=data["name"],
            line=data["line"],
            params=tuple(data["params"]),
            kwonly=tuple(data["kwonly"]),
            has_varargs=data["has_varargs"],
            calls=tuple(CallSite.from_dict(c) for c in data["calls"]),
            banned_calls=tuple(data["banned_calls"]),
        )


@dataclass
class ClassSummary:
    """One class: attribute assignment sites and state-protocol keys.

    ``attr_sites`` maps every ``self.X`` store to the ``(method, line)``
    pairs performing it — across *all* methods, exemptions are applied
    by the rules.  ``snapshot_keys``/``serial_keys`` are the statically
    extracted key sets of ``snapshot_state``/``to_dict`` (``None`` when
    the method is absent); ``*_complete`` is False when extraction hit
    something dynamic, which tells RPR011 to stand down rather than
    guess.
    """

    name: str
    line: int
    bases: tuple[str, ...]
    fields: tuple[str, ...]
    slots: tuple[str, ...]
    methods: tuple[str, ...]
    attr_sites: dict[str, tuple[tuple[str, int], ...]]
    snapshot_keys: Optional[tuple[str, ...]]
    snapshot_complete: bool
    snapshot_calls_super: bool
    snapshot_line: int
    serial_keys: Optional[tuple[str, ...]]
    serial_complete: bool
    serial_calls_super: bool

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "line": self.line,
            "bases": list(self.bases),
            "fields": list(self.fields),
            "slots": list(self.slots),
            "methods": list(self.methods),
            "attr_sites": {
                attr: [list(site) for site in sites]
                for attr, sites in sorted(self.attr_sites.items())
            },
            "snapshot_keys": (
                None if self.snapshot_keys is None else list(self.snapshot_keys)
            ),
            "snapshot_complete": self.snapshot_complete,
            "snapshot_calls_super": self.snapshot_calls_super,
            "snapshot_line": self.snapshot_line,
            "serial_keys": (
                None if self.serial_keys is None else list(self.serial_keys)
            ),
            "serial_complete": self.serial_complete,
            "serial_calls_super": self.serial_calls_super,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClassSummary":
        return cls(
            name=data["name"],
            line=data["line"],
            bases=tuple(data["bases"]),
            fields=tuple(data["fields"]),
            slots=tuple(data["slots"]),
            methods=tuple(data["methods"]),
            attr_sites={
                attr: tuple((m, ln) for m, ln in sites)
                for attr, sites in data["attr_sites"].items()
            },
            snapshot_keys=(
                None
                if data["snapshot_keys"] is None
                else tuple(data["snapshot_keys"])
            ),
            snapshot_complete=data["snapshot_complete"],
            snapshot_calls_super=data["snapshot_calls_super"],
            snapshot_line=data["snapshot_line"],
            serial_keys=(
                None if data["serial_keys"] is None else tuple(data["serial_keys"])
            ),
            serial_complete=data["serial_complete"],
            serial_calls_super=data["serial_calls_super"],
        )


@dataclass
class ModuleSummary:
    """Everything one file contributes to the project model."""

    module: str
    path: str
    imported_modules: tuple[str, ...]
    classes: tuple[ClassSummary, ...]
    functions: tuple[FunctionSummary, ...]
    schedule_sites: tuple[ScheduleSite, ...]
    noqa: tuple[tuple[int, Optional[tuple[str, ...]]], ...] = field(
        default=()
    )

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "path": self.path,
            "imported_modules": list(self.imported_modules),
            "classes": [c.to_dict() for c in self.classes],
            "functions": [f.to_dict() for f in self.functions],
            "schedule_sites": [s.to_dict() for s in self.schedule_sites],
            "noqa": [
                [line, None if codes is None else list(codes)]
                for line, codes in self.noqa
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        return cls(
            module=data["module"],
            path=data["path"],
            imported_modules=tuple(data["imported_modules"]),
            classes=tuple(ClassSummary.from_dict(c) for c in data["classes"]),
            functions=tuple(
                FunctionSummary.from_dict(f) for f in data["functions"]
            ),
            schedule_sites=tuple(
                ScheduleSite.from_dict(s) for s in data["schedule_sites"]
            ),
            noqa=tuple(
                (line, None if codes is None else tuple(codes))
                for line, codes in data["noqa"]
            ),
        )

    @classmethod
    def empty(cls, module: str, path: str) -> "ModuleSummary":
        """Placeholder for unparseable files so the model stays total."""
        return cls(
            module=module,
            path=path,
            imported_modules=(),
            classes=(),
            functions=(),
            schedule_sites=(),
            noqa=(),
        )


# -- extraction --------------------------------------------------------------------


def _arg_suffix(node: ast.expr) -> Optional[str]:
    """The single unit suffix of an expression, or None when absent/mixed."""
    suffixes = {s for _, s in _unit_leaves(node)}
    if len(suffixes) == 1:
        return next(iter(suffixes))
    return None


def _arg_display(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant):
        return repr(node.value)
    return "<expr>"


def _is_banned(resolved: str) -> bool:
    if resolved in _BANNED_CALLS:
        return True
    return (
        resolved.startswith("random.")
        and resolved not in _RANDOM_ALLOWED
        and resolved.count(".") == 1
    )


def _mentions_now(node: ast.expr) -> bool:
    """Heuristic: does this time expression reference the current cycle?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "now":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "now":
            return True
    return False


def _is_super_state_call(node: ast.Call) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr in ("snapshot_state", "to_dict")
        and isinstance(func.value, ast.Call)
        and isinstance(func.value.func, ast.Name)
        and func.value.func.id == "super"
    )


def _state_method_keys(fn: ast.FunctionDef) -> tuple[
    tuple[str, ...], bool, bool
]:
    """(keys, complete, calls_super) for a snapshot_state/to_dict body.

    Keys come from dict literals, constant-key subscript stores
    (``state["k"] = v``), and ``.update()`` calls with literal
    arguments.  Anything dynamic — ``**`` splats, computed keys, a
    returned name fed by a non-``super()`` call — clears *complete* so
    coverage rules skip the class instead of guessing.
    """
    keys: list[str] = []
    seen: set[str] = set()
    complete = True
    calls_super = False

    def add(key: str) -> None:
        if key not in seen:
            seen.add(key)
            keys.append(key)

    returned_names: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
            returned_names.add(node.value.id)

    for node in ast.walk(fn):
        if isinstance(node, ast.Return):
            if node.value is not None and not isinstance(
                node.value, (ast.Dict, ast.Name)
            ):
                complete = False
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    add(key.value)
                else:
                    complete = False  # ** splat or computed key
        elif isinstance(node, ast.Assign):
            targets = node.targets
            for target in targets:
                if isinstance(target, ast.Subscript):
                    key = target.slice
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        add(key.value)
                    else:
                        complete = False
            if (
                isinstance(node.value, ast.Call)
                and len(targets) == 1
                and isinstance(targets[0], ast.Name)
                and targets[0].id in returned_names
            ):
                if _is_super_state_call(node.value):
                    calls_super = True
                else:
                    complete = False
        elif isinstance(node, ast.Call):
            func = node.func
            if _is_super_state_call(node):
                calls_super = True
            elif isinstance(func, ast.Attribute) and func.attr == "update":
                for arg in node.args:
                    if not isinstance(arg, ast.Dict):
                        complete = False  # dict literals handled by the walk
                for kw in node.keywords:
                    if kw.arg is not None:
                        add(kw.arg)
                    else:
                        complete = False
    return tuple(keys), complete, calls_super


def _annotated_fields(node: ast.ClassDef) -> tuple[str, ...]:
    """Annotated class-body names (dataclass fields), minus ClassVars."""
    names = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            ann = stmt.annotation
            if isinstance(ann, ast.Subscript) and (
                isinstance(ann.value, ast.Name) and ann.value.id == "ClassVar"
            ):
                continue
            names.append(stmt.target.id)
    return tuple(names)


def _slot_names(node: ast.ClassDef) -> tuple[str, ...]:
    names = []
    for stmt in node.body:
        if (
            isinstance(stmt, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets
            )
            and isinstance(stmt.value, (ast.Tuple, ast.List))
        ):
            for elt in stmt.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    names.append(elt.value)
    return tuple(names)


class _Extractor:
    """Single AST pass collecting the module summary."""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.classes: list[ClassSummary] = []
        self.functions: list[FunctionSummary] = []
        self.schedule_sites: list[ScheduleSite] = []

    def run(self) -> ModuleSummary:
        for stmt in self.ctx.tree.body:
            if isinstance(stmt, ast.ClassDef):
                self._extract_class(stmt)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_function(stmt, qualname=stmt.name, self_name=None)
        return ModuleSummary(
            module=self.ctx.module_name,
            path=self.ctx.display_path,
            imported_modules=self._imported_modules(),
            classes=tuple(self.classes),
            functions=tuple(self.functions),
            schedule_sites=tuple(self.schedule_sites),
            noqa=self._noqa_comments(),
        )

    # -- imports -------------------------------------------------------------------

    def _imported_modules(self) -> tuple[str, ...]:
        """Candidate project-module imports (the model prunes to known)."""
        candidates: list[str] = []
        seen: set[str] = set()

        def add(name: str) -> None:
            if name and name not in seen:
                seen.add(name)
                candidates.append(name)

        own_parts = self.ctx.module_name.split(".")
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    # Relative import: anchor at the enclosing package.
                    base_parts = own_parts[: len(own_parts) - node.level]
                    base = ".".join(base_parts)
                    module = (
                        f"{base}.{node.module}" if node.module else base
                    )
                else:
                    module = node.module or ""
                if not module:
                    continue
                add(module)
                for alias in node.names:
                    if alias.name != "*":
                        add(f"{module}.{alias.name}")
        return tuple(candidates)

    # -- noqa ----------------------------------------------------------------------

    def _noqa_comments(
        self,
    ) -> tuple[tuple[int, Optional[tuple[str, ...]]], ...]:
        """Suppression table from real ``#`` comment tokens only.

        Scanning raw lines would also match the noqa syntax *quoted*
        inside docstrings and message strings (this analyzer's own
        sources do exactly that), which RPR015 would then flag as stale
        suppressions.  Tokenizing restricts the search to comments.
        """
        import io
        import tokenize

        out: list[tuple[int, Optional[tuple[str, ...]]]] = []
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.ctx.source).readline)
            )
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return tuple(out)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                out.append((token.start[0], None))
            else:
                parsed = tuple(
                    sorted(
                        {c.strip().upper() for c in codes.split(",") if c.strip()}
                    )
                )
                out.append((token.start[0], parsed))
        return tuple(out)

    # -- classes -------------------------------------------------------------------

    def _extract_class(self, node: ast.ClassDef) -> None:
        methods: list[str] = []
        attr_sites: dict[str, list[tuple[str, int]]] = {}
        snapshot_fn: Optional[ast.FunctionDef] = None
        serial_fn: Optional[ast.FunctionDef] = None

        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            methods.append(stmt.name)
            if stmt.name == "snapshot_state" and isinstance(
                stmt, ast.FunctionDef
            ):
                snapshot_fn = stmt
            elif stmt.name == "to_dict" and isinstance(stmt, ast.FunctionDef):
                serial_fn = stmt
            is_static = any(
                isinstance(dec, ast.Name) and dec.id == "staticmethod"
                for dec in stmt.decorator_list
            )
            self_name = (
                stmt.args.args[0].arg
                if stmt.args.args and not is_static
                else None
            )
            self._extract_function(
                stmt, qualname=f"{node.name}.{stmt.name}", self_name=self_name
            )
            if self_name is not None:
                self._collect_attr_stores(stmt, self_name, attr_sites)

        bases = tuple(
            resolved
            for resolved in (
                self.ctx.resolve(base) for base in node.bases
            )
            if resolved is not None
        )
        snap_keys: Optional[tuple[str, ...]] = None
        snap_complete = True
        snap_super = False
        snap_line = 0
        if snapshot_fn is not None:
            snap_keys, snap_complete, snap_super = _state_method_keys(
                snapshot_fn
            )
            snap_line = snapshot_fn.lineno
        ser_keys: Optional[tuple[str, ...]] = None
        ser_complete = True
        ser_super = False
        if serial_fn is not None:
            ser_keys, ser_complete, ser_super = _state_method_keys(serial_fn)

        self.classes.append(
            ClassSummary(
                name=node.name,
                line=node.lineno,
                bases=bases,
                fields=_annotated_fields(node),
                slots=_slot_names(node),
                methods=tuple(methods),
                attr_sites={
                    attr: tuple(sites)
                    for attr, sites in sorted(attr_sites.items())
                },
                snapshot_keys=snap_keys,
                snapshot_complete=snap_complete,
                snapshot_calls_super=snap_super,
                snapshot_line=snap_line,
                serial_keys=ser_keys,
                serial_complete=ser_complete,
                serial_calls_super=ser_super,
            )
        )

    @staticmethod
    def _collect_attr_stores(
        method: ast.AST,
        self_name: str,
        attr_sites: dict[str, list[tuple[str, int]]],
    ) -> None:
        method_name = method.name  # type: ignore[attr-defined]
        for sub in ast.walk(method):
            targets: list[ast.expr] = []
            if isinstance(sub, ast.Assign):
                targets = list(sub.targets)
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                targets = [sub.target]
            for target in targets:
                for leaf in ast.walk(target):
                    if (
                        isinstance(leaf, ast.Attribute)
                        and isinstance(leaf.value, ast.Name)
                        and leaf.value.id == self_name
                        and isinstance(leaf.ctx, ast.Store)
                    ):
                        attr_sites.setdefault(leaf.attr, []).append(
                            (method_name, sub.lineno)
                        )

    # -- functions and call sites --------------------------------------------------

    def _extract_function(
        self,
        node: ast.AST,
        qualname: str,
        self_name: Optional[str],
    ) -> None:
        args = node.args  # type: ignore[attr-defined]
        params = tuple(
            a.arg
            for a in (args.posonlyargs + args.args)[(1 if self_name else 0):]
        )
        kwonly = tuple(a.arg for a in args.kwonlyargs)
        calls: list[CallSite] = []
        banned: list[str] = []
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            self._maybe_schedule_site(sub, qualname, self_name)
            callee, is_self = self._resolve_callee(sub.func, self_name)
            if callee is None:
                continue
            if not is_self and _is_banned(callee):
                if callee not in banned:
                    banned.append(callee)
                continue
            calls.append(
                CallSite(
                    callee=callee,
                    is_self_call=is_self,
                    line=sub.lineno,
                    col=sub.col_offset + 1,
                    args=self._call_args(sub),
                )
            )
        self.functions.append(
            FunctionSummary(
                name=qualname,
                line=node.lineno,  # type: ignore[attr-defined]
                params=params,
                kwonly=kwonly,
                has_varargs=args.vararg is not None or args.kwarg is not None,
                calls=tuple(calls),
                banned_calls=tuple(banned),
            )
        )

    def _resolve_callee(
        self, func: ast.expr, self_name: Optional[str]
    ) -> tuple[Optional[str], bool]:
        if (
            self_name is not None
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == self_name
        ):
            return func.attr, True
        resolved = self.ctx.resolve(func)
        return resolved, False

    @staticmethod
    def _call_args(call: ast.Call) -> tuple[CallArg, ...]:
        out: list[CallArg] = []
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            suffix = _arg_suffix(arg)
            if suffix is not None:
                out.append(
                    CallArg(
                        position=position,
                        keyword=None,
                        unit_suffix=suffix,
                        display=_arg_display(arg),
                    )
                )
        for kw in call.keywords:
            if kw.arg is None:
                continue
            suffix = _arg_suffix(kw.value)
            if suffix is not None:
                out.append(
                    CallArg(
                        position=None,
                        keyword=kw.arg,
                        unit_suffix=suffix,
                        display=_arg_display(kw.value),
                    )
                )
        return tuple(out)

    # -- schedule sites ------------------------------------------------------------

    def _maybe_schedule_site(
        self, call: ast.Call, owner: str, self_name: Optional[str]
    ) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in SCHEDULE_METHODS:
            return
        receiver = self.ctx.dotted_name(func.value) or ""
        tail = receiver.rsplit(".", 1)[-1]
        if tail not in _ENGINE_TAILS:
            return
        if not call.args:
            return
        first = call.args[0]
        if func.attr == "schedule_at":
            same_cycle = _mentions_now(first)
        else:
            same_cycle = isinstance(first, ast.Constant) and first.value == 0
        callback_self: Optional[str] = None
        if len(call.args) >= 2:
            cb = call.args[1]
            if (
                self_name is not None
                and isinstance(cb, ast.Attribute)
                and isinstance(cb.value, ast.Name)
                and cb.value.id == self_name
            ):
                callback_self = cb.attr
        self.schedule_sites.append(
            ScheduleSite(
                method=func.attr,
                line=call.lineno,
                col=call.col_offset + 1,
                same_cycle=same_cycle,
                callback_self_method=callback_self,
                has_order_comment=self._has_order_comment(call),
                owner=owner,
            )
        )

    def _has_order_comment(self, call: ast.Call) -> bool:
        """An ``# ... order ...`` comment on the call lines or just above.

        "Just above" means the whole contiguous comment block preceding
        the call, so a multi-line explanation counts even when the word
        "order" only appears on its first line.
        """
        start = call.lineno
        end = getattr(call, "end_lineno", None) or start
        lines = self.ctx.lines
        for lineno in range(start, min(end, len(lines)) + 1):
            if _ORDER_COMMENT_RE.search(lines[lineno - 1]):
                return True
        lineno = start - 1
        while lineno >= 1 and lines[lineno - 1].lstrip().startswith("#"):
            if _ORDER_COMMENT_RE.search(lines[lineno - 1]):
                return True
            lineno -= 1
        return False


def extract_summary(ctx: FileContext) -> ModuleSummary:
    """Build the :class:`ModuleSummary` for one parsed file."""
    return _Extractor(ctx).run()


def iter_noqa(
    summary: ModuleSummary,
) -> Iterator[tuple[int, Optional[tuple[str, ...]]]]:
    """The file's suppression comments as ``(line, codes-or-None)``."""
    yield from summary.noqa
