"""Lint engine: file discovery, AST contexts, noqa handling, rule driving.

One :class:`FileContext` is built per file — it owns the parsed tree, the
module name derived from the path, and an import-alias table so rules can
resolve ``t.time()`` back to ``time.time`` — and every enabled rule runs
against it.  Findings landing on a line carrying a matching
``# repro: noqa[CODE]`` comment are dropped before reporting.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional

#: Suppression comment: ``# repro: noqa`` (all codes) or
#: ``# repro: noqa[RPR001]`` / ``# repro: noqa[RPR001,RPR004]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)

#: Code reserved for files the analyzer itself cannot process.
PARSE_ERROR_CODE = "RPR000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(**data)

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class Rule:
    """Base class for lint rules.

    Subclasses set ``code``/``name``/``description`` and implement
    :meth:`check`, yielding :class:`Finding` objects.  Use
    :meth:`finding` to stamp the code and location consistently.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node: ast.AST, message: str) -> Finding:
        return Finding(
            code=self.code,
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def _derive_module_name(path: Path) -> str:
    """Dotted module name for *path*, anchored at the ``repro`` package.

    ``src/repro/core/engine.py`` -> ``repro.core.engine``.  Files outside
    a ``repro`` tree (e.g. test fixtures) fall back to their stem, so
    package-scoped rules simply don't bind there unless the fixture is
    laid out like the package.
    """
    parts = list(path.resolve().parts)
    stem_parts = parts[:-1] + [path.stem]
    if "repro" in stem_parts:
        anchor = len(stem_parts) - 1 - stem_parts[::-1].index("repro")
        dotted = [p for p in stem_parts[anchor:] if p != "__init__"]
        return ".".join(dotted) if dotted else "repro"
    return path.stem


class FileContext:
    """Everything a rule needs to inspect one source file."""

    def __init__(
        self,
        path: Path,
        source: str,
        tree: ast.Module,
        config,
        display_path: Optional[str] = None,
    ):
        self.path = path
        self.display_path = display_path or str(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        self.module_name = _derive_module_name(path)
        self.imports = self._collect_imports(tree)

    # -- import-aware name resolution -------------------------------------------

    @staticmethod
    def _collect_imports(tree: ast.Module) -> dict[str, str]:
        table: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    table[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    table[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        return table

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Literal dotted text of a Name/Attribute chain (no resolution)."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain through the import table.

        ``t.time`` with ``import time as t`` resolves to ``time.time``;
        ``count(...)`` with ``from itertools import count`` resolves to
        ``itertools.count``.
        """
        dotted = self.dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        resolved_head = self.imports.get(head, head)
        return f"{resolved_head}.{rest}" if rest else resolved_head

    def in_packages(self, prefixes: tuple[str, ...]) -> bool:
        from repro.analysis.config import module_in

        return module_in(self.module_name, prefixes)

    # -- suppressions ------------------------------------------------------------

    def suppressed(self, finding: Finding) -> bool:
        """True when the finding's line carries a matching noqa comment."""
        if not 1 <= finding.line <= len(self.lines):
            return False
        match = _NOQA_RE.search(self.lines[finding.line - 1])
        if match is None:
            return False
        codes = match.group("codes")
        if codes is None:
            return True
        allowed = {c.strip().upper() for c in codes.split(",") if c.strip()}
        return finding.code.upper() in allowed


# -- drivers ---------------------------------------------------------------------


def analyze_file(
    path: Path,
    config,
    rules: Optional[Iterable[Rule]] = None,
    display_path: Optional[str] = None,
) -> list[Finding]:
    """Run every enabled rule over one file; returns sorted findings."""
    from repro.analysis.registry import all_rules

    display = display_path or str(path)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        return [
            Finding(
                code=PARSE_ERROR_CODE,
                path=display,
                line=getattr(exc, "lineno", None) or 1,
                col=1,
                message=f"could not analyze file: {exc}",
            )
        ]

    ctx = FileContext(path, source, tree, config, display_path=display)
    findings: list[Finding] = []
    for rule in rules if rules is not None else all_rules():
        if not config.rule_enabled(rule.code):
            continue
        for finding in rule.check(ctx):
            if not ctx.suppressed(finding):
                findings.append(finding)
    return sorted(findings, key=Finding.sort_key)


def discover_files(paths: Iterable[Path], config) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    out: set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(
                p
                for p in path.rglob("*.py")
                if not any(part.startswith(".") for part in p.parts)
            )
        elif path.suffix == ".py":
            out.add(path)
    if config.exclude:
        out = {
            p
            for p in out
            if not any(p.match(pattern) for pattern in config.exclude)
        }
    return sorted(out)


def analyze_paths(
    paths: Iterable[Path],
    config,
    rules: Optional[Iterable[Rule]] = None,
) -> list[Finding]:
    """Analyze every ``.py`` file under *paths*; returns sorted findings."""
    rules = list(rules) if rules is not None else None
    findings: list[Finding] = []
    for path in discover_files(paths, config):
        findings.extend(analyze_file(path, config, rules=rules))
    return sorted(findings, key=Finding.sort_key)
