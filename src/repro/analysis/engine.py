"""Lint engine: file discovery, AST contexts, noqa handling, rule driving.

One :class:`FileContext` is built per file — it owns the parsed tree, the
module name derived from the path, and an import-alias table so rules can
resolve ``t.time()`` back to ``time.time`` — and every enabled rule runs
against it.  Findings landing on a line carrying a matching
``# repro: noqa[CODE]`` comment are dropped before reporting.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Iterable, Iterator, Optional

#: Suppression comment: hash + ``repro: noqa``, bare (all codes) or
#: with a code list like ``[RPR001]`` / ``[RPR001,RPR004]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)

#: Code reserved for files the analyzer itself cannot process.
PARSE_ERROR_CODE = "RPR000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(**data)

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class Rule:
    """Base class for lint rules.

    Subclasses set ``code``/``name``/``description`` and implement
    :meth:`check`, yielding :class:`Finding` objects.  Use
    :meth:`finding` to stamp the code and location consistently.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node: ast.AST, message: str) -> Finding:
        return Finding(
            code=self.code,
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules (RPR011+).

    Project rules run once over the assembled
    :class:`~repro.analysis.model.project.ProjectModel` instead of once
    per file.  ``audit = True`` marks rules that must run after every
    other rule because they inspect the raw finding set itself (RPR015
    stale-suppression audit).
    """

    audit: bool = False

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        return iter(())

    def check_project(self, pctx: "ProjectContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            code=self.code, path=path, line=line, col=col, message=message
        )


class ProjectContext:
    """Everything a project rule needs: the model plus run-level state."""

    def __init__(
        self,
        model,
        config,
        raw_findings: Optional[list[Finding]] = None,
        baseline_entries: Optional[dict] = None,
        baseline_path: Optional[str] = None,
        known_codes: frozenset[str] = frozenset(),
    ):
        self.model = model
        self.config = config
        #: Raw (pre-noqa, pre-baseline) findings of every non-audit rule;
        #: only populated for audit rules.
        self.raw_findings = raw_findings if raw_findings is not None else []
        #: Baseline fingerprint -> recorded entry info, when a baseline
        #: is in play (RPR015 dead-entry audit); None otherwise.
        self.baseline_entries = baseline_entries
        self.baseline_path = baseline_path
        self.known_codes = known_codes


def _derive_module_name(path: Path) -> str:
    """Dotted module name for *path*, anchored at the ``repro`` package.

    ``src/repro/core/engine.py`` -> ``repro.core.engine``.  Files outside
    a ``repro`` tree (e.g. test fixtures) fall back to their stem, so
    package-scoped rules simply don't bind there unless the fixture is
    laid out like the package.
    """
    parts = list(path.resolve().parts)
    stem_parts = parts[:-1] + [path.stem]
    if "repro" in stem_parts:
        anchor = len(stem_parts) - 1 - stem_parts[::-1].index("repro")
        dotted = [p for p in stem_parts[anchor:] if p != "__init__"]
        return ".".join(dotted) if dotted else "repro"
    return path.stem


class FileContext:
    """Everything a rule needs to inspect one source file."""

    def __init__(
        self,
        path: Path,
        source: str,
        tree: ast.Module,
        config,
        display_path: Optional[str] = None,
    ):
        self.path = path
        self.display_path = display_path or str(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        self.module_name = _derive_module_name(path)
        self.imports = self._collect_imports(tree)

    # -- import-aware name resolution -------------------------------------------

    @staticmethod
    def _collect_imports(tree: ast.Module) -> dict[str, str]:
        table: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    table[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    table[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        return table

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Literal dotted text of a Name/Attribute chain (no resolution)."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain through the import table.

        ``t.time`` with ``import time as t`` resolves to ``time.time``;
        ``count(...)`` with ``from itertools import count`` resolves to
        ``itertools.count``.
        """
        dotted = self.dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        resolved_head = self.imports.get(head, head)
        return f"{resolved_head}.{rest}" if rest else resolved_head

    def in_packages(self, prefixes: tuple[str, ...]) -> bool:
        from repro.analysis.config import module_in

        return module_in(self.module_name, prefixes)

    # -- suppressions ------------------------------------------------------------

    def suppressed(self, finding: Finding) -> bool:
        """True when the finding's line carries a matching noqa comment."""
        if not 1 <= finding.line <= len(self.lines):
            return False
        match = _NOQA_RE.search(self.lines[finding.line - 1])
        if match is None:
            return False
        codes = match.group("codes")
        if codes is None:
            return True
        allowed = {c.strip().upper() for c in codes.split(",") if c.strip()}
        return finding.code.upper() in allowed


# -- drivers ---------------------------------------------------------------------


@dataclass
class AnalysisStats:
    """Run-level accounting for the ``--stats`` line and tests."""

    files_total: int = 0
    files_parsed: int = 0
    files_reanalyzed: int = 0
    cache_hits: int = 0
    rules_run: int = 0
    wall_time_s: float = 0.0
    cache_enabled: bool = False

    def render(self) -> str:
        cached = (
            f", {self.cache_hits} from cache" if self.cache_enabled else ""
        )
        return (
            f"stats: {self.rules_run} rule(s) over {self.files_total} "
            f"file(s) ({self.files_parsed} parsed{cached}, "
            f"{self.files_reanalyzed} re-analyzed) in "
            f"{self.wall_time_s:.2f}s"
        )


@dataclass
class AnalysisReport:
    """Findings plus the incremental-run metadata behind them."""

    findings: list[Finding]
    stats: AnalysisStats
    #: Display paths in the dirty set's reverse import closure — the
    #: files whose findings could have changed this run.
    analyzed_paths: list[str]


def _parse(path: Path, display: str):
    """(source, tree) or a one-element RPR000 finding list."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        return None, [
            Finding(
                code=PARSE_ERROR_CODE,
                path=display,
                line=getattr(exc, "lineno", None) or 1,
                col=1,
                message=f"could not analyze file: {exc}",
            )
        ]
    return (source, tree), []


def _split_rules(rules: Optional[Iterable[Rule]]):
    from repro.analysis.registry import all_rules

    rules_list = list(rules) if rules is not None else all_rules()
    file_rules = [r for r in rules_list if not isinstance(r, ProjectRule)]
    project_rules = [
        r for r in rules_list if isinstance(r, ProjectRule) and not r.audit
    ]
    audit_rules = [
        r for r in rules_list if isinstance(r, ProjectRule) and r.audit
    ]
    return rules_list, file_rules, project_rules, audit_rules


def analyze_file(
    path: Path,
    config,
    rules: Optional[Iterable[Rule]] = None,
    display_path: Optional[str] = None,
) -> list[Finding]:
    """Run every enabled rule over one file; returns sorted findings.

    Project rules run against a single-file model, so class-local
    interprocedural rules (snapshot coverage, event wiring) work here
    too; cross-file edges obviously need :func:`analyze_project`.
    """
    display = display_path or str(path)
    parsed, errors = _parse(path, display)
    if parsed is None:
        return errors
    source, tree = parsed
    ctx = FileContext(path, source, tree, config, display_path=display)
    rules_list, file_rules, project_rules, audit_rules = _split_rules(rules)
    known_codes = frozenset(r.code for r in rules_list)

    raw: list[Finding] = []
    for rule in file_rules:
        if config.rule_enabled(rule.code):
            raw.extend(rule.check(ctx))
    if project_rules or audit_rules:
        from repro.analysis.model.project import ProjectModel
        from repro.analysis.model.summary import extract_summary

        model = ProjectModel([extract_summary(ctx)])
        pctx = ProjectContext(model, config, known_codes=known_codes)
        for rule in project_rules:
            if config.rule_enabled(rule.code):
                raw.extend(rule.check_project(pctx))
        audit_ctx = ProjectContext(
            model,
            config,
            raw_findings=sorted(raw, key=Finding.sort_key),
            known_codes=known_codes,
        )
        for rule in audit_rules:
            if config.rule_enabled(rule.code):
                raw.extend(rule.check_project(audit_ctx))
    findings = [
        f
        for f in raw
        if f.code == "RPR015" or not ctx.suppressed(f)
    ]
    return sorted(findings, key=Finding.sort_key)


def discover_files(paths: Iterable[Path], config) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    out: set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(
                p
                for p in path.rglob("*.py")
                if not any(part.startswith(".") for part in p.parts)
            )
        elif path.suffix == ".py":
            out.add(path)
    if config.exclude:
        out = {
            p
            for p in out
            if not any(p.match(pattern) for pattern in config.exclude)
        }
    return sorted(out)


def analyze_project(
    paths: Iterable[Path],
    config,
    rules: Optional[Iterable[Rule]] = None,
    cache=None,
    changed_paths: Optional[Iterable[str]] = None,
    baseline_entries: Optional[dict] = None,
    baseline_path: Optional[str] = None,
) -> AnalysisReport:
    """Whole-program analysis with optional incremental cache.

    Per-file rules run (and re-run) only for files whose content hash
    missed *cache*; unchanged files contribute their cached summary and
    raw findings.  Project rules then run once over the assembled
    model — their inputs are summaries, so no re-parse is needed — and
    the report's ``analyzed_paths`` records the dirty set's reverse
    import closure: the only files whose findings can differ from the
    previous run.  *changed_paths* (the ``--changed-only`` git set)
    widens the dirty set so a cache carried across commits still
    re-analyzes everything the diff touches.

    Findings are identical to a cold full run by construction: caching
    changes what is recomputed, never what is reported.
    """
    t0 = perf_counter()
    rules_list, file_rules, project_rules, audit_rules = _split_rules(rules)
    known_codes = frozenset(r.code for r in rules_list)
    enabled = [r for r in rules_list if config.rule_enabled(r.code)]

    from repro.analysis.model.project import ProjectModel
    from repro.analysis.model.summary import ModuleSummary, extract_summary

    files = discover_files(paths, config)
    summaries: dict[str, "ModuleSummary"] = {}
    raw_by_file: dict[str, list[Finding]] = {}
    resolved_of: dict[str, str] = {}
    parsed: set[str] = set()

    for path in files:
        display = str(path)
        resolved_of[display] = str(path.resolve())
        digest = None
        if cache is not None:
            try:
                digest = _hash_bytes(path.read_bytes())
            except OSError:
                digest = None
            if digest is not None:
                hit = cache.lookup(display, digest)
                if hit is not None:
                    summaries[display], raw_by_file[display] = hit
                    continue
        parsed_file, errors = _parse(path, display)
        parsed.add(display)
        if parsed_file is None:
            summaries[display] = ModuleSummary.empty(
                _derive_module_name(path), display
            )
            raw_by_file[display] = errors
        else:
            source, tree = parsed_file
            ctx = FileContext(path, source, tree, config, display_path=display)
            raw: list[Finding] = []
            for rule in file_rules:
                if config.rule_enabled(rule.code):
                    raw.extend(rule.check(ctx))
            raw.sort(key=Finding.sort_key)
            summaries[display] = extract_summary(ctx)
            raw_by_file[display] = raw
        if cache is not None and digest is not None:
            cache.store(
                display, digest, summaries[display], raw_by_file[display]
            )

    model = ProjectModel(summaries.values())

    # Dirty set: everything re-parsed this run plus everything the VCS
    # diff names; its reverse import closure is the re-analysis scope.
    dirty_displays = set(parsed)
    if changed_paths is not None:
        changed_resolved = {str(Path(p).resolve()) for p in changed_paths}
        for display in sorted(summaries):
            if resolved_of.get(display) in changed_resolved:
                dirty_displays.add(display)
    dirty_modules = {summaries[d].module for d in dirty_displays}
    closure = model.reverse_closure(sorted(dirty_modules))
    analyzed_paths = sorted(
        display
        for display, summary in summaries.items()
        if summary.module in closure
    )

    pctx = ProjectContext(model, config, known_codes=known_codes)
    project_raw: list[Finding] = []
    for rule in sorted(project_rules, key=lambda r: r.code):
        if config.rule_enabled(rule.code):
            project_raw.extend(rule.check_project(pctx))

    all_raw = sorted(
        [f for raws in raw_by_file.values() for f in raws] + project_raw,
        key=Finding.sort_key,
    )
    audit_ctx = ProjectContext(
        model,
        config,
        raw_findings=all_raw,
        baseline_entries=baseline_entries,
        baseline_path=baseline_path,
        known_codes=known_codes,
    )
    audit_raw: list[Finding] = []
    for rule in sorted(audit_rules, key=lambda r: r.code):
        if config.rule_enabled(rule.code):
            audit_raw.extend(rule.check_project(audit_ctx))

    noqa_by_path: dict[str, dict[int, Optional[frozenset[str]]]] = {}
    for display in sorted(summaries):
        noqa_by_path[display] = {
            line: None if codes is None else frozenset(codes)
            for line, codes in summaries[display].noqa
        }

    def _suppressed(finding: Finding) -> bool:
        if finding.code == "RPR015":
            return False  # a suppression cannot vouch for itself
        table = noqa_by_path.get(finding.path)
        if table is None or finding.line not in table:
            return False
        codes = table[finding.line]
        return codes is None or finding.code.upper() in codes

    findings = sorted(
        (f for f in all_raw + audit_raw if not _suppressed(f)),
        key=Finding.sort_key,
    )

    if cache is not None:
        cache.prune(set(summaries))
        cache.save()

    stats = AnalysisStats(
        files_total=len(files),
        files_parsed=len(parsed),
        files_reanalyzed=len(analyzed_paths),
        cache_hits=getattr(cache, "hits", 0) if cache is not None else 0,
        rules_run=len(enabled),
        wall_time_s=perf_counter() - t0,
        cache_enabled=cache is not None,
    )
    return AnalysisReport(
        findings=findings, stats=stats, analyzed_paths=analyzed_paths
    )


def _hash_bytes(data: bytes) -> str:
    import hashlib

    return hashlib.sha256(data).hexdigest()


def analyze_paths(
    paths: Iterable[Path],
    config,
    rules: Optional[Iterable[Rule]] = None,
) -> list[Finding]:
    """Analyze every ``.py`` file under *paths*; returns sorted findings."""
    return analyze_project(paths, config, rules=rules).findings
