"""Command-line interface: ``python -m repro.analysis [paths] ...``.

Exit codes: ``0`` clean, ``1`` findings reported, ``2`` usage or
environment error (unreadable baseline, unknown rule code).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    filter_baselined,
    load_baseline,
    write_baseline,
)
from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import analyze_paths
from repro.analysis.registry import all_rules
from repro.errors import ConfigError

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism & purity linter for the repro simulator.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        default=None,
        metavar="PATH",
        help=(
            "suppress findings recorded in this baseline file "
            f"(default path when given bare: {DEFAULT_BASELINE})"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        default=None,
        metavar="PATH",
        help="write current findings to a baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (e.g. RPR001,RPR004)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    out = sys.stdout

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            out.write(f"{rule.code}  {rule.name}\n    {rule.description}\n")
        return EXIT_CLEAN

    select = None
    if args.select:
        select = frozenset(c.strip().upper() for c in args.select.split(",") if c.strip())
        known = {rule.code for rule in rules}
        unknown = select - known
        if unknown:
            sys.stderr.write(f"error: unknown rule code(s): {sorted(unknown)}\n")
            return EXIT_ERROR
    config = AnalysisConfig(select=select)

    findings = analyze_paths([Path(p) for p in args.paths], config)

    if args.write_baseline is not None:
        count = write_baseline(Path(args.write_baseline), findings)
        out.write(
            f"wrote baseline {args.write_baseline} "
            f"({count} finding(s) grandfathered)\n"
        )
        return EXIT_CLEAN

    suppressed = 0
    if args.baseline is not None:
        try:
            baseline = load_baseline(Path(args.baseline))
        except ConfigError as exc:
            sys.stderr.write(f"error: {exc}\n")
            return EXIT_ERROR
        findings, suppressed = filter_baselined(findings, baseline)

    if args.format == "json":
        from repro.analysis.reporters import render_json as render
    else:
        from repro.analysis.reporters import render_text as render
    out.write(render(findings, suppressed) + "\n")
    return EXIT_FINDINGS if findings else EXIT_CLEAN
