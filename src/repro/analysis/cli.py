"""Command-line interface: ``python -m repro.analysis [paths] ...``.

Exit codes: ``0`` clean, ``1`` findings reported, ``2`` usage or
environment error (unreadable baseline, unknown rule code, git failure
under ``--changed-only``).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    filter_baselined,
    load_baseline_entries,
    write_baseline,
)
from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import analyze_project
from repro.analysis.model.cache import (
    DEFAULT_CACHE,
    AnalysisCache,
    analysis_signature,
)
from repro.analysis.registry import all_rules
from repro.errors import ConfigError

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism & purity linter for the repro simulator.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        default=None,
        metavar="PATH",
        help=(
            "suppress findings recorded in this baseline file "
            f"(default path when given bare: {DEFAULT_BASELINE})"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        nargs="?",
        const=str(DEFAULT_BASELINE),
        default=None,
        metavar="PATH",
        help="write current findings to a baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (e.g. RPR001,RPR004)",
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const=str(DEFAULT_CACHE),
        default=None,
        metavar="PATH",
        help=(
            "reuse per-file summaries and findings keyed by content hash "
            f"(default path when given bare: {DEFAULT_CACHE})"
        ),
    )
    parser.add_argument(
        "--changed-only",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help=(
            "treat files changed vs. REF (git diff + untracked; default "
            "HEAD) as dirty; with --cache, only their reverse import "
            "closure is re-analyzed — the report still covers everything"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print a run-summary line (rules, files, cache hits) to stderr",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _git_changed_files(ref: str) -> list[str]:
    """Changed-vs-*ref* plus untracked paths; raises ConfigError on git failure."""
    out: list[str] = []
    for cmd in (
        ["git", "diff", "--name-only", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            detail = getattr(exc, "stderr", "") or str(exc)
            raise ConfigError(
                f"--changed-only needs a working git ({' '.join(cmd)}): "
                f"{detail.strip()}"
            ) from None
        out.extend(line for line in proc.stdout.splitlines() if line.strip())
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    out = sys.stdout

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            out.write(f"{rule.code}  {rule.name}\n    {rule.description}\n")
        return EXIT_CLEAN

    select = None
    if args.select:
        select = frozenset(c.strip().upper() for c in args.select.split(",") if c.strip())
        known = {rule.code for rule in rules}
        unknown = select - known
        if unknown:
            sys.stderr.write(f"error: unknown rule code(s): {sorted(unknown)}\n")
            return EXIT_ERROR
    config = AnalysisConfig(select=select)

    baseline_entries = None
    if args.baseline is not None:
        try:
            baseline_entries = load_baseline_entries(Path(args.baseline))
        except ConfigError as exc:
            sys.stderr.write(f"error: {exc}\n")
            return EXIT_ERROR

    changed_paths = None
    if args.changed_only is not None:
        try:
            changed_paths = _git_changed_files(args.changed_only)
        except ConfigError as exc:
            sys.stderr.write(f"error: {exc}\n")
            return EXIT_ERROR

    cache = None
    if args.cache is not None:
        signature = analysis_signature(config, [r.code for r in rules])
        cache = AnalysisCache.load(Path(args.cache), signature)

    report = analyze_project(
        [Path(p) for p in args.paths],
        config,
        rules=rules,
        cache=cache,
        changed_paths=changed_paths,
        baseline_entries=baseline_entries,
        baseline_path=args.baseline,
    )
    findings = report.findings
    if args.stats:
        sys.stderr.write(report.stats.render() + "\n")

    if args.write_baseline is not None:
        count = write_baseline(Path(args.write_baseline), findings)
        out.write(
            f"wrote baseline {args.write_baseline} "
            f"({count} finding(s) grandfathered)\n"
        )
        return EXIT_CLEAN

    suppressed = 0
    if baseline_entries is not None:
        findings, suppressed = filter_baselined(findings, set(baseline_entries))

    if args.format == "json":
        from repro.analysis.reporters import render_json

        rendered = render_json(findings, suppressed)
    elif args.format == "sarif":
        from repro.analysis.reporters import render_sarif

        rendered = render_sarif(findings, rules=rules, suppressed_count=suppressed)
    else:
        from repro.analysis.reporters import render_text

        rendered = render_text(findings, suppressed)
    out.write(rendered + "\n")
    return EXIT_FINDINGS if findings else EXIT_CLEAN
