"""Analysis configuration: which rules apply where.

The rules are repo-specific, so their scoping is too: determinism rules
only bind inside the simulator packages (an experiment CLI may read the
wall clock to report elapsed time; the DRAM model may not), and the
``print`` ban exempts the modules whose job is producing output.

Scopes are expressed as dotted module prefixes matched against the
module name derived from each file's path (``src/repro/core/engine.py``
-> ``repro.core.engine``), so the config keeps working when the analyzer
is pointed at a sub-tree or a test fixture laid out like the package.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def module_in(module: str, prefixes: tuple[str, ...]) -> bool:
    """True when *module* equals or lives under any dotted prefix."""
    return any(
        module == p or module.startswith(p + ".") for p in prefixes
    )


@dataclass(frozen=True)
class AnalysisConfig:
    """Scoping knobs for the rule set (defaults match this repo)."""

    #: Packages whose code must be a pure function of its inputs —
    #: RPR001 (no wall clock / unseeded randomness) binds here.
    pure_packages: tuple[str, ...] = (
        "repro.core",
        "repro.dram",
        "repro.os",
        "repro.cpu",
        "repro.workloads",
        "repro.telemetry",
    )

    #: Engine/controller packages where heap ordering feeds event order —
    #: RPR004 (heap tie-breaks) binds here.
    heap_packages: tuple[str, ...] = (
        "repro.core",
        "repro.dram",
        "repro.os",
    )

    #: Modules allowed to drive the event loop (RPR008 exempts these;
    #: everything else in the pure packages runs *inside* callbacks and
    #: must never re-enter ``engine.run``).
    engine_driver_modules: tuple[str, ...] = (
        "repro.core.engine",
        "repro.core.system",
        "repro.core.simulator",
        "repro.bench",
    )

    #: Reporter/CLI modules exempt from the ``print`` ban (RPR007).
    print_exempt: tuple[str, ...] = (
        "repro.analysis",
        "repro.experiments.report",
    )

    #: Packages whose ``engine.schedule*`` wiring feeds simulation event
    #: order — RPR011 (snapshot coverage) and RPR012 (event wiring) bind
    #: here.  Driver/bench code outside these packages may schedule
    #: freely.
    event_packages: tuple[str, ...] = (
        "repro.core",
        "repro.dram",
        "repro.os",
        "repro.cpu",
        "repro.telemetry",
    )

    #: Modules documented to rely on the same-cycle bucket-insertion-
    #: order invariant (PR 4: same-cycle engine bucket insertion order
    #: *is* ChannelBus arbitration order).  Same-cycle scheduling —
    #: ``schedule(0, ...)`` / ``schedule_at(now, ...)`` — anywhere else
    #: is flagged by RPR012: a new module silently joining the
    #: arbitration order is exactly how ordering bugs ship.
    order_exempt_modules: tuple[str, ...] = (
        "repro.core.engine",
        "repro.core.system",
        "repro.core.simulator",
        "repro.dram.controller",
        "repro.dram.refresh",
    )

    #: Methods whose ``self.X`` assignments do not count as runtime
    #: mutation for RPR011 snapshot coverage: construction, the restore
    #: half of the protocol, and deserialization re-create state rather
    #: than mutating it mid-run.
    snapshot_exempt_methods: tuple[str, ...] = (
        "__init__",
        "__post_init__",
        "__setstate__",
        "restore_state",
        "from_dict",
    )

    #: Restrict the run to these codes (``None`` = every registered rule).
    select: frozenset[str] | None = None

    #: File name globs never analyzed.
    exclude: tuple[str, ...] = field(default=())

    def rule_enabled(self, code: str) -> bool:
        return self.select is None or code in self.select
