"""Repo-specific static analysis: determinism & purity linting.

The run pipeline treats a simulation as a pure, content-hashed function
``RunSpec -> RunResult`` (see :mod:`repro.core.runspec`): the disk cache
and the ``ProcessPoolExecutor`` fan-out are only sound if nothing in the
simulator depends on process-global state, wall-clock time, or unseeded
randomness, and if every event ordering is fully deterministic.  Those
invariants used to rest on convention; this package makes them
machine-checked.

Entry points
------------

``python -m repro.analysis [paths] [--format json|sarif] [--cache]
[--changed-only] [--baseline ...]``
    CLI used by CI and developers (see :mod:`repro.analysis.cli`).
:func:`analyze_paths`
    Library API: run every registered rule over a set of files/dirs.
:func:`analyze_project`
    Same, but returns the full :class:`AnalysisReport` (stats, analyzed
    paths) and accepts the incremental cache.

The rule catalog (``RPR001`` .. ``RPR015``) lives in
:mod:`repro.analysis.rules`; per-file rules see one AST at a time while
project rules (``RPR011+``) run over the whole-program model in
:mod:`repro.analysis.model`.  Suppressions use ``# repro: noqa[CODE]``
comments and a checked-in baseline file grandfathers pre-existing
findings (:mod:`repro.analysis.baseline`); RPR015 audits both for
staleness.
"""

from __future__ import annotations

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import (
    AnalysisReport,
    AnalysisStats,
    FileContext,
    Finding,
    ProjectContext,
    ProjectRule,
    Rule,
    analyze_file,
    analyze_paths,
    analyze_project,
)
from repro.analysis.registry import all_rules, register

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "AnalysisStats",
    "FileContext",
    "Finding",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_project",
    "register",
]
