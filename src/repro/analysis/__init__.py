"""Repo-specific static analysis: determinism & purity linting.

The run pipeline treats a simulation as a pure, content-hashed function
``RunSpec -> RunResult`` (see :mod:`repro.core.runspec`): the disk cache
and the ``ProcessPoolExecutor`` fan-out are only sound if nothing in the
simulator depends on process-global state, wall-clock time, or unseeded
randomness, and if every event ordering is fully deterministic.  Those
invariants used to rest on convention; this package makes them
machine-checked.

Entry points
------------

``python -m repro.analysis [paths] [--format json] [--baseline ...]``
    CLI used by CI and developers (see :mod:`repro.analysis.cli`).
:func:`analyze_paths`
    Library API: run every registered rule over a set of files/dirs.

The rule catalog (``RPR001`` .. ``RPR008``) lives in
:mod:`repro.analysis.rules`; suppressions use ``# repro: noqa[CODE]``
comments and a checked-in baseline file grandfathers pre-existing
findings (:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import (
    FileContext,
    Finding,
    Rule,
    analyze_file,
    analyze_paths,
)
from repro.analysis.registry import all_rules, register

__all__ = [
    "AnalysisConfig",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "register",
]
