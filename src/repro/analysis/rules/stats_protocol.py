"""RPR009: ``*Stats`` dataclasses opt into the telemetry snapshot protocol.

The :class:`~repro.telemetry.registry.MetricsRegistry` flattens every
registered stats object through the uniform ``snapshot()``/``to_dict()``
protocol that :class:`~repro.telemetry.stats.StatsBase` derives from the
dataclass field list.  A stats container that skips the mixin silently
falls out of the metric tree (the registry would register it as an opaque
value), so the rule makes the protocol structural: any dataclass named
``*Stats`` in the simulator packages must inherit ``StatsBase``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.registry import register

_DATACLASS_DECORATORS = {"dataclass", "dataclasses.dataclass"}
_MIXIN = "StatsBase"


def _is_dataclass(ctx: FileContext, node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if (ctx.resolve(target) or "") in _DATACLASS_DECORATORS:
            return True
    return False


def _base_names(ctx: FileContext, node: ast.ClassDef) -> set[str]:
    names = set()
    for base in node.bases:
        dotted = ctx.resolve(base) or ctx.dotted_name(base) or ""
        names.add(dotted.rsplit(".", 1)[-1])
    return names


@register
class StatsProtocolRule(Rule):
    code = "RPR009"
    name = "stats-snapshot-protocol"
    description = (
        "dataclasses named *Stats inherit telemetry.StatsBase so the "
        "metrics registry can snapshot them uniformly"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_packages(
            ctx.config.pure_packages + ("repro.telemetry",)
        ):
            return
        for node in ast.walk(ctx.tree):
            if (
                not isinstance(node, ast.ClassDef)
                or not node.name.endswith("Stats")
                or not _is_dataclass(ctx, node)
            ):
                continue
            if _MIXIN not in _base_names(ctx, node):
                yield self.finding(
                    ctx,
                    node,
                    f"stats dataclass {node.name} does not inherit "
                    f"{_MIXIN}; without the snapshot protocol the metrics "
                    "registry cannot flatten it into dotted metric names",
                )
