"""RPR015: suppressions must stay honest.

A ``# repro: noqa[...]`` comment or a baseline fingerprint is a debt
record: it says "this violation is known and accepted".  When the code
it covered is fixed or deleted, the record outlives the debt — and a
stale suppression is worse than none, because the next genuine
violation on that line (or matching that fingerprint) is silently
swallowed.  This audit runs after every other rule, against the *raw*
(pre-suppression) finding set, and reports:

* noqa comments none of whose codes matched any finding on their line
  (per stale code, so ``noqa[RPR004,RPR011]`` with only RPR004 firing
  names RPR011 as removable);
* noqa codes that name no registered rule (typo'd suppressions never
  suppress anything);
* baseline entries whose fingerprint matches no current raw finding
  (dead grandfather records), reported at the baseline file.

Scope guards keep the audit sound: per-code checks only run for rules
actually enabled this run, blanket ``# repro: noqa`` comments are only
audited on full-rule-set runs, and the baseline audit only runs when a
baseline was loaded.  RPR015 findings are exempt from noqa suppression
(a suppression cannot vouch for itself); accept one by deleting the
stale record, or grandfather it in the baseline.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import Finding, ProjectContext, ProjectRule
from repro.analysis.registry import register


@register
class StaleSuppressionRule(ProjectRule):
    code = "RPR015"
    name = "stale-suppression-audit"
    description = (
        "noqa comments and baseline entries must match a live finding; "
        "stale suppressions hide the next real violation"
    )
    audit = True

    def check_project(self, pctx: ProjectContext) -> Iterator[Finding]:
        yield from self._audit_noqa(pctx)
        yield from self._audit_baseline(pctx)

    def _audit_noqa(self, pctx: ProjectContext) -> Iterator[Finding]:
        model, config = pctx.model, pctx.config
        fired: dict[tuple[str, int], set[str]] = {}
        for finding in pctx.raw_findings:
            fired.setdefault((finding.path, finding.line), set()).add(
                finding.code
            )
        full_run = config.select is None
        for module in sorted(model.modules):
            summary = model.modules[module]
            for line, codes in summary.noqa:
                live = fired.get((summary.path, line), set())
                if codes is None:
                    if full_run and not live:
                        yield self.finding_at(
                            summary.path,
                            line,
                            1,
                            "blanket '# repro: noqa' suppresses no finding "
                            "on this line; remove it (stale suppressions "
                            "swallow the next real violation)",
                        )
                    continue
                for code in codes:
                    if code == self.code:
                        continue  # a suppression cannot vouch for itself
                    if code not in pctx.known_codes:
                        yield self.finding_at(
                            summary.path,
                            line,
                            1,
                            f"suppression names unknown rule code {code}; "
                            "it suppresses nothing — fix the code or remove "
                            "it",
                        )
                        continue
                    if not config.rule_enabled(code):
                        continue  # not checked this run: unknowable
                    if code not in live:
                        yield self.finding_at(
                            summary.path,
                            line,
                            1,
                            f"suppression for {code} no longer matches any "
                            "finding on this line; remove the stale noqa "
                            "code",
                        )

    def _audit_baseline(self, pctx: ProjectContext) -> Iterator[Finding]:
        if pctx.baseline_entries is None or pctx.baseline_path is None:
            return
        from repro.analysis.baseline import fingerprint_findings

        live = {fp for _, fp in fingerprint_findings(pctx.raw_findings)}
        for fingerprint in sorted(pctx.baseline_entries):
            if fingerprint in live:
                continue
            info = pctx.baseline_entries[fingerprint]
            code = info.get("code", "?") if isinstance(info, dict) else "?"
            path = info.get("path", "?") if isinstance(info, dict) else "?"
            yield self.finding_at(
                pctx.baseline_path,
                1,
                1,
                f"baseline entry {fingerprint} ({code} in {path}) matches "
                "no current finding; the violation is fixed — remove the "
                "dead entry (re-run --write-baseline)",
            )
