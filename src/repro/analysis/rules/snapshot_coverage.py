"""RPR011: every runtime-mutated attribute round-trips through snapshots.

The checkpoint/restore discipline (PR 6) and the content-hashed cache
(PR 1) both assume the state protocol is *complete*: a class whose
``snapshot_state``/``to_dict`` omits a field that mutates mid-run
produces checkpoints that restore into a silently different simulator —
the state-drift bug class that checkpoint fuzzing only catches
probabilistically, because the dropped field must both diverge before
the barrier and matter after it.

Statically the invariant is checkable: any ``self.X`` assignment outside
construction/restore marks ``X`` as runtime state, and the effective
key set of the class (its own literal snapshot/serialization keys plus
every resolvable base's, unioned along the inheritance chain by the
project model) must contain it.  Classes whose state methods are built
dynamically (helper calls, computed keys) are out of static reach and
skipped, exactly like RPR010's literal-body restriction.

Attributes that are deliberately rebuilt rather than captured (derived
caches, wiring references re-established by the owner) are declared at
their first mutation site with ``# repro: noqa[RPR011] <why>`` — the
not-captured contract stays visible in the diff that creates it.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.config import module_in
from repro.analysis.engine import Finding, ProjectContext, ProjectRule
from repro.analysis.registry import register


@register
class SnapshotCoverageRule(ProjectRule):
    code = "RPR011"
    name = "snapshot-coverage"
    description = (
        "attributes assigned outside __init__/restore in snapshottable "
        "simulator classes must appear in the snapshot/serialization key "
        "set (state drift otherwise)"
    )

    def check_project(self, pctx: ProjectContext) -> Iterator[Finding]:
        model, config = pctx.model, pctx.config
        exempt_methods = set(config.snapshot_exempt_methods)
        for key in sorted(model.classes):
            module, cls = model.classes[key]
            if not module_in(module, config.pure_packages):
                continue
            keys, analyzable = model.effective_state_keys(module, cls)
            if not analyzable or keys is None:
                continue
            path = model.path_of[module]
            for attr in sorted(cls.attr_sites):
                if attr in keys:
                    continue
                sites = [
                    (method, line)
                    for method, line in cls.attr_sites[attr]
                    if method not in exempt_methods
                ]
                if not sites:
                    continue
                method, line = min(sites, key=lambda site: (site[1], site[0]))
                yield self.finding_at(
                    path,
                    line,
                    1,
                    f"attribute '{attr}' of {key} is assigned in "
                    f"{method}() but missing from its snapshot/serialization "
                    "key set; a checkpoint taken after this line restores "
                    "into a diverged simulator (state drift) — capture it in "
                    "snapshot_state, or mark this site "
                    "'# repro: noqa[RPR011] <why rebuilt>' if it is derived "
                    "state the restore path reconstructs",
                )
