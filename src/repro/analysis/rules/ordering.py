"""RPR003/RPR004: event and iteration order must be explicit.

The engine breaks event-time ties by insertion order, so *everything*
feeding insertion order must itself be deterministic.  Iterating a bare
``set`` hands ordering to the hash function (and, for strings, to
``PYTHONHASHSEED``); pushing heap items without a tie-break key hands it
to object identity.  Both are invisible in tests that only run once.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.registry import register

_SET_FACTORIES = {"set", "frozenset"}


def _iter_positions(tree: ast.Module) -> Iterator[ast.expr]:
    """Expressions used as the iterable of a loop or comprehension."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter


@register
class BareSetIterationRule(Rule):
    code = "RPR003"
    name = "no-bare-set-iteration"
    description = (
        "iterating a bare set (or dict .keys()) feeds hash order into the "
        "simulation; wrap in sorted() or iterate the dict directly"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for iterable in _iter_positions(ctx.tree):
            if isinstance(iterable, (ast.Set, ast.SetComp)):
                yield self.finding(
                    ctx,
                    iterable,
                    "iteration over a set literal has hash-dependent order; "
                    "wrap in sorted()",
                )
            elif isinstance(iterable, ast.Call):
                resolved = ctx.resolve(iterable.func) or ""
                if resolved in _SET_FACTORIES:
                    yield self.finding(
                        ctx,
                        iterable,
                        f"iteration over {resolved}(...) has hash-dependent "
                        "order; wrap in sorted()",
                    )
                elif (
                    isinstance(iterable.func, ast.Attribute)
                    and iterable.func.attr == "keys"
                    and not iterable.args
                ):
                    yield self.finding(
                        ctx,
                        iterable,
                        "iterate the dict directly (insertion-ordered) or use "
                        "sorted(d) when the order feeds events or hashing; "
                        "bare .keys() hides which one was meant",
                    )


def _local_class_assignments(fn: ast.AST) -> dict[str, str]:
    """Map local names to the dotted callable they were assigned from."""
    table: dict[str, str] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = node.value.func
            parts: list[str] = []
            while isinstance(callee, ast.Attribute):
                parts.append(callee.attr)
                callee = callee.value
            if isinstance(callee, ast.Name):
                parts.append(callee.id)
                dotted = ".".join(reversed(parts))
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        table[target.id] = dotted
    return table


@register
class HeapTieBreakRule(Rule):
    code = "RPR004"
    name = "heap-tie-break"
    description = (
        "heap items in engine/controller code need an explicit tie-break "
        "(a (key, seq, ...) tuple or a class defining __lt__)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_packages(ctx.config.heap_packages):
            return
        classes_with_lt = {
            node.name
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
            and any(
                isinstance(member, ast.FunctionDef) and member.name == "__lt__"
                for member in node.body
            )
        }
        parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        scope_assignments: dict[ast.AST, dict[str, str]] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func) or ""
            if resolved not in ("heapq.heappush", "heapq.heappushpop"):
                continue
            if len(node.args) < 2:
                continue
            scope: ast.AST = node
            while scope in parents and not isinstance(
                scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
            ):
                scope = parents[scope]
            if scope not in scope_assignments:
                scope_assignments[scope] = _local_class_assignments(scope)
            yield from self._check_item(
                ctx, node, node.args[1], classes_with_lt, scope_assignments[scope]
            )

    def _check_item(
        self,
        ctx: FileContext,
        call: ast.Call,
        item: ast.expr,
        classes_with_lt: set[str],
        local_calls: dict[str, str],
    ) -> Iterator[Finding]:
        if isinstance(item, ast.Tuple):
            if len(item.elts) < 2:
                yield self.finding(
                    ctx,
                    call,
                    "heap tuple has a single element — add an explicit "
                    "tie-break (e.g. a monotonically increasing sequence "
                    "number) so equal keys keep insertion order",
                )
            return
        cls = self._constructed_class(item, local_calls)
        if cls is not None and cls in classes_with_lt:
            return
        yield self.finding(
            ctx,
            call,
            "heap item has no verifiable tie-break; push a (key, seq, item) "
            "tuple or an instance of a class defining __lt__ over "
            "(key, seq)",
        )

    @staticmethod
    def _constructed_class(
        item: ast.expr, local_calls: dict[str, str]
    ) -> Optional[str]:
        if isinstance(item, ast.Call) and isinstance(item.func, ast.Name):
            return item.func.id
        if isinstance(item, ast.Name):
            dotted = local_calls.get(item.id)
            if dotted is not None:
                return dotted.rsplit(".", 1)[-1]
        return None
