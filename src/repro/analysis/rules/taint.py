"""RPR013: determinism impurity propagates through the call graph.

RPR001 catches a pure-package function that calls ``time.time()``
directly.  It cannot catch the same poison arriving through a helper —
a pure function calling a utility that calls a reporter that reads the
wall clock is just as fatal to ``RunSpec -> RunResult`` purity, and
two hops is exactly where review stops looking.

This rule seeds taint at every function containing a directly banned
call (the RPR001 tables), propagates it backwards over the project
call graph (callee to caller, BFS, deterministic order), and flags
every *pure-package* function whose taint is transitive (distance two
or more — the distance-one functions are RPR001's findings, reported
once, not twice).  The message spells out the shortest call chain down
to the banned primitive so the fix site is obvious.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.analysis.config import module_in
from repro.analysis.engine import Finding, ProjectContext, ProjectRule
from repro.analysis.registry import register


@register
class TransitiveTaintRule(ProjectRule):
    code = "RPR013"
    name = "transitive-determinism-taint"
    description = (
        "pure-package functions must not reach wall-clock/entropy calls "
        "through any chain of project calls, not just directly"
    )

    def check_project(self, pctx: ProjectContext) -> Iterator[Finding]:
        model, config = pctx.model, pctx.config
        edges = model.call_edges()
        callers_of: dict[str, list[str]] = {}
        for caller in sorted(edges):
            for callee in edges[caller]:
                callers_of.setdefault(callee, []).append(caller)

        # BFS from directly tainted functions, callee -> caller.  The
        # first (shortest, lexicographically earliest) chain wins; seeds
        # and adjacency are sorted so the result is deterministic.
        distance: dict[str, int] = {}
        via: dict[str, str] = {}
        source: dict[str, str] = {}
        queue: deque[str] = deque()
        for key in sorted(model.functions):
            banned = model.functions[key].banned_calls
            if banned:
                distance[key] = 1
                source[key] = sorted(banned)[0]
                queue.append(key)
        while queue:
            func = queue.popleft()
            for caller in callers_of.get(func, ()):
                if caller not in distance:
                    distance[caller] = distance[func] + 1
                    via[caller] = func
                    source[caller] = source[func]
                    queue.append(caller)

        for key in sorted(distance):
            if distance[key] < 2:
                continue  # direct use: RPR001 already reports it
            module = model.function_module(key)
            if module is None or not module_in(module, config.pure_packages):
                continue
            chain = [key]
            cursor = key
            while cursor in via:
                cursor = via[cursor]
                chain.append(cursor)
            rendered = " -> ".join(chain) + f" -> {source[key]}()"
            yield self.finding_at(
                model.path_of[module],
                model.functions[key].line,
                1,
                f"{key} is transitively nondeterministic: {rendered}; "
                "every value must derive from the RunSpec or a seeded "
                "random.Random, through every call",
            )
