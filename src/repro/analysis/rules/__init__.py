"""Rule catalog.  Importing this package registers every rule.

Per-file rules (syntactic, one AST at a time):

==========  =====================================================================
Code        Invariant
==========  =====================================================================
RPR001      no unseeded randomness or wall clock in simulator packages
RPR002      no module-level mutable state / mutable default arguments
RPR003      no iteration over bare sets (or ``.keys()``) — order must be explicit
RPR004      heap pushes in engine/controller code carry an explicit tie-break
RPR005      serialized dataclasses pair ``to_dict``/``from_dict``, stable fields
RPR006      unit suffixes (``*_ns``/``*_ck``/…) never mixed without conversion
RPR007      no ``print()`` in library code (reporters/CLIs exempt)
RPR008      event callbacks never re-enter ``engine.run()``
RPR009      ``*Stats`` dataclasses inherit the telemetry snapshot mixin
RPR010      ``snapshot_state``/``restore_state`` pair with attribute-backed keys
==========  =====================================================================

Project rules (interprocedural, over the whole-program model in
:mod:`repro.analysis.model`):

==========  =====================================================================
Code        Invariant
==========  =====================================================================
RPR011      runtime-mutated attributes are covered by the snapshot key set
RPR012      same-cycle scheduling only from the documented order-exempt set
RPR013      pure packages are *transitively* free of wall-clock/entropy calls
RPR014      unit suffixes match across call boundaries (argument vs parameter)
RPR015      every noqa comment and baseline entry still matches a live finding
==========  =====================================================================
"""

from repro.analysis.rules import (  # noqa: F401  (side effect: registration)
    determinism,
    event_wiring,
    hygiene,
    ordering,
    serialization,
    snapshot_coverage,
    state,
    stats_protocol,
    suppressions,
    taint,
    unit_flow,
    units,
)
