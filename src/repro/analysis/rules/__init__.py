"""Rule catalog.  Importing this package registers every rule.

==========  =====================================================================
Code        Invariant
==========  =====================================================================
RPR001      no unseeded randomness or wall clock in simulator packages
RPR002      no module-level mutable state / mutable default arguments
RPR003      no iteration over bare sets (or ``.keys()``) — order must be explicit
RPR004      heap pushes in engine/controller code carry an explicit tie-break
RPR005      serialized dataclasses pair ``to_dict``/``from_dict``, stable fields
RPR006      unit suffixes (``*_ns``/``*_ck``/…) never mixed without conversion
RPR007      no ``print()`` in library code (reporters/CLIs exempt)
RPR008      event callbacks never re-enter ``engine.run()``
RPR009      ``*Stats`` dataclasses inherit the telemetry snapshot mixin
==========  =====================================================================
"""

from repro.analysis.rules import (  # noqa: F401  (side effect: registration)
    determinism,
    hygiene,
    ordering,
    serialization,
    state,
    stats_protocol,
    units,
)
