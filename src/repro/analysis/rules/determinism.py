"""RPR001: no unseeded randomness or wall clock in simulator packages.

A simulation is replayed from its content-hashed :class:`RunSpec`; any
value drawn from the process RNG, the wall clock, or the OS entropy pool
silently poisons every cached result.  Seeded ``random.Random(seed)``
instances are the sanctioned source of randomness (the system builder
hands one to each task), so constructing those is allowed — calling the
module-level ``random.*`` functions (which share hidden global state) is
not.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.registry import register

#: Fully-resolved callables that read the wall clock or entropy pool.
_BANNED_CALLS = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "time.monotonic": "wall clock",
    "time.monotonic_ns": "wall clock",
    "time.perf_counter": "wall clock",
    "time.perf_counter_ns": "wall clock",
    "datetime.datetime.now": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "datetime.datetime.today": "wall clock",
    "datetime.date.today": "wall clock",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "host/time-derived UUID",
    "uuid.uuid4": "OS entropy",
    "secrets.token_bytes": "OS entropy",
    "secrets.token_hex": "OS entropy",
    "secrets.randbelow": "OS entropy",
}

#: ``random.*`` members that are safe: seeded-instance construction and
#: pure helpers that don't touch the hidden module-global RNG state.
_RANDOM_ALLOWED = {"random.Random", "random.SystemRandom"}


@register
class UnseededRandomnessRule(Rule):
    code = "RPR001"
    name = "no-unseeded-randomness"
    description = (
        "simulator code must not read the wall clock, OS entropy, or the "
        "module-global random state; use a seeded random.Random instance"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_packages(ctx.config.pure_packages):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            if resolved in _BANNED_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"call to {resolved}() ({_BANNED_CALLS[resolved]}) breaks "
                    "RunSpec -> RunResult purity; derive values from the spec "
                    "or a seeded random.Random",
                )
            elif (
                resolved.startswith("random.")
                and resolved not in _RANDOM_ALLOWED
                and resolved.count(".") == 1
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{resolved}() uses the module-global RNG (process-wide "
                    "hidden state); use a seeded random.Random instance",
                )
