"""RPR014: unit discipline across function boundaries.

RPR006 stops ``window_ck + trfc_ns`` inside one expression; it is blind
the moment the mixed units are separated by a call: a ``*_ns`` value
passed into a ``*_ck`` parameter compiles, runs, and silently scales
every downstream timing decision by the clock ratio.  With the project
model the signature is known, so the same suffix check extends to call
sites: for every call resolving to a project function, each argument
whose expression carries exactly one unit suffix is matched against the
parameter name it binds to (positionally or by keyword), and a suffix
mismatch is flagged at the call site — the place the conversion
belongs.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import Finding, ProjectContext, ProjectRule
from repro.analysis.registry import register
from repro.analysis.rules.units import _suffix_of


@register
class UnitFlowRule(ProjectRule):
    code = "RPR014"
    name = "cross-boundary-unit-flow"
    description = (
        "arguments with a unit suffix must match the unit suffix of the "
        "parameter they bind to at every resolvable call site"
    )

    def check_project(self, pctx: ProjectContext) -> Iterator[Finding]:
        model = pctx.model
        for caller_key in sorted(model.functions):
            fn = model.functions[caller_key]
            module = model.function_module(caller_key)
            if module is None:
                continue
            path = model.path_of[module]
            for site in fn.calls:
                if not site.args:
                    continue
                target_key = model.resolve_call(caller_key, site)
                if target_key is None:
                    continue
                target = model.functions[target_key]
                for arg in site.args:
                    param = None
                    if arg.keyword is not None:
                        if (
                            arg.keyword in target.params
                            or arg.keyword in target.kwonly
                        ):
                            param = arg.keyword
                    elif (
                        arg.position is not None
                        and not target.has_varargs
                        and arg.position < len(target.params)
                    ):
                        param = target.params[arg.position]
                    if param is None:
                        continue
                    param_suffix = _suffix_of(param)
                    if (
                        param_suffix is not None
                        and arg.unit_suffix is not None
                        and param_suffix != arg.unit_suffix
                    ):
                        yield self.finding_at(
                            path,
                            site.line,
                            site.col,
                            f"argument '{arg.display}' ({arg.unit_suffix}) "
                            f"binds to parameter '{param}' ({param_suffix}) "
                            f"of {target_key}; convert via repro.units at "
                            "the call boundary",
                        )
