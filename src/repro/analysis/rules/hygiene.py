"""RPR007/RPR008: library hygiene around I/O and the event loop.

``print`` in library code corrupts machine-readable output (the sweep
runner's workers share stdout with the JSON reporters) — reporters and
CLI ``__main__`` modules are the sanctioned output path.  Re-entering
``engine.run()`` from inside an event callback is the classic
discrete-event-simulator deadlock/corruption bug: the inner loop drains
events the outer loop believes are still pending.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.registry import register

_RUN_METHODS = {"run", "run_until", "step"}


@register
class NoPrintRule(Rule):
    code = "RPR007"
    name = "no-print-in-library"
    description = (
        "library code must not print(); route output through reporters or "
        "a __main__/CLI module"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module = ctx.module_name
        if module.rsplit(".", 1)[-1] in ("__main__", "cli"):
            return
        if ctx.in_packages(ctx.config.print_exempt):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "print() in library code interleaves with worker/reporter "
                    "output; return data and let a reporter or CLI render it",
                )


def _is_engineish(ctx: FileContext, receiver: ast.expr) -> bool:
    """Heuristic: does this expression look like it names the engine?"""
    dotted = ctx.dotted_name(receiver) or ""
    tail = dotted.rsplit(".", 1)[-1]
    return tail in ("engine", "_engine", "eng")


@register
class NoRunReentryRule(Rule):
    code = "RPR008"
    name = "no-engine-reentry"
    description = (
        "event callbacks must not re-enter engine.run()/run_until()/step(); "
        "only the designated driver modules may pump the event loop"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_packages(ctx.config.pure_packages):
            return
        if ctx.module_name in ctx.config.engine_driver_modules:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _RUN_METHODS
                and _is_engineish(ctx, func.value)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"engine.{func.attr}() outside the driver modules "
                    "re-enters the event loop from code that runs inside it; "
                    "schedule follow-up work with engine.schedule() instead",
                )
