"""RPR002: no module-level mutable state or mutable default arguments.

This is the exact shape of the task-id bug PR 1 had to fix: a
process-global ``itertools.count()`` made object identity depend on
allocation history, so a replayed run produced different ids than a
fresh one and broke bit-identical caching.  Mutable module globals leak
state between runs inside one worker process the same way; mutable
default arguments are the classic single-instance-shared-forever trap.

ALL_CAPS names assigned container *literals* are treated as constants by
convention and exempted (lookup tables like ``DENSITY_CONFIGS``); stateful
factory calls (``itertools.count()``, ``collections.deque()``, …) never
are.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.registry import register

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)

#: Constructors producing mutable containers.
_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray"}

#: Constructors producing *stateful* objects — never acceptable at module
#: scope, regardless of naming convention.
_STATEFUL_FACTORIES = {
    "itertools.count",
    "itertools.cycle",
    "collections.deque",
    "collections.Counter",
    "collections.defaultdict",
    "collections.OrderedDict",
}


def _module_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Statements executing at import time (descends into module-level
    ``if``/``try``/``with`` blocks, but not into function/class bodies)."""
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for field in ("body", "orelse", "finalbody", "handlers"):
            children = getattr(stmt, field, [])
            for child in children:
                if isinstance(child, ast.ExceptHandler):
                    stack.extend(child.body)
                elif isinstance(child, ast.stmt):
                    stack.append(child)


def _target_names(stmt: ast.stmt) -> list[str]:
    targets = []
    if isinstance(stmt, ast.Assign):
        nodes = stmt.targets
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        nodes = [stmt.target]
    else:
        return []
    for t in nodes:
        if isinstance(t, ast.Name):
            targets.append(t.id)
        elif isinstance(t, (ast.Tuple, ast.List)):
            targets.extend(e.id for e in t.elts if isinstance(e, ast.Name))
    return targets


def _is_constant_style(name: str) -> bool:
    return name == name.upper() and not name.startswith("__")


@register
class ModuleMutableStateRule(Rule):
    code = "RPR002"
    name = "no-module-mutable-state"
    description = (
        "no mutable globals, module-scope stateful factories "
        "(itertools.count, deque, ...), or mutable default arguments"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_module_scope(ctx)
        yield from self._check_default_args(ctx)

    def _check_module_scope(self, ctx: FileContext) -> Iterator[Finding]:
        for stmt in _module_level_statements(ctx.tree):
            value = getattr(stmt, "value", None)
            if value is None or not isinstance(
                stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)
            ):
                continue
            names = _target_names(stmt)
            if any(n.startswith("__") and n.endswith("__") for n in names):
                continue  # __all__ and friends: mutable by type, constant by law
            label = ", ".join(names) or "<target>"
            if isinstance(value, ast.Call):
                resolved = ctx.resolve(value.func) or ""
                if resolved in _STATEFUL_FACTORIES:
                    yield self.finding(
                        ctx,
                        stmt,
                        f"module-level {resolved}() gives {label!r} process-"
                        "global state; runs replayed from a RunSpec would "
                        "diverge — thread the counter/container through the "
                        "owning object instead",
                    )
                elif resolved in _MUTABLE_FACTORIES and not all(
                    _is_constant_style(n) for n in names
                ):
                    yield self.finding(
                        ctx,
                        stmt,
                        f"module-level mutable {resolved}() assigned to "
                        f"{label!r}; shared mutable globals break run purity",
                    )
            elif isinstance(value, _MUTABLE_LITERALS) and not all(
                _is_constant_style(n) for n in names
            ):
                yield self.finding(
                    ctx,
                    stmt,
                    f"module-level mutable literal assigned to {label!r}; "
                    "shared mutable globals break run purity (use a tuple/"
                    "frozenset, or ALL_CAPS for a true constant table)",
                )

    def _check_default_args(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                bad = isinstance(default, _MUTABLE_LITERALS)
                if isinstance(default, ast.Call):
                    resolved = ctx.resolve(default.func) or ""
                    bad = resolved in _MUTABLE_FACTORIES | _STATEFUL_FACTORIES
                if bad:
                    yield self.finding(
                        ctx,
                        default,
                        "mutable default argument is evaluated once and "
                        "shared across every call; default to None and "
                        "construct inside the function",
                    )
