"""RPR006: unit-suffix discipline for timing arithmetic.

The codebase encodes units in names — ``trfc_ab_ns`` (nanoseconds),
``window_ck`` (CPU cycles), ``period_ps`` (picoseconds) — and converts
once at configuration time via :mod:`repro.units`.  Adding or comparing
two values with *different* unit suffixes in one expression is therefore
almost always a missing conversion (multiplying/dividing is how
conversions are written, so those operators are exempt).  Conversion
calls hide their operands: leaves inside a ``Call`` are not collected,
so ``cpu.cycles(ns(x)) + window_ck`` is clean.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.registry import register

#: Recognized unit suffixes.  Each is its own family: mixing any two in
#: additive arithmetic needs an explicit conversion.
UNIT_SUFFIXES = ("_ps", "_ns", "_us", "_ms", "_ck", "_cycles", "_mhz")

_ADDITIVE = (ast.Add, ast.Sub)


def _suffix_of(name: str) -> str | None:
    for suffix in UNIT_SUFFIXES:
        if name.endswith(suffix):
            return suffix
    return None


def _unit_leaves(node: ast.expr) -> Iterator[tuple[str, str]]:
    """(name, suffix) pairs reachable without crossing a conversion.

    Descends through additive/unary arithmetic only; ``Call`` nodes (unit
    conversions), subscripts into containers, and multiplicative operators
    (the shape conversions take) are boundaries.
    """
    if isinstance(node, (ast.Name, ast.Attribute)):
        leaf = node.id if isinstance(node, ast.Name) else node.attr
        suffix = _suffix_of(leaf)
        if suffix is not None:
            yield leaf, suffix
    elif isinstance(node, ast.BinOp) and isinstance(node.op, _ADDITIVE):
        yield from _unit_leaves(node.left)
        yield from _unit_leaves(node.right)
    elif isinstance(node, ast.UnaryOp):
        yield from _unit_leaves(node.operand)


@register
class UnitSuffixRule(Rule):
    code = "RPR006"
    name = "unit-suffix-discipline"
    description = (
        "values with different unit suffixes (_ns/_ck/...) must not meet in "
        "additive arithmetic or comparisons without a repro.units conversion"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # Report only at the outermost additive/compare node so one mixed
        # chain yields one finding: every additive BinOp nested inside an
        # already-checked expression is recorded as covered.
        covered: set[ast.AST] = set()
        for node in ast.walk(ctx.tree):
            if node in covered:
                continue
            if isinstance(node, ast.BinOp) and isinstance(node.op, _ADDITIVE):
                operands = [node.left, node.right]
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
            else:
                continue
            for operand in operands:
                self._mark_covered(operand, covered)
            yield from self._check_operands(ctx, node, operands)

    @staticmethod
    def _mark_covered(node: ast.expr, covered: set) -> None:
        """Mark additive sub-expressions this check already accounts for,
        descending exactly as far as :func:`_unit_leaves` does (expressions
        behind a Call/Subscript boundary still get their own check)."""
        if isinstance(node, ast.BinOp) and isinstance(node.op, _ADDITIVE):
            covered.add(node)
            UnitSuffixRule._mark_covered(node.left, covered)
            UnitSuffixRule._mark_covered(node.right, covered)
        elif isinstance(node, ast.UnaryOp):
            UnitSuffixRule._mark_covered(node.operand, covered)

    def _check_operands(
        self, ctx: FileContext, node: ast.AST, operands: list[ast.expr]
    ) -> Iterator[Finding]:
        leaves: list[tuple[str, str]] = []
        for operand in operands:
            leaves.extend(_unit_leaves(operand))
        suffixes = {s for _, s in leaves}
        if len(suffixes) > 1:
            names = ", ".join(sorted({n for n, _ in leaves}))
            yield self.finding(
                ctx,
                node,
                f"mixed unit suffixes {sorted(suffixes)} in one expression "
                f"({names}); convert explicitly via repro.units before "
                "combining",
            )
