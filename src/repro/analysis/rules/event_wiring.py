"""RPR012: same-cycle event wiring is a documented, closed club.

PR 4's engine rewrite made a load-bearing promise: events scheduled
into the *same* cycle bucket fire in insertion order, and the DRAM
controller's bus arbitration is exactly that order (dead picks must
keep their slot).  Any module that schedules same-cycle work —
``engine.schedule(0, ...)``, ``engine.schedule_at(now, ...)`` —
silently inserts itself into that arbitration sequence.  The modules
that legitimately do so are enumerated in
``AnalysisConfig.order_exempt_modules``; a new refresh policy or OS
component joining the club must either be added there (a reviewable
config diff) or carry a line-level suppression.

Within the club, discipline still applies: a same-cycle re-entry that
schedules a callback on the *same object* (``self._pick``,
``self._fire``) is the pattern where insertion order is the entire
correctness argument, so the call site must say so — an ``# order:``
(or any comment containing the word "order") on or just above the call
documents why the slot sequence is safe.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.config import module_in
from repro.analysis.engine import Finding, ProjectContext, ProjectRule
from repro.analysis.registry import register


@register
class EventWiringRule(ProjectRule):
    code = "RPR012"
    name = "event-wiring-order"
    description = (
        "same-cycle engine scheduling (delay 0 / schedule_at(now)) only "
        "from order-exempt modules, and same-cycle self-reschedules must "
        "carry an order comment"
    )

    def check_project(self, pctx: ProjectContext) -> Iterator[Finding]:
        model, config = pctx.model, pctx.config
        for module in sorted(model.modules):
            if not module_in(module, config.event_packages):
                continue
            summary = model.modules[module]
            exempt = module_in(module, config.order_exempt_modules)
            for site in summary.schedule_sites:
                if not site.same_cycle:
                    continue
                if not exempt:
                    yield self.finding_at(
                        summary.path,
                        site.line,
                        site.col,
                        f"same-cycle {site.method}() in {module}.{site.owner} "
                        "inserts this module into the engine's same-cycle "
                        "bucket — which IS ChannelBus arbitration order — "
                        "but the module is outside order_exempt_modules; "
                        "schedule with a positive delay, or add the module "
                        "to the documented order-exempt set",
                    )
                elif (
                    site.callback_self_method is not None
                    and not site.has_order_comment
                ):
                    yield self.finding_at(
                        summary.path,
                        site.line,
                        site.col,
                        f"same-cycle re-entry {module}.{site.owner} -> "
                        f"self.{site.callback_self_method} relies on bucket "
                        "insertion order but carries no order comment; "
                        "document the slot sequence ('# order: ...') at the "
                        "call site",
                    )
