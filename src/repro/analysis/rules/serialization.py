"""RPR005: serialized dataclasses pair ``to_dict``/``from_dict`` with
hash-stable field coverage.

Every config/result object round-trips through canonical JSON (see
:mod:`repro.serialize`) and its content hash keys the sweep cache.  A
dataclass with only half the pair can be written but never replayed; a
``to_dict`` that *omits* a declared field silently excludes it from the
content hash, so two different specs collide on one cache entry.  When
``to_dict`` is a plain ``return { ... }`` literal we also require the
field keys in declaration order — reviewable evidence that serialization
tracks the dataclass shape.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.registry import register

_DATACLASS_DECORATORS = {"dataclass", "dataclasses.dataclass"}


def _is_dataclass(ctx: FileContext, node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if (ctx.resolve(target) or "") in _DATACLASS_DECORATORS:
            return True
    return False


def _field_names(node: ast.ClassDef) -> list[str]:
    names = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if not isinstance(stmt.annotation, ast.Subscript) or not (
                isinstance(stmt.annotation.value, ast.Name)
                and stmt.annotation.value.id == "ClassVar"
            ):
                names.append(stmt.target.id)
    return names


def _literal_dict_keys(fn: ast.FunctionDef) -> Optional[list[str]]:
    """Keys of ``return { ... }`` when the body is that simple, else None."""
    returns = [n for n in ast.walk(fn) if isinstance(n, ast.Return)]
    if len(returns) != 1 or not isinstance(returns[0].value, ast.Dict):
        return None
    keys = []
    for key in returns[0].value.keys:
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None  # dynamic keys: out of static reach
        keys.append(key.value)
    return keys


@register
class SerializationPairRule(Rule):
    code = "RPR005"
    name = "serialization-pairing"
    description = (
        "dataclasses in the serialization protocol define both to_dict and "
        "from_dict, and literal to_dict bodies cover every field in "
        "declaration order"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not _is_dataclass(ctx, node):
                continue
            methods = {
                m.name: m for m in node.body if isinstance(m, ast.FunctionDef)
            }
            has_to, has_from = "to_dict" in methods, "from_dict" in methods
            if has_to != has_from:
                missing = "from_dict" if has_to else "to_dict"
                present = "to_dict" if has_to else "from_dict"
                yield self.finding(
                    ctx,
                    node,
                    f"dataclass {node.name} defines {present} but not "
                    f"{missing}; a one-way serializer breaks cache replay",
                )
            if not has_to:
                continue
            keys = _literal_dict_keys(methods["to_dict"])
            if keys is None:
                continue
            fields = _field_names(node)
            missing_fields = [f for f in fields if f not in keys]
            if missing_fields:
                yield self.finding(
                    ctx,
                    methods["to_dict"],
                    f"{node.name}.to_dict omits field(s) "
                    f"{', '.join(missing_fields)}; omitted fields are "
                    "excluded from the content hash, so distinct specs can "
                    "collide on one cache entry",
                )
            else:
                in_field_order = [k for k in keys if k in set(fields)]
                if in_field_order != fields:
                    yield self.finding(
                        ctx,
                        methods["to_dict"],
                        f"{node.name}.to_dict lists fields in a different "
                        "order than the declaration; keep declaration order "
                        "so the serialized shape tracks the dataclass",
                    )
