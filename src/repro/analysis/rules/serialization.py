"""Serialization-protocol rules.

RPR005: serialized dataclasses pair ``to_dict``/``from_dict`` with
hash-stable field coverage.

Every config/result object round-trips through canonical JSON (see
:mod:`repro.serialize`) and its content hash keys the sweep cache.  A
dataclass with only half the pair can be written but never replayed; a
``to_dict`` that *omits* a declared field silently excludes it from the
content hash, so two different specs collide on one cache entry.  When
``to_dict`` is a plain ``return { ... }`` literal we also require the
field keys in declaration order — reviewable evidence that serialization
tracks the dataclass shape.

RPR010: checkpointable classes pair ``snapshot_state``/``restore_state``
with attribute-backed keys.

The checkpoint protocol mirrors the serialization one: a class with only
half the pair can be captured but never resumed (or resumed but never
captured).  When ``snapshot_state`` is a plain ``return { ... }``
literal, every key must name a real instance attribute (``self.X``
assignment or ``__slots__``/dataclass field) — a key naming nothing is
drift between the snapshot and the class shape, which surfaces only as a
``KeyError`` (or silent ghost field) at restore time.  Snapshots built
incrementally or through helpers are out of static reach and skipped,
like non-literal ``to_dict`` bodies.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.registry import register

_DATACLASS_DECORATORS = {"dataclass", "dataclasses.dataclass"}


def _is_dataclass(ctx: FileContext, node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if (ctx.resolve(target) or "") in _DATACLASS_DECORATORS:
            return True
    return False


def _field_names(node: ast.ClassDef) -> list[str]:
    names = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if not isinstance(stmt.annotation, ast.Subscript) or not (
                isinstance(stmt.annotation.value, ast.Name)
                and stmt.annotation.value.id == "ClassVar"
            ):
                names.append(stmt.target.id)
    return names


def _literal_dict_keys(fn: ast.FunctionDef) -> Optional[list[str]]:
    """Keys of ``return { ... }`` when the body is that simple, else None."""
    returns = [n for n in ast.walk(fn) if isinstance(n, ast.Return)]
    if len(returns) != 1 or not isinstance(returns[0].value, ast.Dict):
        return None
    keys = []
    for key in returns[0].value.keys:
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None  # dynamic keys: out of static reach
        keys.append(key.value)
    return keys


@register
class SerializationPairRule(Rule):
    code = "RPR005"
    name = "serialization-pairing"
    description = (
        "dataclasses in the serialization protocol define both to_dict and "
        "from_dict, and literal to_dict bodies cover every field in "
        "declaration order"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not _is_dataclass(ctx, node):
                continue
            methods = {
                m.name: m for m in node.body if isinstance(m, ast.FunctionDef)
            }
            has_to, has_from = "to_dict" in methods, "from_dict" in methods
            if has_to != has_from:
                missing = "from_dict" if has_to else "to_dict"
                present = "to_dict" if has_to else "from_dict"
                yield self.finding(
                    ctx,
                    node,
                    f"dataclass {node.name} defines {present} but not "
                    f"{missing}; a one-way serializer breaks cache replay",
                )
            if not has_to:
                continue
            keys = _literal_dict_keys(methods["to_dict"])
            if keys is None:
                continue
            fields = _field_names(node)
            missing_fields = [f for f in fields if f not in keys]
            if missing_fields:
                yield self.finding(
                    ctx,
                    methods["to_dict"],
                    f"{node.name}.to_dict omits field(s) "
                    f"{', '.join(missing_fields)}; omitted fields are "
                    "excluded from the content hash, so distinct specs can "
                    "collide on one cache entry",
                )
            else:
                in_field_order = [k for k in keys if k in set(fields)]
                if in_field_order != fields:
                    yield self.finding(
                        ctx,
                        methods["to_dict"],
                        f"{node.name}.to_dict lists fields in a different "
                        "order than the declaration; keep declaration order "
                        "so the serialized shape tracks the dataclass",
                    )


def _slot_names(node: ast.ClassDef) -> list[str]:
    """Names in a literal ``__slots__`` tuple/list, if any."""
    names = []
    for stmt in node.body:
        if (
            isinstance(stmt, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets
            )
            and isinstance(stmt.value, (ast.Tuple, ast.List))
        ):
            for elt in stmt.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    names.append(elt.value)
    return names


def _self_attributes(node: ast.ClassDef) -> set[str]:
    """Every attribute assigned as ``self.X`` in any method of the class
    (not just ``__init__`` — components also acquire state in ``attach``/
    ``bind``-style wiring hooks)."""
    attrs: set[str] = set()
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not method.args.args:
            continue
        self_name = method.args.args[0].arg
        for sub in ast.walk(method):
            target = None
            if isinstance(sub, ast.Assign):
                for t in sub.targets:
                    for leaf in ast.walk(t):
                        if (
                            isinstance(leaf, ast.Attribute)
                            and isinstance(leaf.value, ast.Name)
                            and leaf.value.id == self_name
                            and isinstance(leaf.ctx, ast.Store)
                        ):
                            attrs.add(leaf.attr)
                continue
            if isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                target = sub.target
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == self_name
            ):
                attrs.add(target.attr)
    return attrs


@register
class SnapshotPairRule(Rule):
    code = "RPR010"
    name = "snapshot-pairing"
    description = (
        "checkpointable classes define both snapshot_state and "
        "restore_state, and literal snapshot_state bodies only use keys "
        "backed by a real instance attribute"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                m.name: m for m in node.body if isinstance(m, ast.FunctionDef)
            }
            has_snap = "snapshot_state" in methods
            has_restore = "restore_state" in methods
            if has_snap != has_restore:
                missing = "restore_state" if has_snap else "snapshot_state"
                present = "snapshot_state" if has_snap else "restore_state"
                yield self.finding(
                    ctx,
                    node,
                    f"class {node.name} defines {present} but not {missing}; "
                    "half a checkpoint protocol can be captured but never "
                    "resumed (or resumed but never captured)",
                )
            if not has_snap:
                continue
            keys = _literal_dict_keys(methods["snapshot_state"])
            if keys is None:
                continue  # incremental/helper-built snapshot: out of reach
            known = _self_attributes(node)
            known.update(_slot_names(node))
            known.update(_field_names(node))
            unbacked = [k for k in keys if k not in known]
            if unbacked:
                yield self.finding(
                    ctx,
                    methods["snapshot_state"],
                    f"{node.name}.snapshot_state key(s) "
                    f"{', '.join(unbacked)} do not name any instance "
                    "attribute; stale keys break the snapshot/restore "
                    "round trip at restore time",
                )
