"""Per-bank DRAM state machine and command timing.

Each bank tracks its open row and the earliest times the next CAS, ACT, PRE
or REF command may start, derived from the JEDEC parameters in
:class:`repro.dram.timing.DramTiming`.  The controller calls
:meth:`Bank.service` to schedule one column access, and
:meth:`Bank.begin_refresh` to start a refresh cycle.

Hot-path layout (see docs/PERFORMANCE.md): the mutable readiness fields
live in :class:`BankStateArrays` — one flat plain-int list per field,
indexed by flat bank index and shared by every bank of a controller — so
the controller's FR-FCFS decision loop reads bank availability with one
list subscript instead of an attribute chain through a ``Bank`` object.
``Bank`` keeps its full public API: ``bank.open_row``/``bank.cas_ready``
etc. are property views into the shared arrays, and the snapshot/restore
contract is unchanged (per-bank dicts; the arrays are rebuilt by the
property writes in :meth:`Bank.restore_state`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Optional

from repro.dram.request import MemoryRequest
from repro.dram.timing import DramTiming
from repro.errors import ProtocolError
from repro.telemetry.stats import StatsBase

#: ``open_row`` sentinel for "no row open" inside the flat arrays (row
#: numbers are non-negative, so -1 never matches a request's row).
ROW_CLOSED = -1


class BankStateArrays:
    """Flat per-bank readiness state shared by every bank of a controller.

    One plain-int list per field, indexed by flat bank index.  Plain
    lists beat ``array('q')`` here: element reads come back as cached
    small ints with no boxing, and the controller hot path does orders
    of magnitude more reads than the snapshot layer does conversions.

    These arrays are the single source of truth — :class:`Bank`
    attribute access is a property view into them — and the stable ABI
    an optional compiled selection kernel can slot into later.
    """

    __slots__ = (
        "open_row",
        "cas_ready",
        "act_ready",
        "pre_ready",
        "refresh_until",
        "refresh_started",
        "sa_refresh_id",
        "sa_refresh_until",
        "sa_refresh_started",
    )

    def __init__(self, total_banks: int):
        self.open_row = [ROW_CLOSED] * total_banks
        self.cas_ready = [0] * total_banks
        self.act_ready = [0] * total_banks
        self.pre_ready = [0] * total_banks
        self.refresh_until = [0] * total_banks
        self.refresh_started = [0] * total_banks
        self.sa_refresh_id = [-1] * total_banks
        self.sa_refresh_until = [0] * total_banks
        self.sa_refresh_started = [0] * total_banks


@dataclass
class BankStats(StatsBase):
    activations: int = 0
    precharges: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    reads: int = 0
    writes: int = 0
    refreshes: int = 0
    refresh_busy_cycles: int = 0


class ServiceTiming(NamedTuple):
    """Resolved command times for one column access.

    A NamedTuple: one is built per serviced request, and C-level tuple
    construction keeps the controller's issue path cheap."""

    cas_time: int
    data_start: int
    finish: int
    row_hit: bool


def _state_view(field: str):
    """Property exposing one flat-array slot as a plain int attribute."""

    def read(self):
        return getattr(self.arrays, field)[self.slot]

    def write(self, value):
        getattr(self.arrays, field)[self.slot] = value

    return property(read, write)


class Bank:
    """State machine for a single DRAM bank.

    Mutable readiness state lives in the shared :class:`BankStateArrays`
    (``arrays``) at index ``slot``; a standalone bank (unit tests,
    examples) gets a private single-slot store.
    """

    __slots__ = (
        "channel",
        "rank_id",
        "bank_id",
        "flat_index",
        "num_subarrays",
        "rows_per_bank",
        "arrays",
        "slot",
        "stats",
    )

    def __init__(
        self,
        channel: int,
        rank_id: int,
        bank_id: int,
        flat_index: int,
        num_subarrays: int = 1,
        rows_per_bank: int = 1,
        arrays: Optional[BankStateArrays] = None,
        slot: Optional[int] = None,
    ):
        self.channel = channel
        self.rank_id = rank_id
        self.bank_id = bank_id
        self.flat_index = flat_index
        # Subarray-granularity refresh (paper Section 7 extension): when a
        # refresh targets one subarray, accesses to the others proceed.
        self.num_subarrays = num_subarrays
        self.rows_per_bank = max(1, rows_per_bank)
        if arrays is None:
            arrays = BankStateArrays(1)
            slot = 0
        self.arrays = arrays
        self.slot = flat_index if slot is None else slot
        self.stats = BankStats()

    # Readiness fields: views into the shared flat arrays.  ``open_row``
    # keeps its Optional[int] surface (None = closed) while the array
    # stores the ROW_CLOSED sentinel the hot path compares against.
    cas_ready = _state_view("cas_ready")
    act_ready = _state_view("act_ready")
    pre_ready = _state_view("pre_ready")
    refresh_until = _state_view("refresh_until")
    refresh_started = _state_view("refresh_started")
    sa_refresh_id = _state_view("sa_refresh_id")
    sa_refresh_until = _state_view("sa_refresh_until")
    sa_refresh_started = _state_view("sa_refresh_started")

    @property
    def open_row(self) -> Optional[int]:
        row = self.arrays.open_row[self.slot]
        return None if row < 0 else row

    @open_row.setter
    def open_row(self, value: Optional[int]) -> None:
        self.arrays.open_row[self.slot] = ROW_CLOSED if value is None else value

    def subarray_of_row(self, row: int) -> int:
        """Which subarray a row belongs to (contiguous row blocks)."""
        return row * self.num_subarrays // self.rows_per_bank

    # -- availability ---------------------------------------------------------

    def available_at(self, now: int) -> int:
        """Earliest time a new command sequence may begin."""
        refresh_until = self.arrays.refresh_until[self.slot]
        return now if now > refresh_until else refresh_until

    def is_refreshing(self, now: int) -> bool:
        return now < self.arrays.refresh_until[self.slot]

    # -- demand access --------------------------------------------------------

    def service(
        self,
        request: MemoryRequest,
        now: int,
        timing: DramTiming,
        rank: "Rank",
        bus: "ChannelBus",
        close_row: bool = False,
    ) -> ServiceTiming:
        """Schedule one read/write column access; mutates bank/rank/bus state
        and returns the resolved command times.

        The refresh-stall attribution (how long the start was pushed out by
        a refresh-busy bank) is recorded on *request*.
        """
        arrays = self.arrays
        slot = self.slot
        refresh_until = arrays.refresh_until[slot]
        earliest = now if now > refresh_until else refresh_until
        # Refresh-stall attribution: overlap between the request's wait
        # [arrive, service] and the bank's refresh-busy interval.
        arrive = request.arrive_time
        started = arrays.refresh_started[slot]
        blocked_from = arrive if arrive > started else started
        refresh_stall = refresh_until - blocked_from
        if refresh_stall < 0:
            refresh_stall = 0
        row = request.coord.row
        # Subarray refresh blocks only requests into the refreshing subarray.
        sa_refresh_until = arrays.sa_refresh_until[slot]
        if (
            sa_refresh_until > earliest
            and row * self.num_subarrays // self.rows_per_bank
            == arrays.sa_refresh_id[slot]
        ):
            sa_blocked_from = max(arrive, arrays.sa_refresh_started[slot])
            refresh_stall += max(
                0, sa_refresh_until - max(earliest, sa_blocked_from)
            )
            earliest = sa_refresh_until

        stats = self.stats
        open_row = arrays.open_row[slot]
        if open_row == row:
            # Row hit: CAS only.
            row_hit = True
            cas_ready = arrays.cas_ready[slot]
            cas_earliest = earliest if earliest > cas_ready else cas_ready
            stats.row_hits += 1
        else:
            row_hit = False
            if open_row < 0:
                # Row closed: ACT + CAS.
                act_ready = arrays.act_ready[slot]
                act_earliest = earliest if earliest > act_ready else act_ready
                stats.row_misses += 1
            else:
                # Row conflict: PRE + ACT + CAS.
                pre_ready = arrays.pre_ready[slot]
                pre_time = earliest if earliest > pre_ready else pre_ready
                act_earliest = pre_time + timing.tRP
                act_ready = arrays.act_ready[slot]
                if act_ready > act_earliest:
                    act_earliest = act_ready
                stats.row_conflicts += 1
                stats.precharges += 1
            act_time = rank.earliest_activate(act_earliest, timing)
            rank.record_activate(act_time, timing)
            stats.activations += 1
            arrays.open_row[slot] = row
            arrays.act_ready[slot] = act_time + timing.tRC
            arrays.pre_ready[slot] = act_time + timing.tRAS
            cas_earliest = act_time + timing.tRCD

        is_read = request.is_read
        cas_to_data = timing.tCL if is_read else timing.tCWL
        # Reserve a burst slot on the shared data bus; the CAS is delayed so
        # its data lands exactly in the granted slot.
        data_start = bus.reserve(
            cas_earliest + cas_to_data,
            is_read=is_read,
            rank_key=(self.channel, self.rank_id),
            timing=timing,
        )
        cas_time = data_start - cas_to_data
        finish = data_start + timing.tBL

        arrays.cas_ready[slot] = cas_time + timing.tCCD
        if is_read:
            ready = cas_time + timing.tRTP
            if ready > arrays.pre_ready[slot]:
                arrays.pre_ready[slot] = ready
            stats.reads += 1
        else:
            ready = data_start + timing.tBL + timing.tWR
            if ready > arrays.pre_ready[slot]:
                arrays.pre_ready[slot] = ready
            stats.writes += 1

        if close_row:
            # Closed-row policy: auto-precharge after the access; the next
            # access pays ACT but never a conflict PRE.
            arrays.open_row[slot] = ROW_CLOSED
            pre_closed = arrays.pre_ready[slot] + timing.tRP
            if pre_closed > arrays.act_ready[slot]:
                arrays.act_ready[slot] = pre_closed
            stats.precharges += 1

        request.refresh_stall = refresh_stall
        request.row_hit = row_hit
        return ServiceTiming(
            cas_time=cas_time, data_start=data_start, finish=finish, row_hit=row_hit
        )

    # -- refresh ---------------------------------------------------------------

    def refresh_start_time(self, now: int, timing: DramTiming) -> int:
        """Earliest time a refresh command may begin on this bank.

        An open row must be precharged first; in-flight constraints
        (tRAS/tWR/tRTP already folded into ``pre_ready``) are honored.
        """
        arrays = self.arrays
        slot = self.slot
        refresh_until = arrays.refresh_until[slot]
        start = now if now > refresh_until else refresh_until
        if arrays.open_row[slot] >= 0:
            pre_ready = arrays.pre_ready[slot]
            start = (start if start > pre_ready else pre_ready) + timing.tRP
        else:
            # A just-issued CAS keeps the bank busy briefly.
            cas_ready = arrays.cas_ready[slot]
            if cas_ready > start:
                start = cas_ready
        return start

    def begin_refresh(self, start: int, trfc: int, subarray: int | None = None) -> int:
        """Mark the bank (or one *subarray*) refresh-busy for
        [start, start + trfc).

        With *subarray* set (SALP-style hardware, the paper's Section 7
        extension), only requests into that subarray are blocked; the rest
        of the bank keeps serving.  An open row inside the refreshing
        subarray is precharged.
        """
        if trfc <= 0:
            raise ProtocolError(f"tRFC must be positive, got {trfc}")
        arrays = self.arrays
        slot = self.slot
        end = start + trfc
        self.stats.refreshes += 1
        self.stats.refresh_busy_cycles += trfc
        open_row = arrays.open_row[slot]
        if subarray is not None and self.num_subarrays > 1:
            if start > arrays.sa_refresh_until[slot]:
                arrays.sa_refresh_started[slot] = start
            arrays.sa_refresh_id[slot] = subarray
            if end > arrays.sa_refresh_until[slot]:
                arrays.sa_refresh_until[slot] = end
            if open_row >= 0 and self.subarray_of_row(open_row) == subarray:
                self.stats.precharges += 1
                arrays.open_row[slot] = ROW_CLOSED
            return end
        if start > arrays.refresh_until[slot]:
            # New refresh-busy interval (not back-to-back with the last).
            arrays.refresh_started[slot] = start
        if open_row >= 0:
            self.stats.precharges += 1
        arrays.open_row[slot] = ROW_CLOSED
        if end > arrays.refresh_until[slot]:
            arrays.refresh_until[slot] = end
        if end > arrays.cas_ready[slot]:
            arrays.cas_ready[slot] = end
        if end > arrays.act_ready[slot]:
            arrays.act_ready[slot] = end
        if end > arrays.pre_ready[slot]:
            arrays.pre_ready[slot] = end
        return end

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "open_row": self.open_row,
            "cas_ready": self.cas_ready,
            "act_ready": self.act_ready,
            "pre_ready": self.pre_ready,
            "refresh_until": self.refresh_until,
            "refresh_started": self.refresh_started,
            "sa_refresh_id": self.sa_refresh_id,
            "sa_refresh_until": self.sa_refresh_until,
            "sa_refresh_started": self.sa_refresh_started,
            "stats": self.stats.to_dict(),
        }

    def restore_state(self, state: dict) -> None:
        # The property writes rebuild this bank's slots of the shared
        # flat arrays — the arrays are derived state with no snapshot
        # fields of their own.
        row = state["open_row"]
        self.open_row = None if row is None else int(row)
        self.cas_ready = int(state["cas_ready"])
        self.act_ready = int(state["act_ready"])
        self.pre_ready = int(state["pre_ready"])
        self.refresh_until = int(state["refresh_until"])
        self.refresh_started = int(state["refresh_started"])
        self.sa_refresh_id = int(state["sa_refresh_id"])
        self.sa_refresh_until = int(state["sa_refresh_until"])
        self.sa_refresh_started = int(state["sa_refresh_started"])
        self.stats = BankStats.from_dict(state["stats"])

    def __repr__(self) -> str:
        return (
            f"Bank(ch{self.channel} rk{self.rank_id} bk{self.bank_id} "
            f"row={self.open_row})"
        )


class Rank:
    """Rank-level activate constraints: tRRD and the four-activate window."""

    __slots__ = ("channel", "rank_id", "_act_times")

    FAW_WINDOW = 4

    def __init__(self, channel: int, rank_id: int):
        self.channel = channel
        self.rank_id = rank_id
        self._act_times: list[int] = []

    def earliest_activate(self, wanted: int, timing: DramTiming) -> int:
        """Earliest ACT time >= *wanted* honoring tRRD and tFAW."""
        t = wanted
        act_times = self._act_times
        if act_times:
            last = act_times[-1] + timing.tRRD
            if last > t:
                t = last
            if len(act_times) >= self.FAW_WINDOW:
                faw = act_times[-self.FAW_WINDOW] + timing.tFAW
                if faw > t:
                    t = faw
        return t

    def record_activate(self, time: int, timing: DramTiming) -> None:
        act_times = self._act_times
        act_times.append(time)
        if len(act_times) > self.FAW_WINDOW:
            del act_times[: -self.FAW_WINDOW]

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        return {"_act_times": list(self._act_times)}

    def restore_state(self, state: dict) -> None:
        # In place: the controller's per-flat activate-window aliases
        # must keep pointing at this list across a restore.
        self._act_times[:] = [int(t) for t in state["_act_times"]]

    def __repr__(self) -> str:
        return f"Rank(ch{self.channel} rk{self.rank_id})"


class ChannelBus:
    """Shared data bus of one channel: serialises burst transfers and applies
    read/write and rank-switch turnaround penalties."""

    __slots__ = ("ready", "last_was_read", "last_rank_key", "busy_cycles")

    def __init__(self):
        self.ready = 0
        self.last_was_read: Optional[bool] = None
        self.last_rank_key: Optional[tuple[int, int]] = None
        self.busy_cycles = 0

    def reserve(
        self,
        wanted: int,
        is_read: bool,
        rank_key: tuple[int, int],
        timing: DramTiming,
    ) -> int:
        """Grant a burst slot starting at or after *wanted*; returns the
        granted start time and advances the bus state."""
        ready = self.ready
        start = wanted if wanted > ready else ready
        last_was_read = self.last_was_read
        if last_was_read is not None:
            if last_was_read != is_read and not last_was_read:
                # write -> read turnaround
                turnaround = ready + timing.tWTR
                if turnaround > start:
                    start = turnaround
            last_rank_key = self.last_rank_key
            if last_rank_key is not None and last_rank_key != rank_key:
                switch = ready + timing.tRTRS
                if switch > start:
                    start = switch
        self.ready = start + timing.tBL
        self.last_was_read = is_read
        self.last_rank_key = rank_key
        self.busy_cycles += timing.tBL
        return start

    def utilization(self, elapsed: int) -> float:
        """Fraction of elapsed cycles the bus spent transferring data."""
        return self.busy_cycles / elapsed if elapsed > 0 else 0.0

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "ready": self.ready,
            "last_was_read": self.last_was_read,
            "last_rank_key": (
                None if self.last_rank_key is None else list(self.last_rank_key)
            ),
            "busy_cycles": self.busy_cycles,
        }

    def restore_state(self, state: dict) -> None:
        self.ready = int(state["ready"])
        self.last_was_read = state["last_was_read"]
        key = state["last_rank_key"]
        self.last_rank_key = None if key is None else (int(key[0]), int(key[1]))
        self.busy_cycles = int(state["busy_cycles"])
