"""Per-bank DRAM state machine and command timing.

Each bank tracks its open row and the earliest times the next CAS, ACT, PRE
or REF command may start, derived from the JEDEC parameters in
:class:`repro.dram.timing.DramTiming`.  The controller calls
:meth:`Bank.service` to schedule one column access, and
:meth:`Bank.begin_refresh` to start a refresh cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Optional

from repro.dram.request import MemoryRequest
from repro.dram.timing import DramTiming
from repro.errors import ProtocolError
from repro.telemetry.stats import StatsBase


@dataclass
class BankStats(StatsBase):
    activations: int = 0
    precharges: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    reads: int = 0
    writes: int = 0
    refreshes: int = 0
    refresh_busy_cycles: int = 0


class ServiceTiming(NamedTuple):
    """Resolved command times for one column access.

    A NamedTuple: one is built per serviced request, and C-level tuple
    construction keeps the controller's issue path cheap."""

    cas_time: int
    data_start: int
    finish: int
    row_hit: bool


class Bank:
    """State machine for a single DRAM bank."""

    __slots__ = (
        "channel",
        "rank_id",
        "bank_id",
        "flat_index",
        "open_row",
        "cas_ready",
        "act_ready",
        "pre_ready",
        "refresh_until",
        "refresh_started",
        "num_subarrays",
        "rows_per_bank",
        "sa_refresh_id",
        "sa_refresh_until",
        "sa_refresh_started",
        "stats",
    )

    def __init__(
        self,
        channel: int,
        rank_id: int,
        bank_id: int,
        flat_index: int,
        num_subarrays: int = 1,
        rows_per_bank: int = 1,
    ):
        self.channel = channel
        self.rank_id = rank_id
        self.bank_id = bank_id
        self.flat_index = flat_index
        self.open_row: Optional[int] = None
        self.cas_ready = 0  # earliest next CAS to the open row
        self.act_ready = 0  # earliest next ACT (bank-local: tRC from last ACT)
        self.pre_ready = 0  # earliest next PRE (tRAS / tRTP / tWR)
        self.refresh_until = 0  # bank unavailable until this time (refresh)
        self.refresh_started = 0  # start of the current refresh-busy interval
        # Subarray-granularity refresh (paper Section 7 extension): when a
        # refresh targets one subarray, accesses to the others proceed.
        self.num_subarrays = num_subarrays
        self.rows_per_bank = max(1, rows_per_bank)
        self.sa_refresh_id = -1
        self.sa_refresh_until = 0
        self.sa_refresh_started = 0
        self.stats = BankStats()

    def subarray_of_row(self, row: int) -> int:
        """Which subarray a row belongs to (contiguous row blocks)."""
        return row * self.num_subarrays // self.rows_per_bank

    # -- availability ---------------------------------------------------------

    def available_at(self, now: int) -> int:
        """Earliest time a new command sequence may begin."""
        return max(now, self.refresh_until)

    def is_refreshing(self, now: int) -> bool:
        return now < self.refresh_until

    # -- demand access --------------------------------------------------------

    def service(
        self,
        request: MemoryRequest,
        now: int,
        timing: DramTiming,
        rank: "Rank",
        bus: "ChannelBus",
        close_row: bool = False,
    ) -> ServiceTiming:
        """Schedule one read/write column access; mutates bank/rank/bus state
        and returns the resolved command times.

        The refresh-stall attribution (how long the start was pushed out by
        a refresh-busy bank) is recorded on *request*.
        """
        refresh_until = self.refresh_until
        earliest = now if now > refresh_until else refresh_until
        # Refresh-stall attribution: overlap between the request's wait
        # [arrive, service] and the bank's refresh-busy interval.
        arrive = request.arrive_time
        started = self.refresh_started
        blocked_from = arrive if arrive > started else started
        refresh_stall = refresh_until - blocked_from
        if refresh_stall < 0:
            refresh_stall = 0
        row = request.coord.row
        # Subarray refresh blocks only requests into the refreshing subarray.
        if (
            self.sa_refresh_until > earliest
            and self.subarray_of_row(row) == self.sa_refresh_id
        ):
            sa_blocked_from = max(arrive, self.sa_refresh_started)
            refresh_stall += max(0, self.sa_refresh_until - max(earliest, sa_blocked_from))
            earliest = self.sa_refresh_until

        stats = self.stats
        if self.open_row == row:
            # Row hit: CAS only.
            row_hit = True
            cas_ready = self.cas_ready
            cas_earliest = earliest if earliest > cas_ready else cas_ready
            stats.row_hits += 1
        else:
            row_hit = False
            if self.open_row is None:
                # Row closed: ACT + CAS.
                act_ready = self.act_ready
                act_earliest = earliest if earliest > act_ready else act_ready
                stats.row_misses += 1
            else:
                # Row conflict: PRE + ACT + CAS.
                pre_ready = self.pre_ready
                pre_time = earliest if earliest > pre_ready else pre_ready
                act_earliest = pre_time + timing.tRP
                act_ready = self.act_ready
                if act_ready > act_earliest:
                    act_earliest = act_ready
                stats.row_conflicts += 1
                stats.precharges += 1
            act_time = rank.earliest_activate(act_earliest, timing)
            rank.record_activate(act_time, timing)
            stats.activations += 1
            self.open_row = row
            self.act_ready = act_time + timing.tRC
            self.pre_ready = act_time + timing.tRAS
            cas_earliest = act_time + timing.tRCD

        is_read = request.is_read
        cas_to_data = timing.tCL if is_read else timing.tCWL
        # Reserve a burst slot on the shared data bus; the CAS is delayed so
        # its data lands exactly in the granted slot.
        data_start = bus.reserve(
            cas_earliest + cas_to_data,
            is_read=is_read,
            rank_key=(self.channel, self.rank_id),
            timing=timing,
        )
        cas_time = data_start - cas_to_data
        finish = data_start + timing.tBL

        self.cas_ready = cas_time + timing.tCCD
        if is_read:
            ready = cas_time + timing.tRTP
            if ready > self.pre_ready:
                self.pre_ready = ready
            stats.reads += 1
        else:
            ready = data_start + timing.tBL + timing.tWR
            if ready > self.pre_ready:
                self.pre_ready = ready
            stats.writes += 1

        if close_row:
            # Closed-row policy: auto-precharge after the access; the next
            # access pays ACT but never a conflict PRE.
            self.open_row = None
            self.act_ready = max(self.act_ready, self.pre_ready + timing.tRP)
            self.stats.precharges += 1

        request.refresh_stall = refresh_stall
        request.row_hit = row_hit
        return ServiceTiming(
            cas_time=cas_time, data_start=data_start, finish=finish, row_hit=row_hit
        )

    # -- refresh ---------------------------------------------------------------

    def refresh_start_time(self, now: int, timing: DramTiming) -> int:
        """Earliest time a refresh command may begin on this bank.

        An open row must be precharged first; in-flight constraints
        (tRAS/tWR/tRTP already folded into ``pre_ready``) are honored.
        """
        start = max(now, self.refresh_until)
        if self.open_row is not None:
            start = max(start, self.pre_ready) + timing.tRP
        else:
            # A just-issued CAS keeps the bank busy briefly.
            start = max(start, self.cas_ready)
        return start

    def begin_refresh(self, start: int, trfc: int, subarray: int | None = None) -> int:
        """Mark the bank (or one *subarray*) refresh-busy for
        [start, start + trfc).

        With *subarray* set (SALP-style hardware, the paper's Section 7
        extension), only requests into that subarray are blocked; the rest
        of the bank keeps serving.  An open row inside the refreshing
        subarray is precharged.
        """
        if trfc <= 0:
            raise ProtocolError(f"tRFC must be positive, got {trfc}")
        end = start + trfc
        self.stats.refreshes += 1
        self.stats.refresh_busy_cycles += trfc
        if subarray is not None and self.num_subarrays > 1:
            if start > self.sa_refresh_until:
                self.sa_refresh_started = start
            self.sa_refresh_id = subarray
            self.sa_refresh_until = max(self.sa_refresh_until, end)
            if (
                self.open_row is not None
                and self.subarray_of_row(self.open_row) == subarray
            ):
                self.stats.precharges += 1
                self.open_row = None
            return end
        if start > self.refresh_until:
            # New refresh-busy interval (not back-to-back with the last).
            self.refresh_started = start
        if self.open_row is not None:
            self.stats.precharges += 1
        self.open_row = None
        self.refresh_until = max(self.refresh_until, end)
        self.cas_ready = max(self.cas_ready, end)
        self.act_ready = max(self.act_ready, end)
        self.pre_ready = max(self.pre_ready, end)
        return end

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "open_row": self.open_row,
            "cas_ready": self.cas_ready,
            "act_ready": self.act_ready,
            "pre_ready": self.pre_ready,
            "refresh_until": self.refresh_until,
            "refresh_started": self.refresh_started,
            "sa_refresh_id": self.sa_refresh_id,
            "sa_refresh_until": self.sa_refresh_until,
            "sa_refresh_started": self.sa_refresh_started,
            "stats": self.stats.to_dict(),
        }

    def restore_state(self, state: dict) -> None:
        row = state["open_row"]
        self.open_row = None if row is None else int(row)
        self.cas_ready = int(state["cas_ready"])
        self.act_ready = int(state["act_ready"])
        self.pre_ready = int(state["pre_ready"])
        self.refresh_until = int(state["refresh_until"])
        self.refresh_started = int(state["refresh_started"])
        self.sa_refresh_id = int(state["sa_refresh_id"])
        self.sa_refresh_until = int(state["sa_refresh_until"])
        self.sa_refresh_started = int(state["sa_refresh_started"])
        self.stats = BankStats.from_dict(state["stats"])

    def __repr__(self) -> str:
        return (
            f"Bank(ch{self.channel} rk{self.rank_id} bk{self.bank_id} "
            f"row={self.open_row})"
        )


class Rank:
    """Rank-level activate constraints: tRRD and the four-activate window."""

    __slots__ = ("channel", "rank_id", "_act_times")

    FAW_WINDOW = 4

    def __init__(self, channel: int, rank_id: int):
        self.channel = channel
        self.rank_id = rank_id
        self._act_times: list[int] = []

    def earliest_activate(self, wanted: int, timing: DramTiming) -> int:
        """Earliest ACT time >= *wanted* honoring tRRD and tFAW."""
        t = wanted
        if self._act_times:
            t = max(t, self._act_times[-1] + timing.tRRD)
            if len(self._act_times) >= self.FAW_WINDOW:
                t = max(t, self._act_times[-self.FAW_WINDOW] + timing.tFAW)
        return t

    def record_activate(self, time: int, timing: DramTiming) -> None:
        self._act_times.append(time)
        if len(self._act_times) > self.FAW_WINDOW:
            del self._act_times[: -self.FAW_WINDOW]

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        return {"_act_times": list(self._act_times)}

    def restore_state(self, state: dict) -> None:
        self._act_times = [int(t) for t in state["_act_times"]]

    def __repr__(self) -> str:
        return f"Rank(ch{self.channel} rk{self.rank_id})"


class ChannelBus:
    """Shared data bus of one channel: serialises burst transfers and applies
    read/write and rank-switch turnaround penalties."""

    __slots__ = ("ready", "last_was_read", "last_rank_key", "busy_cycles")

    def __init__(self):
        self.ready = 0
        self.last_was_read: Optional[bool] = None
        self.last_rank_key: Optional[tuple[int, int]] = None
        self.busy_cycles = 0

    def reserve(
        self,
        wanted: int,
        is_read: bool,
        rank_key: tuple[int, int],
        timing: DramTiming,
    ) -> int:
        """Grant a burst slot starting at or after *wanted*; returns the
        granted start time and advances the bus state."""
        start = max(wanted, self.ready)
        if self.last_was_read is not None:
            if self.last_was_read != is_read and not self.last_was_read:
                # write -> read turnaround
                start = max(start, self.ready + timing.tWTR)
            if self.last_rank_key is not None and self.last_rank_key != rank_key:
                start = max(start, self.ready + timing.tRTRS)
        self.ready = start + timing.tBL
        self.last_was_read = is_read
        self.last_rank_key = rank_key
        self.busy_cycles += timing.tBL
        return start

    def utilization(self, elapsed: int) -> float:
        """Fraction of elapsed cycles the bus spent transferring data."""
        return self.busy_cycles / elapsed if elapsed > 0 else 0.0

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "ready": self.ready,
            "last_was_read": self.last_was_read,
            "last_rank_key": (
                None if self.last_rank_key is None else list(self.last_rank_key)
            ),
            "busy_cycles": self.busy_cycles,
        }

    def restore_state(self, state: dict) -> None:
        self.ready = int(state["ready"])
        self.last_was_read = state["last_was_read"]
        key = state["last_rank_key"]
        self.last_rank_key = None if key is None else (int(key[0]), int(key[1]))
        self.busy_cycles = int(state["busy_cycles"])
