"""All-bank (rank-level) refresh: the DDRx baseline (paper Section 2.2.1).

Every tREFI_ab each rank receives one refresh command covering a group of
rows in *all* of its banks; the whole rank is unavailable for tRFC_ab.
Ranks are staggered by tREFI_ab / num_ranks, as in Figure 2a.

DDR4 Fine Granularity Refresh (Section 6.3) is this same scheduler running
on a :class:`~repro.dram.timing.DramTiming` built with ``FgrMode.X2``/``X4``
(tREFI divided by 2/4, tRFC divided by only 1.35/1.63).
"""

from __future__ import annotations

from repro.dram.refresh.base import RefreshScheduler


class AllBankRefresh(RefreshScheduler):
    name = "all_bank"

    def __init__(self):
        super().__init__()
        # Set by start(); serialized so a restored scheduler never needs a
        # second start() call.
        self._trefi = 0
        self._trfc = 0
        self._banks_per_rank = 0

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["_trefi"] = self._trefi
        state["_trfc"] = self._trfc
        state["_banks_per_rank"] = self._banks_per_rank
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._trefi = int(state["_trefi"])
        self._trfc = int(state["_trfc"])
        self._banks_per_rank = int(state["_banks_per_rank"])

    def start(self) -> None:
        mc = self.controller
        trefi = self.timing.trefi_ab
        self._trefi = trefi
        self._trfc = self.timing.trfc_ab
        self._banks_per_rank = mc.org.banks_per_rank
        for channel in range(mc.org.channels):
            for rank in range(mc.org.ranks_per_channel):
                offset = rank * trefi // mc.org.ranks_per_channel
                base_flat = mc.mapping.flat_bank_index(channel, rank, 0)
                self.engine.schedule(
                    offset, self._fire, (channel, rank, base_flat)
                )

    def _fire(self, ctx: tuple[int, int, int]) -> None:
        channel, rank, base_flat = ctx
        self.controller.refresh_rank(channel, rank, self._trfc)
        record = self.stats.record
        for bank in range(self._banks_per_rank):
            record(base_flat + bank, row_units=1.0)
        self.engine.schedule(self._trefi, self._fire, ctx)
