"""Adaptive Refresh (AR) — Mukundan et al., ISCA 2013 (paper Section 6.5).

AR is an all-bank DDR4 technique that dynamically switches between the 1x
and 4x Fine Granularity Refresh modes by monitoring channel utilization at
runtime: under high memory activity it uses 4x (shorter tRFC blocks demand
requests for less time per command); under low activity it uses 1x (fewer,
longer commands — cheaper in total because tRFC does not scale down
linearly with the per-command row count).

Refresh *work* bookkeeping: a 1x command retires one row-group unit, a 4x
command a quarter unit, so each rank accumulates ``refreshes_per_bank``
units per retention window regardless of the mode mix.
"""

from __future__ import annotations

from repro.config.dram_configs import FgrMode
from repro.dram.refresh.base import RefreshScheduler


class AdaptiveRefresh(RefreshScheduler):
    name = "adaptive"

    #: Bus utilization (over the last decision window) above which the
    #: scheduler switches to the 4x mode.
    utilization_threshold = 0.35
    #: Decision window length, in 1x tREFI intervals.
    decision_intervals = 8

    def __init__(self):
        super().__init__()
        self._mode = FgrMode.X1
        self._last_busy_cycles = 0
        self._last_decision_time = 0
        self.mode_switches = 0

    def start(self) -> None:
        mc = self.controller
        trefi = self.timing.trefi_ab
        for channel in range(mc.org.channels):
            for rank in range(mc.org.ranks_per_channel):
                offset = rank * trefi // mc.org.ranks_per_channel
                self._schedule_rank(channel, rank, offset)
        self.engine.schedule(trefi * self.decision_intervals, self._decide)

    # -- mode adaptation ---------------------------------------------------------

    def _decide(self) -> None:
        now = self.engine.now
        bus = self.controller.bus_for_channel(0)
        elapsed = max(1, now - self._last_decision_time)
        busy = bus.busy_cycles - self._last_busy_cycles
        utilization = busy / elapsed
        new_mode = (
            FgrMode.X4 if utilization >= self.utilization_threshold else FgrMode.X1
        )
        if new_mode is not self._mode:
            self.mode_switches += 1
            self._mode = new_mode
        self._last_busy_cycles = bus.busy_cycles
        self._last_decision_time = now
        self.engine.schedule(
            self.timing.trefi_ab * self.decision_intervals, self._decide
        )

    # -- refresh issue -------------------------------------------------------------

    def _trefi(self) -> int:
        return self.timing.trefi_ab // self._mode.trefi_divisor

    def _trfc(self) -> int:
        return max(1, round(self.timing.trfc_ab / self._mode.trfc_divisor))

    def _schedule_rank(self, channel: int, rank: int, at: int) -> None:
        # Bound method + arg tuple (not a closure) so the queued event can
        # be captured as a checkpoint descriptor.
        self.engine.schedule(at, self._fire_rank, (channel, rank))

    def _fire_rank(self, key: tuple[int, int]) -> None:
        channel, rank = key
        mode = self._mode
        self.controller.refresh_rank(channel, rank, self._trfc())
        base_flat = self.controller.mapping.flat_bank_index(channel, rank, 0)
        units = 1.0 / mode.trefi_divisor
        for bank in range(self.controller.org.banks_per_rank):
            self.stats.record(base_flat + bank, row_units=units)
        self._schedule_rank(channel, rank, self._trefi())

    # -- checkpoint/restore ---------------------------------------------------

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["_mode"] = self._mode.name
        state["_last_busy_cycles"] = self._last_busy_cycles
        state["_last_decision_time"] = self._last_decision_time
        state["mode_switches"] = self.mode_switches
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._mode = FgrMode[state["_mode"]]
        self._last_busy_cycles = int(state["_last_busy_cycles"])
        self._last_decision_time = int(state["_last_decision_time"])
        self.mode_switches = int(state["mode_switches"])
