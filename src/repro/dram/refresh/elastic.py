"""Elastic Refresh — Stuecheli et al., MICRO 2010 (paper Section 7).

An all-bank scheme that *postpones* refresh commands (JEDEC allows up to 8
outstanding) hoping to issue them in idle periods: a refresh is sent early
when the rank has no queued demand requests, and is forced when the
postponement budget is exhausted.

The paper's related-work observation — and what the model shows — is that
this helps low-intensity workloads but cannot help memory-intensive ones,
where idle periods are scarce and the postponed refreshes eventually fire
back-to-back into busy ranks.
"""

from __future__ import annotations

from repro.dram.refresh.base import RefreshScheduler


class ElasticRefresh(RefreshScheduler):
    name = "elastic"

    #: JEDEC DDRx allows up to 8 postponed refresh commands.
    MAX_POSTPONED = 8
    #: How often (in fractions of tREFI) the idle detector re-checks.
    CHECK_DIVISOR = 8

    def __init__(self):
        super().__init__()
        self._debt: dict[tuple[int, int], int] = {}
        self.forced_refreshes = 0
        self.idle_refreshes = 0

    def start(self) -> None:
        mc = self.controller
        trefi = self.timing.trefi_ab
        for channel in range(mc.org.channels):
            for rank in range(mc.org.ranks_per_channel):
                key = (channel, rank)
                self._debt[key] = 0
                offset = rank * trefi // mc.org.ranks_per_channel
                self.engine.schedule(offset, self._accrue, key)
                self.engine.schedule(offset, self._poll, key)

    # -- debt accrual: one obligation per tREFI -------------------------------

    def _accrue(self, key: tuple[int, int]) -> None:
        # Bound method + key arg (not a closure) so the queued event can be
        # captured as a checkpoint descriptor.
        self._debt[key] += 1
        if self._debt[key] > self.MAX_POSTPONED:
            # Budget exhausted: a refresh must go out now.
            self._issue(key)
            self.forced_refreshes += 1
        self.engine.schedule(self.timing.trefi_ab, self._accrue, key)

    # -- idle detection ---------------------------------------------------------

    def _poll(self, key: tuple[int, int]) -> None:
        if self._debt[key] > 0 and self._rank_idle(key):
            self._issue(key)
            self.idle_refreshes += 1
        self.engine.schedule(
            self.timing.trefi_ab // self.CHECK_DIVISOR, self._poll, key
        )

    def _rank_idle(self, key: tuple[int, int]) -> bool:
        channel, rank = key
        mc = self.controller
        queued = mc.queued_requests_per_bank()
        base = mc.mapping.flat_bank_index(channel, rank, 0)
        return all(
            queued[base + bank] == 0 for bank in range(mc.org.banks_per_rank)
        )

    def _issue(self, key: tuple[int, int]) -> None:
        channel, rank = key
        mc = self.controller
        mc.refresh_rank(channel, rank, self.timing.trfc_ab)
        base = mc.mapping.flat_bank_index(channel, rank, 0)
        for bank in range(mc.org.banks_per_rank):
            self.stats.record(base + bank, row_units=1.0)
        self._debt[key] -= 1

    # -- checkpoint/restore ---------------------------------------------------

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["_debt"] = [
            [list(key), debt] for key, debt in sorted(self._debt.items())
        ]
        state["forced_refreshes"] = self.forced_refreshes
        state["idle_refreshes"] = self.idle_refreshes
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._debt = {
            (int(key[0]), int(key[1])): int(debt)
            for key, debt in state["_debt"]
        }
        self.forced_refreshes = int(state["forced_refreshes"])
        self.idle_refreshes = int(state["idle_refreshes"])
