"""Per-bank round-robin refresh: the LPDDR3+ baseline (Section 2.2.2).

One refresh command is issued somewhere every
``tREFI_pb = tREFW / (total_banks * refreshes_per_bank)``; the target
rotates round-robin over all (rank, bank) pairs, so successive intervals
refresh the *same row group in different banks* (Figure 2b).
"""

from __future__ import annotations

from repro.dram.refresh.base import RefreshScheduler


class PerBankRoundRobin(RefreshScheduler):
    name = "per_bank"

    def __init__(self):
        super().__init__()
        self._next_flat = 0
        self._progress: list[int] = []

    def start(self) -> None:
        self._progress = [0] * self.controller.org.total_banks
        self._schedule(0)

    def _schedule(self, delay: int) -> None:
        self.engine.schedule(delay, self._fire)

    def _fire(self) -> None:
        mc = self.controller
        timing = self.timing
        flat = self._next_flat
        channel, rank, bank = mc.mapping.unflatten_bank_index(flat)
        subarray = None
        num_subarrays = mc.org.subarrays_per_bank
        if num_subarrays > 1:
            subarray = (
                self._progress[flat] * num_subarrays // timing.refreshes_per_bank
            )
        mc.refresh_bank(channel, rank, bank, timing.trfc_pb, subarray=subarray)
        self.stats.record(flat, row_units=1.0)
        self._progress[flat] = (self._progress[flat] + 1) % timing.refreshes_per_bank
        self._next_flat = (flat + 1) % mc.org.total_banks
        self._schedule(timing.trefi_pb)

    # -- checkpoint/restore ---------------------------------------------------

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["_next_flat"] = self._next_flat
        state["_progress"] = list(self._progress)
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._next_flat = int(state["_next_flat"])
        self._progress = [int(p) for p in state["_progress"]]
