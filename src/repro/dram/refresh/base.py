"""Refresh scheduler interface and shared bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.telemetry.hub import Telemetry
from repro.telemetry.stats import StatsBase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import Engine
    from repro.dram.controller import MemoryController
    from repro.dram.timing import DramTiming


@dataclass
class RefreshStats(StatsBase):
    """Counters shared by all refresh schedulers."""

    commands_issued: int = 0
    rows_refreshed_units: float = 0.0
    per_bank_commands: dict[int, int] = field(default_factory=dict)

    def record(self, flat_bank: int, row_units: float = 1.0) -> None:
        self.commands_issued += 1
        self.rows_refreshed_units += row_units
        self.per_bank_commands[flat_bank] = (
            self.per_bank_commands.get(flat_bank, 0) + 1
        )


class RefreshScheduler:
    """Base class: a refresh scheduler is attached to a controller and
    drives itself with engine events.

    Subclasses implement :meth:`start`.  Schedulers that make their schedule
    *predictable by the OS* (the paper's same-bank schedule) additionally
    implement :meth:`stretch_bank_at`, returning which flat bank index is
    being refreshed during the stretch containing a given time; others
    return ``None`` (the OS cannot co-schedule against them).
    """

    name = "base"

    def __init__(self):
        self.controller: Optional["MemoryController"] = None
        self.engine: Optional["Engine"] = None
        self.timing: Optional["DramTiming"] = None
        self.stats = RefreshStats()
        self.telemetry = Telemetry()

    def attach(
        self,
        controller: "MemoryController",
        engine: "Engine",
        timing: "DramTiming",
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        """Wire the scheduler to its controller/engine; call before start."""
        self.controller = controller  # repro: noqa[RPR011] wiring reference; System re-attaches before any restore
        self.engine = engine  # repro: noqa[RPR011] wiring reference; System re-attaches before any restore
        self.timing = timing  # repro: noqa[RPR011] wiring reference; System re-attaches before any restore
        if telemetry is not None:
            self.telemetry = telemetry  # repro: noqa[RPR011] wiring reference; System re-attaches before any restore

    def start(self) -> None:
        """Schedule the first refresh event.  Subclasses override.

        Must be callable with ``engine.now > 0``: a checkpoint restored
        under a *different* refresh policy drops the snapshot's refresh
        events and starts the new policy mid-run instead.
        """
        raise NotImplementedError

    # -- checkpoint/restore ---------------------------------------------------

    def snapshot_state(self) -> dict:
        """Serializable mutable state; subclasses extend the base dict."""
        return {"stats": self.stats.to_dict()}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state` (references stay untouched)."""
        self.stats = RefreshStats.from_dict(state["stats"])

    # -- OS-visible schedule (co-design hardware/software interface) ---------

    def stretch_bank_at(self, time: int) -> Optional[int]:
        """Flat bank index refresh-busy during the stretch containing *time*,
        or ``None`` when the schedule is not stretch-structured."""
        return None

    def is_predictable(self) -> bool:
        """True when the OS can learn the refresh target for a quantum."""
        return self.stretch_bank_at(0) is not None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(commands={self.stats.commands_issued})"
