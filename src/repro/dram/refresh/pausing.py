"""Refresh Pausing — Nair et al., HPCA 2013 (paper Section 7).

An all-bank refresh whose tRFC is split into segments (refresh "pause
points"); between segments the controller checks for pending demand
requests to the rank and, if any exist, pauses the remaining refresh work
until the rank drains or the deadline forces completion (the whole
command must finish before the next tREFI obligation).

The paper notes this needs vendor-specific knowledge of the internal
refresh sequence; as a *model* it upper-bounds what pausing can buy.
"""

from __future__ import annotations

from repro.dram.refresh.base import RefreshScheduler


class RefreshPausing(RefreshScheduler):
    name = "pausing"

    #: tRFC is divided into this many pausable segments.
    SEGMENTS = 4
    #: How often a paused refresh re-checks the rank, as a fraction of the
    #: segment length.
    RECHECK_DIVISOR = 2

    def __init__(self):
        super().__init__()
        self.pauses = 0
        self.forced_completions = 0

    def start(self) -> None:
        mc = self.controller
        trefi = self.timing.trefi_ab
        for channel in range(mc.org.channels):
            for rank in range(mc.org.ranks_per_channel):
                offset = rank * trefi // mc.org.ranks_per_channel
                self.engine.schedule(
                    offset, self._begin_command, (channel, rank)
                )

    def _begin_command(self, key: tuple[int, int]) -> None:
        # Bound method + arg tuple (not a closure) so the queued event can
        # be captured as a checkpoint descriptor.
        channel, rank = key
        deadline = self.engine.now + self.timing.trefi_ab
        self._run_segments((channel, rank, self.SEGMENTS, deadline))
        self.engine.schedule(self.timing.trefi_ab, self._begin_command, key)

    def _run_segments(self, ctx: tuple[int, int, int, int]) -> None:
        channel, rank, remaining, deadline = ctx
        if remaining == 0:
            base = self.controller.mapping.flat_bank_index(channel, rank, 0)
            for bank in range(self.controller.org.banks_per_rank):
                self.stats.record(base + bank, row_units=1.0)
            return
        segment = max(1, self.timing.trfc_ab // self.SEGMENTS)
        now = self.engine.now
        # Forced completion: the rest must fit before the deadline.
        must_finish_by = deadline - remaining * segment
        if now >= must_finish_by:
            if remaining == self.SEGMENTS:
                pass  # command never got to pause
            self.forced_completions += 1
            for _ in range(remaining):
                self.controller.refresh_rank(channel, rank, segment)
            self._run_segments((channel, rank, 0, deadline))
            return
        if self._rank_has_demand(channel, rank) and remaining < self.SEGMENTS:
            # Pause: let demand through, re-check shortly.
            self.pauses += 1
            self.engine.schedule(
                max(1, segment // self.RECHECK_DIVISOR),
                self._run_segments,
                (channel, rank, remaining, deadline),
            )
            return
        end = self.controller.refresh_rank(channel, rank, segment)
        self.engine.schedule_at(
            end, self._run_segments, (channel, rank, remaining - 1, deadline)
        )

    # -- checkpoint/restore ---------------------------------------------------

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["pauses"] = self.pauses
        state["forced_completions"] = self.forced_completions
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self.pauses = int(state["pauses"])
        self.forced_completions = int(state["forced_completions"])

    def _rank_has_demand(self, channel: int, rank: int) -> bool:
        mc = self.controller
        queued = mc.queued_requests_per_bank()
        base = mc.mapping.flat_bank_index(channel, rank, 0)
        return any(
            queued[base + bank] > 0 for bank in range(mc.org.banks_per_rank)
        )
