"""Refresh schedulers: the paper's proposal and every evaluated baseline."""

from repro.dram.refresh.base import RefreshScheduler, RefreshStats
from repro.dram.refresh.no_refresh import NoRefresh
from repro.dram.refresh.all_bank import AllBankRefresh
from repro.dram.refresh.per_bank_rr import PerBankRoundRobin
from repro.dram.refresh.same_bank import SameBankSequential
from repro.dram.refresh.ooo_per_bank import OutOfOrderPerBank
from repro.dram.refresh.adaptive import AdaptiveRefresh
from repro.dram.refresh.elastic import ElasticRefresh
from repro.dram.refresh.pausing import RefreshPausing

SCHEDULERS = {
    "no_refresh": NoRefresh,
    "all_bank": AllBankRefresh,
    "per_bank": PerBankRoundRobin,
    "same_bank": SameBankSequential,
    "ooo_per_bank": OutOfOrderPerBank,
    "adaptive": AdaptiveRefresh,
    "elastic": ElasticRefresh,
    "pausing": RefreshPausing,
}


def make_scheduler(name: str, **kwargs) -> RefreshScheduler:
    """Instantiate a refresh scheduler by registry name."""
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown refresh scheduler {name!r}; known: {sorted(SCHEDULERS)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "RefreshScheduler",
    "RefreshStats",
    "NoRefresh",
    "AllBankRefresh",
    "PerBankRoundRobin",
    "SameBankSequential",
    "OutOfOrderPerBank",
    "AdaptiveRefresh",
    "ElasticRefresh",
    "RefreshPausing",
    "SCHEDULERS",
    "make_scheduler",
]
