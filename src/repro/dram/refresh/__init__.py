"""Refresh schedulers: the paper's proposal and every evaluated baseline.

Policies are looked up by string key in :data:`REGISTRY`;
:func:`make_scheduler` instantiates them and :func:`available_policies`
lists the valid keys.  Unknown names raise :class:`ConfigError` with a
did-you-mean suggestion, and :class:`~repro.core.system.Scenario`
validates its ``refresh_policy`` against this registry at construction.
"""

from difflib import get_close_matches

from repro.dram.refresh.base import RefreshScheduler, RefreshStats
from repro.dram.refresh.no_refresh import NoRefresh
from repro.dram.refresh.all_bank import AllBankRefresh
from repro.dram.refresh.per_bank_rr import PerBankRoundRobin
from repro.dram.refresh.same_bank import SameBankSequential
from repro.dram.refresh.ooo_per_bank import OutOfOrderPerBank
from repro.dram.refresh.adaptive import AdaptiveRefresh
from repro.dram.refresh.elastic import ElasticRefresh
from repro.dram.refresh.pausing import RefreshPausing
from repro.errors import ConfigError

#: Policy name -> scheduler class.  Names are what :class:`Scenario`
#: stores and what the CLIs accept.
REGISTRY: dict[str, type[RefreshScheduler]] = {
    "no_refresh": NoRefresh,
    "all_bank": AllBankRefresh,
    "per_bank": PerBankRoundRobin,
    "same_bank": SameBankSequential,
    "ooo_per_bank": OutOfOrderPerBank,
    "adaptive": AdaptiveRefresh,
    "elastic": ElasticRefresh,
    "pausing": RefreshPausing,
}

#: Backwards-compatible alias for the pre-registry name.
SCHEDULERS = REGISTRY


def available_policies() -> list[str]:
    """Registered refresh policy names, sorted."""
    return sorted(REGISTRY)


def validate_policy(name: str) -> str:
    """Return *name* if registered, else raise :class:`ConfigError` with a
    did-you-mean suggestion."""
    if name in REGISTRY:
        return name
    hint = ""
    close = get_close_matches(name, REGISTRY, n=1)
    if close:
        hint = f" — did you mean {close[0]!r}?"
    raise ConfigError(
        f"unknown refresh policy {name!r}{hint} "
        f"(known: {', '.join(available_policies())})"
    )


def make_scheduler(name: str, **kwargs) -> RefreshScheduler:
    """Instantiate a refresh scheduler by registry name."""
    return REGISTRY[validate_policy(name)](**kwargs)


__all__ = [
    "RefreshScheduler",
    "RefreshStats",
    "NoRefresh",
    "AllBankRefresh",
    "PerBankRoundRobin",
    "SameBankSequential",
    "OutOfOrderPerBank",
    "AdaptiveRefresh",
    "ElasticRefresh",
    "RefreshPausing",
    "REGISTRY",
    "SCHEDULERS",
    "available_policies",
    "validate_policy",
    "make_scheduler",
]
