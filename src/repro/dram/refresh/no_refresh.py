"""Ideal no-refresh scheduler (upper bound used by Figures 3 and 4)."""

from __future__ import annotations

from repro.dram.refresh.base import RefreshScheduler


class NoRefresh(RefreshScheduler):
    """Never issues a refresh: models ideal refresh-free DRAM."""

    name = "no_refresh"

    def start(self) -> None:
        return None
