"""Out-of-order per-bank refresh (Chang et al., HPCA 2014; paper Section 6.5).

Every tREFI_pb the controller refreshes the bank with the *fewest
outstanding demand requests* among the banks that still owe refreshes in the
current retention window.  A deadline rule forces critically-late banks so
that every bank still receives its full quota of commands per window.

The paper observes this helps only marginally over round-robin per-bank
refresh: with task data spread over all banks, a bank that is idle when the
decision is made typically receives requests *during* the long tRFC_pb.
"""

from __future__ import annotations

from repro.dram.refresh.base import RefreshScheduler


class OutOfOrderPerBank(RefreshScheduler):
    name = "ooo_per_bank"

    def __init__(self):
        super().__init__()
        self._debt: list[int] = []
        self._window_end = 0
        self._rr_tiebreak = 0

    def start(self) -> None:
        # Mid-run starts (cross-policy restore) open the window at `now`.
        self._begin_window(start=self.engine.now)
        # order: appended after anything already queued this cycle, so the
        # first refresh decision follows the controller picks in the bucket.
        self.engine.schedule(0, self._fire)

    # -- checkpoint/restore ---------------------------------------------------

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["_debt"] = list(self._debt)
        state["_window_end"] = self._window_end
        state["_rr_tiebreak"] = self._rr_tiebreak
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._debt = [int(d) for d in state["_debt"]]
        self._window_end = int(state["_window_end"])
        self._rr_tiebreak = int(state["_rr_tiebreak"])

    def _begin_window(self, start: int) -> None:
        total = self.controller.org.total_banks
        self._debt = [self.timing.refreshes_per_bank] * total
        self._window_end = start + self.timing.trefw

    def _fire(self) -> None:
        now = self.engine.now
        if now >= self._window_end:
            self._begin_window(start=self._window_end)

        target = self._pick_target(now)
        if target is not None:
            mc = self.controller
            channel, rank, bank = mc.mapping.unflatten_bank_index(target)
            mc.refresh_bank(channel, rank, bank, self.timing.trfc_pb)
            self.stats.record(target, row_units=1.0)
            self._debt[target] -= 1
        self.engine.schedule(self.timing.trefi_pb, self._fire)

    def _pick_target(self, now: int) -> int | None:
        """Deadline-critical bank if any, else least-loaded indebted bank."""
        owing = [flat for flat, debt in enumerate(self._debt) if debt > 0]
        if not owing:
            return None

        slots_left = max(1, (self._window_end - now) // self.timing.trefi_pb)
        total_debt = sum(self._debt)
        critical = [f for f in owing if self._debt[f] * len(owing) >= slots_left]
        if total_debt >= slots_left and critical:
            candidates = critical
        else:
            candidates = owing

        queue_len = self.controller.queued_requests_per_bank()
        best = min(
            candidates,
            key=lambda f: (queue_len[f], (f - self._rr_tiebreak) % len(self._debt)),
        )
        self._rr_tiebreak = (best + 1) % len(self._debt)
        return best
