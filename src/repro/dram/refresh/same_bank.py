"""The paper's proposed per-bank refresh schedule (Algorithm 1).

Contrary to the default round-robin per-bank scheduler, refresh commands
stay on the **same bank** (advancing the row group) in successive tREFI_pb
intervals until every row of that bank is refreshed, then move to the next
bank — bank first, then rank.

Consequence (Section 5.1): with 16 banks and a 64 ms retention window each
bank is refresh-busy only during one contiguous tREFW/16 = 4 ms *stretch*
and refresh-free for the remaining 60 ms.  Because the stretch length
coincides with the OS scheduling quantum, the OS can co-schedule tasks
around it — the schedule is fully *predictable*, which is what
:meth:`stretch_bank_at` exposes to the OS.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.refresh.base import RefreshScheduler
from repro.telemetry.events import (
    RefreshStretchBeginEvent,
    RefreshStretchEndEvent,
)


#: tRFC growth when one command covers b-times the rows, fitted to the
#: paper's DDR4 FGR data (1x/2x/4x granularity -> tRFC ratios
#: 1 / 1.35 / 1.63, i.e. roughly rows^0.35).
BATCH_EXPONENT = 0.35


def plan_batches(timing, batch_exponent: float = BATCH_EXPONENT) -> tuple[int, int]:
    """Plan the per-command row batch so a bank's refresh work fits in its
    stretch; returns ``(commands_per_bank, trfc_per_command)``.

    At 32 ms retention and high densities, tRFC_pb exceeds tREFI_pb:
    serialised single-row-group commands cannot finish a bank within
    tREFW / total_banks.  Batching b row groups per command costs only
    ~b^0.35 in tRFC (coarser granularity is more efficient — the inverse
    of the DDR4 FGR scaling in Section 6.3), so doubling the batch
    shrinks total refresh-busy time until the stretch fits.

    A module-level function (not a method) so the invariant monitors can
    recompute the expected schedule from the timing alone, independent of
    any scheduler instance's state.
    """
    n = timing.refreshes_per_bank
    stretch = timing.refresh_stretch
    batch = 1
    while batch < n:
        commands = -(-n // batch)
        trfc = round(timing.trfc_pb * batch ** batch_exponent)
        if commands * trfc <= stretch:
            break
        batch *= 2
    return -(-n // batch), round(timing.trfc_pb * batch ** batch_exponent)


class SameBankSequential(RefreshScheduler):
    name = "same_bank"

    BATCH_EXPONENT = BATCH_EXPONENT

    def __init__(self):
        super().__init__()
        # Algorithm 1 state: the bank being refreshed and its row progress.
        self._next_refresh_flat = 0
        self._rows_refreshed = 0
        # Global command index; command k fires at exactly
        # k * tREFW / (total_banks * commands_per_bank), so the schedule
        # never drifts off the stretch grid (integer tREFI rounding would
        # otherwise accumulate error across windows).
        self._cmd_index = 0
        self._commands_per_bank = 0
        self._trfc_cmd = 0

    def _plan_batches(self) -> None:
        """Install the :func:`plan_batches` schedule on this instance."""
        self._commands_per_bank, self._trfc_cmd = plan_batches(  # repro: noqa[RPR011] pure function of timing; restore_state recomputes it
            self.timing, self.BATCH_EXPONENT
        )

    def _command_time(self, k: int) -> int:
        timing = self.timing
        per_window = timing.total_banks * self._commands_per_bank
        return (k * timing.trefw) // per_window

    def start(self) -> None:
        self._plan_batches()
        now = self.engine.now
        if now > 0:
            # Mid-run start (cross-policy restore): resume the grid at the
            # first command slot not yet in the past and point the
            # Algorithm-1 cursor at that slot's bank/row position.
            per_window = self.timing.total_banks * self._commands_per_bank
            k = (now * per_window + self.timing.trefw - 1) // self.timing.trefw
            while self._command_time(k) < now:
                k += 1
            self._cmd_index = k
            self._next_refresh_flat = (
                k // self._commands_per_bank
            ) % self.timing.total_banks
            self._rows_refreshed = k % self._commands_per_bank
        self.engine.schedule_at(self._command_time(self._cmd_index), self._fire)

    # -- checkpoint/restore ---------------------------------------------------

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["_next_refresh_flat"] = self._next_refresh_flat
        state["_rows_refreshed"] = self._rows_refreshed
        state["_cmd_index"] = self._cmd_index
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        # Batch plan is a pure function of the timing; recompute rather
        # than trusting the payload.
        self._plan_batches()
        self._next_refresh_flat = int(state["_next_refresh_flat"])
        self._rows_refreshed = int(state["_rows_refreshed"])
        self._cmd_index = int(state["_cmd_index"])

    def _fire(self) -> None:
        mc = self.controller
        timing = self.timing
        flat = self._next_refresh_flat
        channel, rank, bank = mc.mapping.unflatten_bank_index(flat)
        subarray = None
        num_subarrays = mc.org.subarrays_per_bank
        if num_subarrays > 1:
            # Rows are refreshed in order, so the row group being refreshed
            # walks the subarrays front to back within the stretch.
            subarray = (
                self._rows_refreshed * num_subarrays // self._commands_per_bank
            )
        if self.telemetry.enabled and self._rows_refreshed == 0:
            self.telemetry.emit(
                RefreshStretchBeginEvent(time=self.engine.now, bank=flat)
            )
        end = mc.refresh_bank(
            channel, rank, bank, self._trfc_cmd, subarray=subarray
        )
        row_units = timing.refreshes_per_bank / self._commands_per_bank
        self.stats.record(flat, row_units=row_units)

        # Algorithm 1: stay on this bank until all of its row groups are
        # refreshed, then advance to the next bank (wrapping to next rank).
        self._rows_refreshed += 1
        if self._rows_refreshed >= self._commands_per_bank:
            self._rows_refreshed = 0
            self._next_refresh_flat = (flat + 1) % mc.org.total_banks
            if self.telemetry.enabled:
                self.telemetry.emit(
                    RefreshStretchEndEvent(time=end, bank=flat)
                )

        self._cmd_index += 1
        self.engine.schedule_at(self._command_time(self._cmd_index), self._fire)

    # -- OS-visible schedule ---------------------------------------------------

    def stretch_bank_at(self, time: int) -> Optional[int]:
        """Flat bank index being refreshed during the stretch containing
        *time*.  Stretches tile the timeline from t=0, each
        ``tREFW / total_banks`` long, cycling over all banks."""
        timing = self.timing
        return (time * timing.total_banks // timing.trefw) % timing.total_banks
