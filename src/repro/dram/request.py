"""Memory request objects exchanged between cores and the controller."""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.dram.address import DramCoordinate


class RequestType(enum.Enum):
    READ = "read"
    WRITE = "write"


class MemoryRequest:
    """One cache-line-sized DRAM transaction.

    Latency accounting fields are filled in by the controller:

    ``arrive_time``   when the request entered the controller queue
    ``start_time``    when its first DRAM command issued
    ``finish_time``   when its data burst completed
    ``refresh_stall`` cycles its start was delayed by a refresh-busy bank
    """

    __slots__ = (
        "req_id",
        "rtype",
        "address",
        "coord",
        "task_id",
        "arrive_time",
        "start_time",
        "finish_time",
        "refresh_stall",
        "on_complete",
        "row_hit",
        "ctx",
        "is_read",
        "in_queue",
    )

    def __init__(
        self,
        rtype: RequestType,
        address: int,
        coord: DramCoordinate,
        task_id: int = -1,
        on_complete: Optional[Callable[["MemoryRequest"], None]] = None,
        req_id: int = -1,
    ):
        # Ids come from the accepting controller (per-run, deterministic),
        # not a process-global counter (RPR002); -1 = not yet enqueued.
        self.req_id = req_id
        self.rtype = rtype
        # Precomputed: the controller/bank hot path tests this on every
        # queue, service and completion step.
        self.is_read = rtype is RequestType.READ
        self.address = address
        self.coord = coord
        self.task_id = task_id
        self.arrive_time = -1
        self.start_time = -1
        self.finish_time = -1
        self.refresh_stall = 0
        self.on_complete = on_complete
        self.row_hit = False
        # True while the request sits in a controller bank queue.  Queue
        # membership is tracked here (not by list scans) so the row-hit
        # index can lazily discard entries popped through the other view;
        # derived state, rebuilt on restore, never serialized.
        self.in_queue = False
        # Issuer-owned completion context (e.g. the core's ROB entry).
        # Letting the issuer hang its state here keeps ``on_complete`` a
        # plain bound method instead of a per-request closure.
        self.ctx = None

    @property
    def latency(self) -> int:
        """Total queueing + service latency in CPU cycles."""
        if self.finish_time < 0 or self.arrive_time < 0:
            raise ValueError("request has not completed")
        return self.finish_time - self.arrive_time

    def __repr__(self) -> str:
        return (
            f"MemoryRequest(#{self.req_id} {self.rtype.value} "
            f"bank={self.coord.bank_key} row={self.coord.row})"
        )
