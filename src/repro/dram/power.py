"""DRAM energy estimation.

An event-energy model in the style of the Micron DDR3 power calculator:
each command class carries a representative energy, background power
accrues with wall-clock time, and refresh energy accrues with
refresh-busy time.  Defaults are representative DDR3-1600 x8-rank values;
they are configurable because the *relative* comparison across refresh
schemes (e.g. Elastic Refresh's motivation) is the point, not absolute
milli-joules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.controller import MemoryController


@dataclass(frozen=True)
class DramEnergyParams:
    """Per-event energies (nanojoules) and background power (milliwatts)."""

    activate_precharge_nj: float = 15.0  # one ACT+PRE pair
    read_burst_nj: float = 10.0
    write_burst_nj: float = 11.0
    refresh_mw: float = 250.0  # rank power while refresh-busy
    background_mw_per_rank: float = 95.0
    cpu_freq_ghz: float = 3.2

    def cycles_to_ns(self, cycles: int) -> float:
        return cycles / self.cpu_freq_ghz


@dataclass
class EnergyBreakdown:
    """Energy per component over one measured interval, in millijoules."""

    background_mj: float
    activate_mj: float
    read_mj: float
    write_mj: float
    refresh_mj: float
    elapsed_ns: float

    @property
    def total_mj(self) -> float:
        return (
            self.background_mj
            + self.activate_mj
            + self.read_mj
            + self.write_mj
            + self.refresh_mj
        )

    @property
    def refresh_fraction(self) -> float:
        total = self.total_mj
        return self.refresh_mj / total if total > 0 else 0.0

    @property
    def average_power_mw(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        # mJ / ns = 1e6 W = 1e9 mW.
        return self.total_mj * 1e9 / self.elapsed_ns

    def __str__(self) -> str:
        return (
            f"EnergyBreakdown(total={self.total_mj:.3f}mJ, "
            f"refresh={self.refresh_mj:.3f}mJ [{self.refresh_fraction:.1%}], "
            f"avg={self.average_power_mw:.0f}mW)"
        )

    def to_dict(self) -> dict:
        from dataclasses import fields

        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyBreakdown":
        from repro.serialize import dataclass_from_dict

        return dataclass_from_dict(cls, data)


def estimate_energy(
    controller: MemoryController,
    elapsed_cycles: int,
    params: DramEnergyParams | None = None,
) -> EnergyBreakdown:
    """Estimate DRAM energy over *elapsed_cycles* from controller state.

    Activation/read/write counts come from per-bank stats; refresh-busy
    time from the banks' ``refresh_busy_cycles`` (rank-level refreshes are
    counted once per bank, matching per-bank current draw).
    """
    params = params or DramEnergyParams()
    activations = sum(b.stats.activations for b in controller.banks)
    reads = sum(b.stats.reads for b in controller.banks)
    writes = sum(b.stats.writes for b in controller.banks)
    refresh_cycles = sum(b.stats.refresh_busy_cycles for b in controller.banks)

    elapsed_ns = params.cycles_to_ns(elapsed_cycles)
    num_ranks = (
        controller.org.channels * controller.org.ranks_per_channel
    )
    banks_per_rank = controller.org.banks_per_rank

    background_mj = (
        params.background_mw_per_rank * num_ranks * elapsed_ns * 1e-9
    )
    activate_mj = params.activate_precharge_nj * activations * 1e-6
    read_mj = params.read_burst_nj * reads * 1e-6
    write_mj = params.write_burst_nj * writes * 1e-6
    # refresh_busy_cycles is per-bank; a rank-level refresh drives the rank
    # current for tRFC once, so divide by banks-per-rank.
    refresh_ns = params.cycles_to_ns(refresh_cycles) / banks_per_rank
    refresh_mj = params.refresh_mw * refresh_ns * 1e-9

    return EnergyBreakdown(
        background_mj=background_mj,
        activate_mj=activate_mj,
        read_mj=read_mj,
        write_mj=write_mj,
        refresh_mj=refresh_mj,
        elapsed_ns=elapsed_ns,
    )
