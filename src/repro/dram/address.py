"""Physical-address <-> DRAM-coordinate mapping.

The OS side of the co-design needs exactly this mapping exposed to it
(paper Section 1: "exposing the hardware address-mapping ... to the OS"), so
it lives in one shared object used by both the memory controller and the
bank-aware allocator.

The default layout places the bank bits directly above the page-offset/row
bits, i.e. consecutive 4KB frames stripe round-robin across channels, then
banks, then ranks — the interleaving that gives the bank-oblivious baseline
its natural bank-level parallelism.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.config.dram_configs import DramOrganization
from repro.errors import AddressMapError

#: Frame-decode memo bound.  Cleared (deterministically, by insertion
#: count alone) when full, so long sweeps cannot grow it without bound.
_FRAME_CACHE_MAX = 65536


class DramCoordinate(NamedTuple):
    """A fully decoded DRAM location.

    A NamedTuple rather than a dataclass: the controller decodes one of
    these per memory access, and C-level tuple construction keeps that
    path cheap.  Immutable, ordered, hashable — same contract as the
    frozen dataclass it replaced.
    """

    channel: int
    rank: int
    bank: int
    row: int
    column: int

    @property
    def bank_key(self) -> tuple[int, int, int]:
        """(channel, rank, bank) triple identifying the physical bank."""
        return (self.channel, self.rank, self.bank)


#: Module-level binding of the C-level coordinate constructor (see
#: address_to_coordinate).
_coord_make = DramCoordinate._make

#: Frame-number field orders (low/fastest-changing field first).
#: ``interleaved`` (default): consecutive frames rotate channels then banks
#: — the DRAM-oblivious layout of Section 2.3, giving any task natural
#: bank-level parallelism.  ``bank_contiguous``: consecutive frames walk
#: the rows of one bank first — contiguous allocations stay in one bank.
LAYOUTS: dict[str, tuple[str, ...]] = {
    "interleaved": ("channel", "bank", "rank", "row"),
    "bank_contiguous": ("row", "channel", "bank", "rank"),
    "rank_interleaved": ("channel", "rank", "bank", "row"),
}


class AddressMapping:
    """Maps physical addresses and frame numbers onto DRAM coordinates.

    One DRAM row (4KB by default) holds exactly one OS page, so a frame
    number maps to a single (channel, rank, bank, row) and the column is
    selected by the in-page offset.  The frame-number bit layout is
    selected by *layout* (see :data:`LAYOUTS`); this is exactly the
    hardware mapping the co-design exposes to the OS.
    """

    def __init__(
        self,
        organization: DramOrganization,
        total_rows_per_bank: int,
        layout: str = "interleaved",
    ):
        organization.validate()
        if total_rows_per_bank <= 0:
            raise AddressMapError("rows per bank must be positive")
        if layout not in LAYOUTS:
            raise AddressMapError(
                f"unknown layout {layout!r}; known: {sorted(LAYOUTS)}"
            )
        self.org = organization
        self.layout = layout
        self.rows_per_bank = total_rows_per_bank
        self._channels = organization.channels
        self._ranks = organization.ranks_per_channel
        self._banks = organization.banks_per_rank
        self._field_sizes = {
            "channel": self._channels,
            "rank": self._ranks,
            "bank": self._banks,
            "row": total_rows_per_bank,
        }
        self._fields = LAYOUTS[layout]
        self.total_frames = (
            self._channels * self._ranks * self._banks * total_rows_per_bank
        )
        self.page_bytes = organization.row_size_bytes
        self.total_bytes = self.total_frames * self.page_bytes
        # -- decode acceleration (pure precomputation; no semantic change) --
        # Per-layout divisor chain, unrolled into a parallel tuple so the
        # decode loop needs no dict lookups.
        self._field_chain = tuple(
            (field, self._field_sizes[field]) for field in self._fields
        )
        # All-power-of-two field sizes (every real organization): decode a
        # frame with four shift/mask pairs instead of the divmod loop.
        # Stored flat, in channel/rank/bank/row order.
        sizes = [self._field_sizes[field] for field in self._fields]
        if all(size & (size - 1) == 0 for size in sizes):
            shift = 0
            by_field = {}
            for field, size in self._field_chain:
                by_field[field] = (shift, size - 1)
                shift += size.bit_length() - 1
            self._decode_shifts: tuple[int, ...] | None = (
                *by_field["channel"],
                *by_field["rank"],
                *by_field["bank"],
                *by_field["row"],
            )
        else:  # pragma: no cover - exotic configs keep the divmod path
            self._decode_shifts = None
        # Frame -> (channel, rank, bank, row) memo; frames repeat heavily
        # within a run (every access to a page hits the same frame).
        self._frame_cache: dict[int, DramCoordinate] = {}
        # Byte address split via shifts when the page/cacheline sizes are
        # powers of two (they always are for real organizations).
        page = self.page_bytes
        line = organization.cacheline_bytes
        if page & (page - 1) == 0 and line & (line - 1) == 0:
            self._page_shift = page.bit_length() - 1
            self._page_mask = page - 1
            self._line_shift = line.bit_length() - 1
        else:  # pragma: no cover - exotic configs keep the divmod path
            self._page_shift = None
            self._page_mask = 0
            self._line_shift = 0
        # Flat bank index -> (channel, rank, bank) lookup table.
        self._unflat = tuple(
            (
                flat // (self._ranks * self._banks),
                (flat // self._banks) % self._ranks,
                flat % self._banks,
            )
            for flat in range(organization.total_banks)
        )

    # -- frame-level mapping (used by the OS allocator) ----------------------

    def frame_to_coordinate(self, frame: int) -> DramCoordinate:
        """Decode a physical frame number into a DRAM coordinate (column 0)."""
        coord = self._frame_cache.get(frame)
        if coord is not None:
            return coord
        if not 0 <= frame < self.total_frames:
            raise AddressMapError(
                f"frame {frame} out of range [0, {self.total_frames})"
            )
        shifts = self._decode_shifts
        if shifts is not None:
            cs, cm, rs, rm, bs, bm, ws, wm = shifts
            coord = DramCoordinate._make(
                (
                    (frame >> cs) & cm,
                    (frame >> rs) & rm,
                    (frame >> bs) & bm,
                    (frame >> ws) & wm,
                    0,
                )
            )
        else:  # pragma: no cover - exotic configs keep the divmod path
            values = {}
            rest = frame
            for field, size in self._field_chain:
                rest, values[field] = divmod(rest, size)
            coord = DramCoordinate(
                channel=values["channel"],
                rank=values["rank"],
                bank=values["bank"],
                row=values["row"],
                column=0,
            )
        cache = self._frame_cache
        if len(cache) >= _FRAME_CACHE_MAX:
            cache.clear()
        cache[frame] = coord
        return coord

    def coordinate_to_frame(self, coord: DramCoordinate) -> int:
        """Encode a DRAM coordinate back into a frame number."""
        self._check_coord(coord)
        values = {
            "channel": coord.channel,
            "rank": coord.rank,
            "bank": coord.bank,
            "row": coord.row,
        }
        frame = 0
        for field in reversed(self._fields):
            frame = frame * self._field_sizes[field] + values[field]
        return frame

    def frame_to_bank_index(self, frame: int) -> int:
        """Flat bank index in [0, total_banks) for a frame.

        This is the ``get_bank_id_from_page`` helper of Algorithm 2.
        """
        coord = self.frame_to_coordinate(frame)
        return (coord[0] * self._ranks + coord[1]) * self._banks + coord[2]

    # -- address-level mapping (used by the memory controller) ---------------

    def address_to_coordinate(self, address: int) -> DramCoordinate:
        """Decode a byte address into a full DRAM coordinate."""
        if address < 0 or address >= self.total_bytes:
            raise AddressMapError(
                f"address {address:#x} out of range [0, {self.total_bytes:#x})"
            )
        if self._page_shift is not None:
            frame = address >> self._page_shift
            column = (address & self._page_mask) >> self._line_shift
        else:  # pragma: no cover - exotic configs keep the divmod path
            frame, offset = divmod(address, self.page_bytes)
            column = offset // self.org.cacheline_bytes
        coord = self._frame_cache.get(frame)
        if coord is None:
            coord = self.frame_to_coordinate(frame)
        # _make is classmethod(tuple.__new__): builds the tuple at C level,
        # skipping the generated __new__'s Python frame on this per-access
        # path (bound once at function definition, not per call).
        return _coord_make((coord[0], coord[1], coord[2], coord[3], column))

    def frame_offset_to_address(self, frame: int, offset: int = 0) -> int:
        """Byte address of *offset* within physical frame *frame*."""
        if not 0 <= offset < self.page_bytes:
            raise AddressMapError(f"offset {offset} outside page")
        return frame * self.page_bytes + offset

    # -- helpers --------------------------------------------------------------

    def flat_bank_index(self, channel: int, rank: int, bank: int) -> int:
        """Flatten (channel, rank, bank) into [0, total_banks).

        Layout: ``channel * ranks * banks + rank * banks + bank`` — banks of
        rank 0 come first, matching the refresh stretch order of the
        proposed schedule (bank 0..7 of rank 0, then rank 1).
        """
        return (channel * self._ranks + rank) * self._banks + bank

    def unflatten_bank_index(self, index: int) -> tuple[int, int, int]:
        """Inverse of :meth:`flat_bank_index` (precomputed table)."""
        if not 0 <= index < self.org.total_banks:
            raise AddressMapError(f"bank index {index} out of range")
        return self._unflat[index]

    def bank_of_flat_index(self, index: int) -> int:
        """The per-rank bank number of a flat bank index."""
        return index % self._banks

    def frames_in_bank(self, flat_bank: int) -> int:
        """Number of page frames hosted by one bank."""
        return self.rows_per_bank

    def _check_coord(self, coord: DramCoordinate) -> None:
        if not (
            0 <= coord.channel < self._channels
            and 0 <= coord.rank < self._ranks
            and 0 <= coord.bank < self._banks
            and 0 <= coord.row < self.rows_per_bank
        ):
            raise AddressMapError(f"coordinate out of range: {coord}")

    def __repr__(self) -> str:
        return (
            f"AddressMapping({self._channels}ch x {self._ranks}rk x "
            f"{self._banks}bk x {self.rows_per_bank}rows)"
        )
