"""DRAM timing converted to integer CPU cycles.

:class:`DramTiming` is the single object the hot path consults: every JEDEC
parameter and every refresh parameter, pre-converted to the CPU clock so the
controller only compares integers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.dram_configs import DensityConfig, DramTimingSpec, FgrMode
from repro.config.system_configs import SystemConfig
from repro.errors import ConfigError
from repro.units import ClockDomain, ns, us


@dataclass(frozen=True)
class DramTiming:
    """All DRAM timing in CPU cycles.

    Built via :meth:`from_config`; refresh parameters reflect both the chip
    density and the configured FGR mode and refresh scaling.
    """

    cpu_per_mem_cycle: int
    tCL: int
    tCWL: int
    tRCD: int
    tRP: int
    tRAS: int
    tBL: int
    tCCD: int
    tRTP: int
    tWR: int
    tWTR: int
    tRRD: int
    tFAW: int
    tRTRS: int
    # refresh, already scaled:
    trefw: int  # retention window (scaled)
    trefi_ab: int  # all-bank (per-rank) refresh command interval
    trfc_ab: int  # all-bank refresh cycle time
    trfc_pb: int  # per-bank refresh cycle time
    refreshes_per_bank: int  # commands needed per bank per (scaled) window
    total_banks: int

    @property
    def tRC(self) -> int:
        return self.tRAS + self.tRP

    @property
    def trefi_pb(self) -> int:
        """Global per-bank refresh command interval.

        One per-bank command is issued somewhere every tREFI_pb; each of the
        ``total_banks`` banks therefore receives ``refreshes_per_bank``
        commands per retention window (paper Section 5.1: with 16 banks and
        64 ms retention a bank's rows complete within a 4 ms stretch).
        """
        return self.trefw // (self.total_banks * self.refreshes_per_bank)

    @property
    def refresh_stretch(self) -> int:
        """Length of one bank's contiguous refresh stretch under the
        proposed same-bank schedule: tREFW / total_banks."""
        return self.trefw // self.total_banks

    @property
    def read_hit_latency(self) -> int:
        """Unloaded row-buffer-hit read latency (CAS + burst)."""
        return self.tCL + self.tBL

    @property
    def read_miss_latency(self) -> int:
        """Unloaded row-closed read latency (ACT + CAS + burst)."""
        return self.tRCD + self.tCL + self.tBL

    @property
    def read_conflict_latency(self) -> int:
        """Unloaded row-conflict read latency (PRE + ACT + CAS + burst)."""
        return self.tRP + self.tRCD + self.tCL + self.tBL

    @staticmethod
    def from_config(config: SystemConfig) -> "DramTiming":
        """Derive CPU-cycle timing from a :class:`SystemConfig`."""
        spec: DramTimingSpec = config.dram_timing
        dens: DensityConfig = config.density_config
        spec.validate()
        dens.validate()

        cpu = ClockDomain(config.cores.freq_mhz)
        ratio = config.cores.freq_mhz / spec.bus_mhz
        if abs(ratio - round(ratio)) > 1e-9:
            raise ConfigError(
                "CPU frequency must be an integer multiple of the memory bus "
                f"frequency (got {config.cores.freq_mhz}/{spec.bus_mhz})"
            )
        per_mem = int(round(ratio))

        def mem_cycles(n: int) -> int:
            return n * per_mem

        mode: FgrMode = config.fgr_mode
        # The JEDEC tREFI is specified for the nominal 64ms retention
        # window (< 85C); above 85C the window halves and commands must be
        # issued twice as often (same rows per command, same tRFC).
        from repro.units import ms as _ms

        retention_ratio = config.trefw_ps / _ms(64)
        trefi_ab_ps = max(
            1, round(us(dens.trefi_ab_us) * retention_ratio) // mode.trefi_divisor
        )
        trfc_ab_ps = ns(dens.trfc_ab_ns / mode.trfc_divisor)
        trfc_pb_ps = ns(dens.trfc_pb_ns)

        trefw = cpu.cycles(config.trefw_sim_ps)
        trefi_ab = cpu.cycles(trefi_ab_ps)
        trfc_ab = cpu.cycles(trfc_ab_ps)
        trfc_pb = cpu.cycles(trfc_pb_ps)

        # Commands per rank per retention window; rows-per-command follows.
        refreshes_per_bank = max(1, config.trefw_sim_ps // trefi_ab_ps)
        total_banks = config.organization.total_banks

        if trfc_ab >= trefi_ab:
            raise ConfigError(
                f"tRFC_ab ({trfc_ab}) must be smaller than tREFI_ab ({trefi_ab})"
            )

        return DramTiming(
            cpu_per_mem_cycle=per_mem,
            tCL=mem_cycles(spec.tCL),
            tCWL=mem_cycles(spec.tCWL),
            tRCD=mem_cycles(spec.tRCD),
            tRP=mem_cycles(spec.tRP),
            tRAS=mem_cycles(spec.tRAS),
            tBL=mem_cycles(spec.tBL),
            tCCD=mem_cycles(spec.tCCD),
            tRTP=mem_cycles(spec.tRTP),
            tWR=mem_cycles(spec.tWR),
            tWTR=mem_cycles(spec.tWTR),
            tRRD=mem_cycles(spec.tRRD),
            tFAW=mem_cycles(spec.tFAW),
            tRTRS=mem_cycles(spec.tRTRS),
            trefw=trefw,
            trefi_ab=trefi_ab,
            trfc_ab=trfc_ab,
            trfc_pb=trfc_pb,
            refreshes_per_bank=refreshes_per_bank,
            total_banks=total_banks,
        )
