"""Memory controller: per-bank FR-FCFS scheduling, read/write queues with
batch write draining, shared-bus arbitration and refresh injection.

Matches Table 1: FR-FCFS, open-row policy, 64/64 read/write queues, writes
drained in batches between low/high watermarks 32/54.

Hot-path layout (docs/PERFORMANCE.md has the full picture):

* Bank readiness lives in controller-owned flat arrays
  (:class:`repro.dram.bank.BankStateArrays`); ``_pick`` reads
  ``refresh_until``/``open_row`` with one list subscript and the per-flat
  ``Rank``/``ChannelBus`` objects come from precomputed lookup lists, so
  the FR-FCFS decision touches no attribute chains or dict lookups.
* Each bank queue is a :class:`_BankQueue`: an append-only FIFO with a
  head cursor plus a row → pending-requests index, both maintained
  incrementally on enqueue/pop.  Selecting the oldest row hit is a dict
  probe instead of a linear scan; FIFO fallback pops at the cursor.
  A request popped through one view is lazily discarded from the other
  (``MemoryRequest.in_queue``), with amortized-O(1) sweeping.
* All of this is derived state: snapshots keep the original per-bank
  req-id list schema, and ``restore_state`` rebuilds the arrays, the
  row index and the occupancy counters from it, so checkpoint payloads
  and bit-identity are unchanged.

The dispatch cost model (:meth:`MemoryController.dispatch_cost_model`)
counts scheduler work deterministically — picks, dead picks, stale-entry
sweeps, drain transitions — with all common-path quantities derived from
existing stats so the counters only ever increment off the service path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config.dram_configs import DramOrganization
from repro.core.engine import Engine
from repro.dram.address import AddressMapping
from repro.dram.bank import Bank, BankStateArrays, ChannelBus, Rank
from repro.dram.request import MemoryRequest
from repro.dram.timing import DramTiming
from repro.errors import SimulationError
from repro.telemetry.events import DramCommandEvent, RefreshCommandEvent
from repro.telemetry.hub import Telemetry
from repro.telemetry.stats import StatsBase

#: Compact a bank FIFO once its stale prefix is this long *and* at least
#: half the list; every swept entry is passed exactly once, so the sweep
#: plus compaction cost stays amortized O(1) per request.
_FIFO_COMPACT_MIN = 64


@dataclass
class ControllerStats(StatsBase):
    reads_completed: int = 0
    writes_completed: int = 0
    read_latency_sum: int = 0
    refresh_stall_sum: int = 0
    refresh_stalled_reads: int = 0
    row_hits: int = 0
    rank_refreshes: int = 0
    bank_refreshes: int = 0

    @property
    def avg_read_latency(self) -> float:
        """Average read latency in CPU cycles (queueing + service)."""
        if self.reads_completed == 0:
            return 0.0
        return self.read_latency_sum / self.reads_completed

    @property
    def row_hit_rate(self) -> float:
        if self.reads_completed == 0:
            return 0.0
        return self.row_hits / self.reads_completed


class _BankQueue:
    """One bank's read (or write) queue with an incremental row index.

    ``fifo``   append-only arrival order; entries before ``head`` or with
               ``in_queue`` False are dead.
    ``head``   cursor of the oldest possibly-live entry.
    ``by_row`` row number → pending requests to that row, in arrival
               order (a plain list: cheaper to allocate than a deque,
               and row lists stay short — one ``pop(0)`` per service);
               the front live entry is the FR-FCFS row-hit candidate.
    ``count``  live entries (the queue-occupancy truth the watermarks and
               the drain/opportunistic branch read).

    ``enqueue`` inlines :meth:`push` on the hot path; keep them in sync.
    """

    __slots__ = ("fifo", "head", "by_row", "count")

    def __init__(self):
        self.fifo: list[MemoryRequest] = []
        self.head = 0
        self.by_row: dict[int, list[MemoryRequest]] = {}
        self.count = 0

    def push(self, request: MemoryRequest) -> None:
        request.in_queue = True
        self.fifo.append(request)
        self.count += 1
        row = request.coord.row
        by_row = self.by_row
        pending = by_row.get(row)
        if pending is None:
            by_row[row] = [request]
        else:
            pending.append(request)

    def live(self) -> list[MemoryRequest]:
        """Pending requests in arrival order (snapshot/introspection)."""
        return [r for r in self.fifo[self.head :] if r.in_queue]


class MemoryController:
    """One controller managing every channel of the memory system."""

    def __init__(
        self,
        engine: Engine,
        timing: DramTiming,
        organization: DramOrganization,
        mapping: AddressMapping,
        read_queue_depth: int = 64,
        write_queue_depth: int = 64,
        write_drain_low: int = 32,
        write_drain_high: int = 54,
        row_policy: str = "open",
        telemetry: Optional[Telemetry] = None,
    ):
        if row_policy not in ("open", "closed"):
            raise SimulationError(f"unknown row policy {row_policy!r}")
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.engine = engine
        self.timing = timing
        self.org = organization
        self.mapping = mapping
        self.read_queue_depth = read_queue_depth
        self.write_queue_depth = write_queue_depth
        self.write_drain_low = write_drain_low
        self.write_drain_high = write_drain_high
        self.row_policy = row_policy
        self._close_row = row_policy == "closed"

        total = organization.total_banks
        # Single source of truth for bank readiness; every Bank is a view
        # into one slot (see repro.dram.bank docstring).
        self.bank_state = BankStateArrays(total)
        self.banks: list[Bank] = []
        for flat in range(total):
            channel, rank, bank = mapping.unflatten_bank_index(flat)
            self.banks.append(
                Bank(
                    channel,
                    rank,
                    bank,
                    flat,
                    num_subarrays=organization.subarrays_per_bank,
                    rows_per_bank=mapping.rows_per_bank,
                    arrays=self.bank_state,
                    slot=flat,
                )
            )
        self.ranks: dict[tuple[int, int], Rank] = {
            (c, r): Rank(c, r)
            for c in range(organization.channels)
            for r in range(organization.ranks_per_channel)
        }
        self.buses: list[ChannelBus] = [
            ChannelBus() for _ in range(organization.channels)
        ]
        # Hot-path aliases and per-flat lookups: the pick path indexes
        # these lists instead of chasing bank attributes or dict keys.
        state = self.bank_state
        self._refresh_until = state.refresh_until
        self._refresh_started = state.refresh_started
        self._open_row = state.open_row
        self._cas_ready = state.cas_ready
        self._act_ready = state.act_ready
        self._pre_ready = state.pre_ready
        self._sa_refresh_id = state.sa_refresh_id
        self._sa_refresh_until = state.sa_refresh_until
        self._sa_refresh_started = state.sa_refresh_started
        self._rank_of: list[Rank] = [
            self.ranks[(b.channel, b.rank_id)] for b in self.banks
        ]
        self._bus_of: list[ChannelBus] = [
            self.buses[b.channel] for b in self.banks
        ]
        # One shared key tuple per rank (no per-access tuple allocation in
        # the inlined bus-turnaround check).
        self._rank_key_of: list[tuple[int, int]] = [
            (b.channel, b.rank_id) for b in self.banks
        ]
        # Per-flat activate-window lists (shared per rank; Rank mutates
        # the list in place everywhere, including restore_state, so the
        # alias never goes stale).  Bank stats are deliberately NOT
        # aliased: System._reset_stats rebinds ``bank.stats`` at the
        # measurement barrier.
        self._acts_of = [r._act_times for r in self._rank_of]
        # Timing parameters as plain ints (DramTiming is a no-slots frozen
        # dataclass and tRC is a property; the inlined service path cannot
        # afford either).
        self._tCL = timing.tCL
        self._tCWL = timing.tCWL
        self._tRCD = timing.tRCD
        self._tRP = timing.tRP
        self._tRAS = timing.tRAS
        self._tBL = timing.tBL
        self._tCCD = timing.tCCD
        self._tRTP = timing.tRTP
        self._tWR = timing.tWR
        self._tWTR = timing.tWTR
        self._tRRD = timing.tRRD
        self._tFAW = timing.tFAW
        self._tRTRS = timing.tRTRS
        self._tRC = timing.tRC
        self._num_subarrays = organization.subarrays_per_bank
        self._rows_per_bank = mapping.rows_per_bank

        self._rq: list[_BankQueue] = [_BankQueue() for _ in range(total)]
        self._wq: list[_BankQueue] = [_BankQueue() for _ in range(total)]
        # Per-bank read+write occupancy, maintained incrementally; the
        # reusable view handed out by queued_requests_per_bank().
        self._occupancy: list[int] = [0] * total
        self.read_count = 0
        self.write_count = 0
        self.drain_mode = False
        # One in-flight pick per bank (True while a pick event is queued).
        # Picks are never deferred on empty queues: the pick event's
        # position in its cycle bucket is what arbitrates same-cycle bus
        # contention between banks, so even a "dead" pick must be queued
        # to keep tie-break order (and therefore results) bit-identical.
        self._pick_pending: list[bool] = [False] * total
        self._next_req_id = 0
        self._ranks_per_channel = organization.ranks_per_channel
        self._banks_per_rank = organization.banks_per_rank
        self.stats = ControllerStats()
        # Dispatch cost model: deterministic work counters, incremented
        # only off the service fast path (dead/deferred picks, lazy-sweep
        # and drain/batch transitions); everything per-service is derived
        # from bank/controller stats in dispatch_cost_model().  Process-
        # local diagnostics: not part of snapshots or RunResult.
        self._cm_dead_picks = 0
        self._cm_refresh_deferred_picks = 0
        self._cm_stale_skips = 0
        self._cm_fifo_compactions = 0
        self._cm_drain_entries = 0
        self._cm_drain_exits = 0
        self._cm_batched_wakeups = 0
        self._cm_batched_wakeup_banks = 0
        # Prebound hot callables: every schedule of a pick/complete would
        # otherwise allocate a fresh bound-method object.  The instance
        # attribute shadows the class method with one reusable binding;
        # the checkpoint codec (fn.__self__/__name__) and the profiler
        # (fn.__func__) read through it unchanged.
        self._pick = self._pick
        self._complete = self._complete
        self._schedule_at = engine.schedule_at

    # -- admission ---------------------------------------------------------------

    def can_accept_read(self) -> bool:
        return self.read_count < self.read_queue_depth

    def can_accept_write(self) -> bool:
        return self.write_count < self.write_queue_depth

    def enqueue(self, request: MemoryRequest) -> None:
        """Accept a request into its bank queue and kick the bank."""
        coord = request.coord
        flat = (
            coord[0] * self._ranks_per_channel + coord[1]
        ) * self._banks_per_rank + coord[2]
        if request.req_id < 0:
            request.req_id = self._next_req_id
            self._next_req_id += 1
        engine = self.engine
        request.arrive_time = engine.now
        if request.is_read:
            q = self._rq[flat]
            self.read_count += 1
        else:
            q = self._wq[flat]
            self.write_count += 1
            if self.write_count >= self.write_drain_high:
                if not self.drain_mode:
                    self.drain_mode = True
                    self._cm_drain_entries += 1  # repro: noqa[RPR011] process-local diagnostic; excluded from snapshots by design
        # Inlined _BankQueue.push (kept in sync with that method).
        request.in_queue = True
        q.fifo.append(request)
        q.count += 1
        row = coord.row
        by_row = q.by_row
        pending = by_row.get(row)
        if pending is None:
            by_row[row] = [request]
        else:
            pending.append(request)
        self._occupancy[flat] += 1
        if not self._pick_pending[flat]:
            self._pick_pending[flat] = True
            # order: the kick appends after any picks already queued this
            # cycle; same-cycle bucket position is bus-arbitration order.
            engine.schedule_at(engine.now, self._pick, flat)

    # -- refresh entry points (called by refresh schedulers) ----------------------

    def refresh_bank(
        self,
        channel: int,
        rank: int,
        bank: int,
        trfc: int,
        subarray: int | None = None,
    ) -> int:
        """Begin a per-bank (or per-subarray) refresh; returns completion."""
        flat = self.mapping.flat_bank_index(channel, rank, bank)
        bank_obj = self.banks[flat]
        start = bank_obj.refresh_start_time(self.engine.now, self.timing)
        end = bank_obj.begin_refresh(start, trfc, subarray=subarray)
        self.stats.bank_refreshes += 1
        if self.telemetry.enabled:
            self.telemetry.emit(
                RefreshCommandEvent(
                    time=start,
                    channel=channel,
                    rank=rank,
                    bank=bank,
                    duration=trfc,
                    all_bank=False,
                )
            )
        self._kick(flat, at=end)
        return end

    def refresh_rank(self, channel: int, rank: int, trfc: int) -> int:
        """Begin an all-bank refresh on a rank; returns its completion time."""
        base = self.mapping.flat_bank_index(channel, rank, 0)
        members = self.banks[base : base + self.org.banks_per_rank]
        start = max(
            b.refresh_start_time(self.engine.now, self.timing) for b in members
        )
        end = start + trfc
        for b in members:
            b.begin_refresh(start, trfc)
        self.stats.rank_refreshes += 1
        if self.telemetry.enabled:
            self.telemetry.emit(
                RefreshCommandEvent(
                    time=start,
                    channel=channel,
                    rank=rank,
                    bank=-1,
                    duration=trfc,
                    all_bank=True,
                )
            )
        self._kick_rank(base, end)
        return end

    # -- introspection (used by OOO refresh and AR) --------------------------------

    def queued_requests_per_bank(self) -> list[int]:
        """Read+write occupancy per flat bank index.

        Returns the controller's incrementally-maintained counter list —
        a live, reusable view (callers must treat it as read-only), not a
        fresh allocation; the OOO-refresh tick path reads it every poll.
        """
        return self._occupancy

    def bus_for_channel(self, channel: int) -> ChannelBus:
        return self.buses[channel]

    # -- scheduling ------------------------------------------------------------------

    def _kick(self, flat: int, at: Optional[int] = None) -> None:
        """Ensure a pick event is pending for bank *flat*."""
        if self._pick_pending[flat]:
            return
        self._pick_pending[flat] = True
        now = self.engine.now
        when = now if at is None else max(at, now)
        self.engine.schedule_at(when, self._pick, flat)

    def _kick_rank(self, base: int, end: int) -> None:
        """Wake every bank of a rank after an all-bank refresh.

        All non-pending banks share one batched wake-up event; the picks
        run in flat-index order, exactly the order the per-bank events
        used to occupy in the cycle bucket, so same-cycle bus arbitration
        is unchanged."""
        batch: Optional[list[int]] = None
        for flat in range(base, base + self._banks_per_rank):
            if self._pick_pending[flat]:
                continue
            self._pick_pending[flat] = True
            if batch is None:
                batch = []
            batch.append(flat)
        if batch is not None:
            self._cm_batched_wakeups += 1  # repro: noqa[RPR011] process-local diagnostic; excluded from snapshots by design
            self._cm_batched_wakeup_banks += len(batch)  # repro: noqa[RPR011] process-local diagnostic; excluded from snapshots by design
            now = self.engine.now
            # order: one batched wake; _pick_many issues picks in flat-index
            # order, the same same-cycle slot sequence the per-bank pick
            # events would have occupied in the bucket.
            self.engine.schedule_at(
                end if end > now else now, self._pick_many, batch
            )

    def _pick_many(self, flats: list[int]) -> None:
        for flat in flats:
            if self._pick_pending[flat]:
                self._pick(flat)

    def _pick(self, flat: int) -> None:
        """Issue the FR-FCFS-best request for bank *flat*, if any.

        The column-access arithmetic below is :meth:`Bank.service` inlined
        against the flat arrays and the cached timing ints — kept in
        lockstep with that method (which stays the authoritative, tested
        single-bank API); ``tests/unit/test_frfcfs_invariants.py`` and the
        golden traces pin the equivalence.
        """
        self._pick_pending[flat] = False
        engine = self.engine
        now = engine.now

        until = self._refresh_until[flat]
        if until > now:
            self._cm_refresh_deferred_picks += 1  # repro: noqa[RPR011] process-local diagnostic; excluded from snapshots by design
            self._pick_pending[flat] = True
            engine.schedule_at(until, self._pick, flat)
            return

        # -- FR-FCFS select: prefer row hits (oldest first), then FIFO;
        #    reads before writes except in drain mode, with opportunistic
        #    writes when the bank has no reads.  The row-hit candidate is
        #    the front live entry of the open row's by_row list; entries
        #    popped through the other view are swept lazily here, at most
        #    once per view per request (_BankQueue documents the
        #    invariants). --
        if self.drain_mode:
            q = self._wq[flat]
            if not q.count:
                q = self._rq[flat]
        else:
            q = self._rq[flat]
            if not q.count:
                q = self._wq[flat]
        if not q.count:
            self._cm_dead_picks += 1  # repro: noqa[RPR011] process-local diagnostic; excluded from snapshots by design
            return

        open_row = self._open_row
        cur_row = open_row[flat]
        request = None
        if cur_row >= 0:
            by_row = q.by_row
            pending = by_row.get(cur_row)
            if pending is not None:
                while pending:
                    cand = pending.pop(0)
                    if cand.in_queue:
                        request = cand
                        break
                    self._cm_stale_skips += 1  # repro: noqa[RPR011] process-local diagnostic; excluded from snapshots by design
                if not pending:
                    del by_row[cur_row]

        fifo = q.fifo
        head = q.head
        if request is None:
            # FIFO fallback.  A live hit to the open row would be in its
            # by_row list, so a fallback pop is never a row hit.
            row_hit = False
            while True:
                cand = fifo[head]
                head += 1
                if cand.in_queue:
                    request = cand
                    break
                self._cm_stale_skips += 1
        else:
            row_hit = True

        request.in_queue = False
        q.count -= 1
        self._occupancy[flat] -= 1
        # Sweep the dead prefix and compact once it dominates the list.
        flen = len(fifo)
        while head < flen and not fifo[head].in_queue:
            head += 1
            self._cm_stale_skips += 1
        if head >= _FIFO_COMPACT_MIN and head + head >= flen:
            del fifo[:head]
            head = 0
            self._cm_fifo_compactions += 1  # repro: noqa[RPR011] process-local diagnostic; excluded from snapshots by design
        q.head = head

        # -- inlined Bank.service (refresh gate above guarantees
        #    until <= now, so the service start is ``now``) --
        arrive = request.arrive_time
        started = self._refresh_started[flat]
        blocked_from = arrive if arrive > started else started
        refresh_stall = until - blocked_from
        if refresh_stall < 0:
            refresh_stall = 0
        row = request.coord.row
        earliest = now
        sa_until = self._sa_refresh_until[flat]
        if (
            sa_until > earliest
            and row * self._num_subarrays // self._rows_per_bank
            == self._sa_refresh_id[flat]
        ):
            sa_started = self._sa_refresh_started[flat]
            sa_blocked_from = arrive if arrive > sa_started else sa_started
            base = earliest if earliest > sa_blocked_from else sa_blocked_from
            extra = sa_until - base
            if extra > 0:
                refresh_stall += extra
            earliest = sa_until

        stats = self.banks[flat].stats
        if row_hit:
            # Row hit: CAS only.
            cas_ready = self._cas_ready[flat]
            cas_earliest = earliest if earliest > cas_ready else cas_ready
            stats.row_hits += 1
        else:
            act_arr = self._act_ready
            if cur_row < 0:
                # Row closed: ACT + CAS.
                act_ready = act_arr[flat]
                act_time = earliest if earliest > act_ready else act_ready
                stats.row_misses += 1
            else:
                # Row conflict: PRE + ACT + CAS.
                pre_ready = self._pre_ready[flat]
                pre_time = earliest if earliest > pre_ready else pre_ready
                act_time = pre_time + self._tRP
                act_ready = act_arr[flat]
                if act_ready > act_time:
                    act_time = act_ready
                stats.row_conflicts += 1
                stats.precharges += 1
            # Rank ACT constraints (inlined Rank.earliest_activate +
            # record_activate; the window list is shared per rank).
            acts = self._acts_of[flat]
            if acts:
                t = acts[-1] + self._tRRD
                if t > act_time:
                    act_time = t
                if len(acts) >= 4:
                    t = acts[-4] + self._tFAW
                    if t > act_time:
                        act_time = t
            acts.append(act_time)
            if len(acts) > 4:
                del acts[:-4]
            stats.activations += 1
            open_row[flat] = row
            act_arr[flat] = act_time + self._tRC
            self._pre_ready[flat] = act_time + self._tRAS
            cas_earliest = act_time + self._tRCD

        is_read = request.is_read
        cas_to_data = self._tCL if is_read else self._tCWL
        # Inlined ChannelBus.reserve: burst slot on the shared data bus.
        bus = self._bus_of[flat]
        wanted = cas_earliest + cas_to_data
        ready = bus.ready
        data_start = wanted if wanted > ready else ready
        last_was_read = bus.last_was_read
        if last_was_read is not None:
            if last_was_read != is_read and not last_was_read:
                # write -> read turnaround
                turnaround = ready + self._tWTR
                if turnaround > data_start:
                    data_start = turnaround
            last_rank_key = bus.last_rank_key
            rank_key = self._rank_key_of[flat]
            if last_rank_key is not None and last_rank_key != rank_key:
                switch = ready + self._tRTRS
                if switch > data_start:
                    data_start = switch
        else:
            rank_key = self._rank_key_of[flat]
        tBL = self._tBL
        bus.ready = data_start + tBL
        bus.last_was_read = is_read
        bus.last_rank_key = rank_key
        bus.busy_cycles += tBL
        cas = data_start - cas_to_data
        finish = data_start + tBL

        self._cas_ready[flat] = cas + self._tCCD
        pre_arr = self._pre_ready
        if is_read:
            ready = cas + self._tRTP
            if ready > pre_arr[flat]:
                pre_arr[flat] = ready
            stats.reads += 1
            self.read_count -= 1
        else:
            ready = finish + self._tWR
            if ready > pre_arr[flat]:
                pre_arr[flat] = ready
            stats.writes += 1
            count = self.write_count - 1
            self.write_count = count
            if self.drain_mode and count <= self.write_drain_low:
                self.drain_mode = False
                self._cm_drain_exits += 1  # repro: noqa[RPR011] process-local diagnostic; excluded from snapshots by design
        if self._close_row:
            # Closed-row policy: auto-precharge after the access.
            open_row[flat] = -1
            pre_closed = pre_arr[flat] + self._tRP
            if pre_closed > self._act_ready[flat]:
                self._act_ready[flat] = pre_closed
            stats.precharges += 1

        request.refresh_stall = refresh_stall
        request.row_hit = row_hit
        request.start_time = cas
        schedule_at = self._schedule_at
        schedule_at(finish, self._complete, request)
        # Next pick once this command has gone out on the command bus.
        nxt = now + 1
        if cas > nxt:
            nxt = cas
        self._pick_pending[flat] = True
        schedule_at(nxt, self._pick, flat)

    def _complete(self, request: MemoryRequest) -> None:
        now = self.engine.now
        request.finish_time = now
        if self.telemetry.enabled:
            coord = request.coord
            self.telemetry.emit(
                DramCommandEvent(
                    time=now,
                    op="RD" if request.is_read else "WR",
                    channel=coord.channel,
                    rank=coord.rank,
                    bank=coord.bank,
                    row_hit=request.row_hit,
                    task_id=request.task_id,
                    latency=request.latency,
                    refresh_stall=request.refresh_stall,
                    issue=request.start_time,
                )
            )
        stats = self.stats
        if request.is_read:
            stats.reads_completed += 1
            # == request.latency, with finish_time == now just written.
            stats.read_latency_sum += now - request.arrive_time
            if request.row_hit:
                stats.row_hits += 1
            stall = request.refresh_stall
            if stall > 0:
                stats.refresh_stall_sum += stall
                stats.refresh_stalled_reads += 1
        else:
            stats.writes_completed += 1
        if request.on_complete is not None:
            request.on_complete(request)

    # -- dispatch cost model -----------------------------------------------------

    def dispatch_cost_model(self) -> dict:
        """Deterministic dispatch-work counters (no wall clocks).

        Service-path quantities are derived from bank/controller stats,
        so the explicit counters only increment on cold branches and the
        model costs the fast path nothing.  Exported into bench reports
        and the ``--profile`` report; see docs/PERFORMANCE.md for the
        field reference.
        """
        serviced = 0
        row_hit_pops = 0
        for bank in self.banks:
            bstats = bank.stats
            serviced += bstats.reads + bstats.writes
            row_hit_pops += bstats.row_hits
        dead = self._cm_dead_picks
        deferred = self._cm_refresh_deferred_picks
        picks = serviced + dead + deferred
        return {
            "picks": picks,
            "serviced": serviced,
            "dead_picks": dead,
            "refresh_deferred_picks": deferred,
            "row_hit_pops": row_hit_pops,
            "fifo_pops": serviced - row_hit_pops,
            "stale_skips": self._cm_stale_skips,
            "fifo_compactions": self._cm_fifo_compactions,
            "drain_entries": self._cm_drain_entries,
            "drain_exits": self._cm_drain_exits,
            "batched_wakeups": self._cm_batched_wakeups,
            "batched_wakeup_banks": self._cm_batched_wakeup_banks,
            # Relative ratios the trend gate tracks: scheduling waste per
            # pick and lazy-sweep work per pop must not drift upward.
            "dead_pick_ratio": round(dead / picks, 6) if picks else 0.0,
            "row_hit_pop_ratio": (
                round(row_hit_pops / serviced, 6) if serviced else 0.0
            ),
            "stale_skips_per_pop": (
                round(self._cm_stale_skips / serviced, 6) if serviced else 0.0
            ),
        }

    # -- checkpoint/restore ----------------------------------------------------

    def queued_requests(self) -> list[MemoryRequest]:
        """Every request currently sitting in a bank queue (reads first per
        bank, flat-index order) — the checkpoint layer serializes these
        together with the in-flight ones referenced by engine events."""
        out: list[MemoryRequest] = []
        for flat in range(self.org.total_banks):
            out.extend(self._rq[flat].live())
            out.extend(self._wq[flat].live())
        return out

    def snapshot_state(self) -> dict:  # repro: noqa[RPR010] _read_q/_write_q are the frozen schema names; queues live in _rq/_wq
        """Serializable mutable state.  Queued requests are referenced by
        ``req_id``; the request objects themselves are serialized once by
        the system layer (they may also be referenced by in-flight
        completion events).  The flat bank-state arrays, row indexes and
        occupancy counters are derived state — rebuilt on restore, never
        serialized — so the snapshot schema is unchanged from the
        pre-array controller.  Cost-model counters are process-local
        diagnostics and are deliberately excluded."""
        return {
            "_read_q": [[r.req_id for r in q.live()] for q in self._rq],
            "_write_q": [[r.req_id for r in q.live()] for q in self._wq],
            "read_count": self.read_count,
            "write_count": self.write_count,
            "drain_mode": self.drain_mode,
            "_pick_pending": list(self._pick_pending),
            "_next_req_id": self._next_req_id,
            "banks": [b.snapshot_state() for b in self.banks],
            "ranks": [
                [list(key), rank.snapshot_state()]
                for key, rank in sorted(self.ranks.items())
            ],
            "buses": [bus.snapshot_state() for bus in self.buses],
            "stats": self.stats.to_dict(),
        }

    def restore_state(
        self, state: dict, requests: dict[int, MemoryRequest]
    ) -> None:
        """Inverse of :meth:`snapshot_state`; *requests* maps req_id to the
        already-rebuilt request objects.  Rebuilds every derived view:
        bank queues (FIFO + row index + in_queue flags), occupancy
        counters, and — via the Bank property writes — the flat
        readiness arrays."""
        self._rq = self._rebuild_queues(state["_read_q"], requests)
        self._wq = self._rebuild_queues(state["_write_q"], requests)
        occupancy = self._occupancy
        for flat in range(self.org.total_banks):
            occupancy[flat] = self._rq[flat].count + self._wq[flat].count
        self.read_count = int(state["read_count"])
        self.write_count = int(state["write_count"])
        self.drain_mode = bool(state["drain_mode"])
        self._pick_pending = [bool(p) for p in state["_pick_pending"]]
        self._next_req_id = int(state["_next_req_id"])
        for bank, bank_state in zip(self.banks, state["banks"]):
            bank.restore_state(bank_state)
        for key, rank_state in state["ranks"]:
            self.ranks[(int(key[0]), int(key[1]))].restore_state(rank_state)
        for bus, bus_state in zip(self.buses, state["buses"]):
            bus.restore_state(bus_state)
        self.stats = ControllerStats.from_dict(state["stats"])

    @staticmethod
    def _rebuild_queues(
        id_lists: list[list[int]], requests: dict[int, MemoryRequest]
    ) -> list[_BankQueue]:
        queues = []
        for ids in id_lists:
            q = _BankQueue()
            for rid in ids:
                q.push(requests[int(rid)])
            queues.append(q)
        return queues

    def __repr__(self) -> str:
        return (
            f"MemoryController(reads={self.stats.reads_completed}, "
            f"writes={self.stats.writes_completed}, drain={self.drain_mode})"
        )
