"""Memory controller: per-bank FR-FCFS scheduling, read/write queues with
batch write draining, shared-bus arbitration and refresh injection.

Matches Table 1: FR-FCFS, open-row policy, 64/64 read/write queues, writes
drained in batches between low/high watermarks 32/54.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config.dram_configs import DramOrganization
from repro.core.engine import Engine
from repro.dram.address import AddressMapping
from repro.dram.bank import Bank, ChannelBus, Rank
from repro.dram.request import MemoryRequest
from repro.dram.timing import DramTiming
from repro.errors import SimulationError
from repro.telemetry.events import DramCommandEvent, RefreshCommandEvent
from repro.telemetry.hub import Telemetry
from repro.telemetry.stats import StatsBase


@dataclass
class ControllerStats(StatsBase):
    reads_completed: int = 0
    writes_completed: int = 0
    read_latency_sum: int = 0
    refresh_stall_sum: int = 0
    refresh_stalled_reads: int = 0
    row_hits: int = 0
    rank_refreshes: int = 0
    bank_refreshes: int = 0

    @property
    def avg_read_latency(self) -> float:
        """Average read latency in CPU cycles (queueing + service)."""
        if self.reads_completed == 0:
            return 0.0
        return self.read_latency_sum / self.reads_completed

    @property
    def row_hit_rate(self) -> float:
        if self.reads_completed == 0:
            return 0.0
        return self.row_hits / self.reads_completed


class MemoryController:
    """One controller managing every channel of the memory system."""

    def __init__(
        self,
        engine: Engine,
        timing: DramTiming,
        organization: DramOrganization,
        mapping: AddressMapping,
        read_queue_depth: int = 64,
        write_queue_depth: int = 64,
        write_drain_low: int = 32,
        write_drain_high: int = 54,
        row_policy: str = "open",
        telemetry: Optional[Telemetry] = None,
    ):
        if row_policy not in ("open", "closed"):
            raise SimulationError(f"unknown row policy {row_policy!r}")
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.engine = engine
        self.timing = timing
        self.org = organization
        self.mapping = mapping
        self.read_queue_depth = read_queue_depth
        self.write_queue_depth = write_queue_depth
        self.write_drain_low = write_drain_low
        self.write_drain_high = write_drain_high
        self.row_policy = row_policy

        total = organization.total_banks
        self.banks: list[Bank] = []
        for flat in range(total):
            channel, rank, bank = mapping.unflatten_bank_index(flat)
            self.banks.append(
                Bank(
                    channel,
                    rank,
                    bank,
                    flat,
                    num_subarrays=organization.subarrays_per_bank,
                    rows_per_bank=mapping.rows_per_bank,
                )
            )
        self.ranks: dict[tuple[int, int], Rank] = {
            (c, r): Rank(c, r)
            for c in range(organization.channels)
            for r in range(organization.ranks_per_channel)
        }
        self.buses: list[ChannelBus] = [
            ChannelBus() for _ in range(organization.channels)
        ]

        self._read_q: list[list[MemoryRequest]] = [[] for _ in range(total)]
        self._write_q: list[list[MemoryRequest]] = [[] for _ in range(total)]
        self.read_count = 0
        self.write_count = 0
        self.drain_mode = False
        # One in-flight pick per bank (True while a pick event is queued).
        # Picks are never deferred on empty queues: the pick event's
        # position in its cycle bucket is what arbitrates same-cycle bus
        # contention between banks, so even a "dead" pick must be queued
        # to keep tie-break order (and therefore results) bit-identical.
        self._pick_pending: list[bool] = [False] * total
        self._next_req_id = 0
        self._ranks_per_channel = organization.ranks_per_channel
        self._banks_per_rank = organization.banks_per_rank
        self.stats = ControllerStats()

    # -- admission ---------------------------------------------------------------

    def can_accept_read(self) -> bool:
        return self.read_count < self.read_queue_depth

    def can_accept_write(self) -> bool:
        return self.write_count < self.write_queue_depth

    def enqueue(self, request: MemoryRequest) -> None:
        """Accept a request into its bank queue and kick the bank."""
        coord = request.coord
        flat = (
            coord[0] * self._ranks_per_channel + coord[1]
        ) * self._banks_per_rank + coord[2]
        if request.req_id < 0:
            request.req_id = self._next_req_id
            self._next_req_id += 1
        request.arrive_time = self.engine.now
        if request.is_read:
            self._read_q[flat].append(request)
            self.read_count += 1
        else:
            self._write_q[flat].append(request)
            self.write_count += 1
            if self.write_count >= self.write_drain_high:
                self.drain_mode = True
        self._kick(flat)

    # -- refresh entry points (called by refresh schedulers) ----------------------

    def refresh_bank(
        self,
        channel: int,
        rank: int,
        bank: int,
        trfc: int,
        subarray: int | None = None,
    ) -> int:
        """Begin a per-bank (or per-subarray) refresh; returns completion."""
        flat = self.mapping.flat_bank_index(channel, rank, bank)
        bank_obj = self.banks[flat]
        start = bank_obj.refresh_start_time(self.engine.now, self.timing)
        end = bank_obj.begin_refresh(start, trfc, subarray=subarray)
        self.stats.bank_refreshes += 1
        if self.telemetry.enabled:
            self.telemetry.emit(
                RefreshCommandEvent(
                    time=start,
                    channel=channel,
                    rank=rank,
                    bank=bank,
                    duration=trfc,
                    all_bank=False,
                )
            )
        self._kick(flat, at=end)
        return end

    def refresh_rank(self, channel: int, rank: int, trfc: int) -> int:
        """Begin an all-bank refresh on a rank; returns its completion time."""
        base = self.mapping.flat_bank_index(channel, rank, 0)
        members = self.banks[base : base + self.org.banks_per_rank]
        start = max(
            b.refresh_start_time(self.engine.now, self.timing) for b in members
        )
        end = start + trfc
        for b in members:
            b.begin_refresh(start, trfc)
        self.stats.rank_refreshes += 1
        if self.telemetry.enabled:
            self.telemetry.emit(
                RefreshCommandEvent(
                    time=start,
                    channel=channel,
                    rank=rank,
                    bank=-1,
                    duration=trfc,
                    all_bank=True,
                )
            )
        self._kick_rank(base, end)
        return end

    # -- introspection (used by OOO refresh and AR) --------------------------------

    def queued_requests_per_bank(self) -> list[int]:
        return [
            len(self._read_q[f]) + len(self._write_q[f])
            for f in range(self.org.total_banks)
        ]

    def bus_for_channel(self, channel: int) -> ChannelBus:
        return self.buses[channel]

    # -- scheduling ------------------------------------------------------------------

    def _kick(self, flat: int, at: Optional[int] = None) -> None:
        """Ensure a pick event is pending for bank *flat*."""
        if self._pick_pending[flat]:
            return
        self._pick_pending[flat] = True
        now = self.engine.now
        when = now if at is None else max(at, now)
        self.engine.schedule_at(when, self._pick, flat)

    def _kick_rank(self, base: int, end: int) -> None:
        """Wake every bank of a rank after an all-bank refresh.

        All non-pending banks share one batched wake-up event; the picks
        run in flat-index order, exactly the order the per-bank events
        used to occupy in the cycle bucket, so same-cycle bus arbitration
        is unchanged."""
        batch: Optional[list[int]] = None
        for flat in range(base, base + self._banks_per_rank):
            if self._pick_pending[flat]:
                continue
            self._pick_pending[flat] = True
            if batch is None:
                batch = []
            batch.append(flat)
        if batch is not None:
            now = self.engine.now
            # order: one batched wake; _pick_many issues picks in flat-index
            # order, the same same-cycle slot sequence the per-bank pick
            # events would have occupied in the bucket.
            self.engine.schedule_at(
                end if end > now else now, self._pick_many, batch
            )

    def _pick_many(self, flats: list[int]) -> None:
        for flat in flats:
            if self._pick_pending[flat]:
                self._pick(flat)

    def _pick(self, flat: int) -> None:
        """Issue the FR-FCFS-best request for bank *flat*, if any."""
        self._pick_pending[flat] = False
        bank = self.banks[flat]
        now = self.engine.now

        if bank.is_refreshing(now):
            self._kick(flat, at=bank.refresh_until)
            return

        request = self._select(flat, bank)
        if request is None:
            return

        rank = self.ranks[(bank.channel, bank.rank_id)]
        bus = self.buses[bank.channel]
        timing = self.timing
        service = bank.service(
            request, now, timing, rank, bus,
            close_row=self.row_policy == "closed",
        )
        request.start_time = service.cas_time
        self.engine.schedule_at(service.finish, self._complete, request)
        if request.is_read:
            self.read_count -= 1
        else:
            self.write_count -= 1
            if self.drain_mode and self.write_count <= self.write_drain_low:
                self.drain_mode = False
        # Next pick once this command has gone out on the command bus.
        cas = service.cas_time
        nxt = now + 1
        if cas > nxt:
            nxt = cas
        self._kick(flat, at=nxt)

    def _select(self, flat: int, bank: Bank) -> Optional[MemoryRequest]:
        """FR-FCFS: prefer row hits, then oldest; reads before writes except
        in drain mode (writes drained in batches), with opportunistic writes
        when the bank has no reads."""
        reads = self._read_q[flat]
        writes = self._write_q[flat]
        if self.drain_mode:
            queues = (writes, reads)
        else:
            queues = (reads, writes) if reads else (writes,)
        for queue in queues:
            if not queue:
                continue
            chosen_idx = 0
            open_row = bank.open_row
            if open_row is not None:
                for i, req in enumerate(queue):
                    if req.coord.row == open_row:
                        chosen_idx = i
                        break
            return queue.pop(chosen_idx)
        return None

    def _complete(self, request: MemoryRequest) -> None:
        request.finish_time = self.engine.now
        if self.telemetry.enabled:
            coord = request.coord
            self.telemetry.emit(
                DramCommandEvent(
                    time=self.engine.now,
                    op="RD" if request.is_read else "WR",
                    channel=coord.channel,
                    rank=coord.rank,
                    bank=coord.bank,
                    row_hit=request.row_hit,
                    task_id=request.task_id,
                    latency=request.latency,
                    refresh_stall=request.refresh_stall,
                    issue=request.start_time,
                )
            )
        stats = self.stats
        if request.is_read:
            stats.reads_completed += 1
            stats.read_latency_sum += request.latency
            if request.row_hit:
                stats.row_hits += 1
            if request.refresh_stall > 0:
                stats.refresh_stall_sum += request.refresh_stall
                stats.refresh_stalled_reads += 1
        else:
            stats.writes_completed += 1
        if request.on_complete is not None:
            request.on_complete(request)

    # -- checkpoint/restore ----------------------------------------------------

    def queued_requests(self) -> list[MemoryRequest]:
        """Every request currently sitting in a bank queue (reads first per
        bank, flat-index order) — the checkpoint layer serializes these
        together with the in-flight ones referenced by engine events."""
        out: list[MemoryRequest] = []
        for flat in range(self.org.total_banks):
            out.extend(self._read_q[flat])
            out.extend(self._write_q[flat])
        return out

    def snapshot_state(self) -> dict:
        """Serializable mutable state.  Queued requests are referenced by
        ``req_id``; the request objects themselves are serialized once by
        the system layer (they may also be referenced by in-flight
        completion events)."""
        return {
            "_read_q": [[r.req_id for r in q] for q in self._read_q],
            "_write_q": [[r.req_id for r in q] for q in self._write_q],
            "read_count": self.read_count,
            "write_count": self.write_count,
            "drain_mode": self.drain_mode,
            "_pick_pending": list(self._pick_pending),
            "_next_req_id": self._next_req_id,
            "banks": [b.snapshot_state() for b in self.banks],
            "ranks": [
                [list(key), rank.snapshot_state()]
                for key, rank in sorted(self.ranks.items())
            ],
            "buses": [bus.snapshot_state() for bus in self.buses],
            "stats": self.stats.to_dict(),
        }

    def restore_state(
        self, state: dict, requests: dict[int, MemoryRequest]
    ) -> None:
        """Inverse of :meth:`snapshot_state`; *requests* maps req_id to the
        already-rebuilt request objects."""
        self._read_q = [
            [requests[int(rid)] for rid in q] for q in state["_read_q"]
        ]
        self._write_q = [
            [requests[int(rid)] for rid in q] for q in state["_write_q"]
        ]
        self.read_count = int(state["read_count"])
        self.write_count = int(state["write_count"])
        self.drain_mode = bool(state["drain_mode"])
        self._pick_pending = [bool(p) for p in state["_pick_pending"]]
        self._next_req_id = int(state["_next_req_id"])
        for bank, bank_state in zip(self.banks, state["banks"]):
            bank.restore_state(bank_state)
        for key, rank_state in state["ranks"]:
            self.ranks[(int(key[0]), int(key[1]))].restore_state(rank_state)
        for bus, bus_state in zip(self.buses, state["buses"]):
            bus.restore_state(bus_state)
        self.stats = ControllerStats.from_dict(state["stats"])

    def __repr__(self) -> str:
        return (
            f"MemoryController(reads={self.stats.reads_completed}, "
            f"writes={self.stats.writes_completed}, drain={self.drain_mode})"
        )
