"""DRAM substrate: timing, address mapping, banks, controller, refresh."""

from repro.dram.address import AddressMapping
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest, RequestType
from repro.dram.timing import DramTiming

__all__ = [
    "AddressMapping",
    "MemoryController",
    "MemoryRequest",
    "RequestType",
    "DramTiming",
]
