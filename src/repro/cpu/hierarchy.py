"""Two-level cache hierarchy (Table 1: 32KB 4-way L1, 1MB/core 16-way L2).

The hierarchy classifies each access as an L1 hit, L2 hit, or LLC miss and
reports dirty victims that must be written back to DRAM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.config.system_configs import CacheConfig
from repro.cpu.cache import Cache


class AccessLevel(enum.Enum):
    L1 = "l1"
    L2 = "l2"
    MEMORY = "memory"


@dataclass
class AccessResult:
    """Outcome of one hierarchy access."""

    level: AccessLevel
    latency_cycles: int
    writeback_address: Optional[int] = None

    @property
    def is_llc_miss(self) -> bool:
        return self.level is AccessLevel.MEMORY


class CacheHierarchy:
    """Private L1 + private L2 slice for one core."""

    def __init__(self, config: CacheConfig, core_id: int = 0):
        config.validate()
        self.config = config
        self.l1 = Cache(
            config.l1_size_bytes,
            config.l1_assoc,
            config.line_bytes,
            name=f"core{core_id}.L1",
        )
        self.l2 = Cache(
            config.l2_size_per_core_bytes,
            config.l2_assoc,
            config.line_bytes,
            name=f"core{core_id}.L2",
        )

    def access(self, address: int, is_write: bool) -> AccessResult:
        """Walk the hierarchy for one load/store.

        The memory latency component is *not* included in
        ``latency_cycles`` for LLC misses — the DRAM model supplies it.
        """
        cfg = self.config
        l1_hit, l1_victim = self.l1.access(address, is_write)
        if l1_hit:
            return AccessResult(AccessLevel.L1, cfg.l1_hit_cycles)

        # L1 victim writeback is absorbed by the (inclusive) L2.
        if l1_victim is not None:
            self.l2.access(l1_victim, is_write=True)

        l2_hit, l2_victim = self.l2.access(address, is_write)
        writeback = l2_victim
        if l2_hit:
            return AccessResult(
                AccessLevel.L2, cfg.l1_hit_cycles + cfg.l2_hit_cycles,
                writeback_address=writeback,
            )
        return AccessResult(
            AccessLevel.MEMORY,
            cfg.l1_hit_cycles + cfg.l2_hit_cycles,
            writeback_address=writeback,
        )

    @property
    def llc_misses(self) -> int:
        return self.l2.stats.misses

    def mpki(self, instructions: int) -> float:
        """LLC misses per kilo-instruction over *instructions* retired."""
        if instructions <= 0:
            return 0.0
        return self.l2.stats.misses * 1000.0 / instructions
