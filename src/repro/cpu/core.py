"""Interval-model out-of-order core with ROB retirement blocking.

The core alternates compute gaps (derived from the running task's LLC MPKI
and base CPI) with LLC-miss memory requests.  Two windows limit how far the
front end can run ahead:

* the task's **MLP** — maximum concurrently outstanding misses;
* the **ROB** — instructions retire in order, so the front end may be at
  most ``rob_entries`` instructions past the oldest incomplete miss.

The ROB constraint is the paper's stall mechanism (Figure 6: "cores
stalled on the outstanding loads"): a single miss delayed by a
refresh-busy bank blocks retirement, the window fills within a few dozen
instructions, and the core stops — even if younger misses completed.

Instruction accounting: a compute gap's instructions are credited when its
trailing miss issues; a gap cut short by a context switch credits its
prorated fraction.  Per-task IPC is retired instructions over scheduled
cycles.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.engine import Engine
from repro.dram.controller import MemoryController
from repro.dram.request import MemoryRequest, RequestType
from repro.errors import SimulationError


#: Max pure-compute gaps folded into one fast-forward wake-up.  Bounds the
#: workload prefetch when no quantum boundary caps the chain.
_CHAIN_MAX = 64


class _RobEntry:
    """One outstanding miss: its preceding instruction gap and done flag."""

    __slots__ = ("instructions", "done")

    def __init__(self, instructions: int):
        self.instructions = instructions
        self.done = False


class Core:
    """One CPU core executing whichever task the OS scheduler assigns."""

    def __init__(
        self,
        core_id: int,
        engine: Engine,
        controller: MemoryController,
        rob_entries: int = 128,
    ):
        self.core_id = core_id
        self.engine = engine
        self.controller = controller
        self.rob_entries = rob_entries
        self.current_task = None
        self.quantum_start = 0
        # Epoch token: bumped on every context switch so in-flight events
        # belonging to the previous occupant become no-ops.
        self._epoch = 0
        self._outstanding = 0
        self._window: deque[_RobEntry] = deque()
        self._inflight_instr = 0
        self._stalled = False
        self._deferred = None
        self._pending_gap_start = 0
        self._pending_gap_cycles = 0
        self._pending_instructions = 0
        # Compute-chain fast-forward state: a run of pure-compute gaps
        # collapsed into one engine event.  ``_chain`` holds
        # (end_offset, instructions) per folded gap, offsets relative to
        # ``_chain_start``; ``_chain_final`` is the trailing (unfolded)
        # access's (start_offset, gap_cycles, instructions).
        self._quantum_end: Optional[int] = None
        self._chain: Optional[list[tuple[int, int]]] = None
        self._chain_start = 0
        self._chain_credited = 0
        self._chain_final = (0, 0, 0)
        self.idle_cycles = 0
        self._idle_since: Optional[int] = None

    # -- scheduler interface -----------------------------------------------------

    def run_task(self, task, quantum_end: Optional[int] = None) -> None:
        """Context-switch *task* onto this core (or go idle with ``None``).

        *quantum_end* (absolute cycle of the next scheduler tick, if
        known) bounds the compute-chain fast-forward so a chain never
        crosses a preemption boundary."""
        if self.current_task is not None:
            raise SimulationError(
                f"core {self.core_id} already running {self.current_task}"
            )
        self._epoch += 1
        self._quantum_end = quantum_end
        self._chain = None
        if task is None:
            if self._idle_since is None:
                self._idle_since = self.engine.now
            return
        if self._idle_since is not None:
            self.idle_cycles += self.engine.now - self._idle_since
            self._idle_since = None
        self.current_task = task
        task.on_scheduled(self.engine.now, self.core_id)
        self.quantum_start = self.engine.now
        self._outstanding = 0
        self._window.clear()
        self._inflight_instr = 0
        self._stalled = False
        self._deferred = None
        self._schedule_next_issue()

    def preempt(self):
        """Remove the current task at a quantum boundary; returns it."""
        task = self.current_task
        if task is None:
            if self._idle_since is None:
                self._idle_since = self.engine.now
            return None
        now = self.engine.now
        self.sync_accounting(now)
        # Credit the fraction of the in-progress compute gap, rounding
        # half-up in pure integer arithmetic (a bare int() truncation
        # would systematically under-credit preempted gaps).
        gap = self._pending_gap_cycles
        if gap > 0:
            elapsed = now - self._pending_gap_start
            if elapsed < 0:
                elapsed = 0
            elif elapsed > gap:
                elapsed = gap
            task.stats.instructions += (
                2 * self._pending_instructions * elapsed + gap
            ) // (2 * gap)
        self._pending_gap_cycles = 0
        self._chain = None
        self._deferred = None
        task.on_descheduled(now)
        self.current_task = None
        self._epoch += 1
        return task

    @property
    def is_idle(self) -> bool:
        return self.current_task is None

    # -- issue loop -----------------------------------------------------------------

    def _schedule_next_issue(self) -> None:
        task = self.current_task
        now = self.engine.now
        qend = self._quantum_end
        access = task.workload.next_access(task)
        gap = max(1, access.gap_cycles)
        offset = gap
        chain = None
        # Compute-chain fast-forward: fold consecutive pure-compute gaps
        # that end strictly inside the current quantum into one engine
        # event.  Per-gap instruction credits are replayed lazily by
        # sync_accounting, so every observer (preemption, stats
        # collection, time-series sampling) sees the same cycle-exact
        # accounting the one-event-per-gap schedule produced.
        while (
            access.address is None
            and (qend is None or now + offset < qend)
            and (chain is None or len(chain) < _CHAIN_MAX)
        ):
            if chain is None:
                chain = []
            chain.append((offset, access.instructions))
            access = task.workload.next_access(task)
            gap = max(1, access.gap_cycles)
            offset += gap
        self._chain = chain
        self._chain_start = now
        self._chain_credited = 0
        self._chain_final = (offset - gap, gap, access.instructions)
        self._pending_gap_start = now + offset - gap
        self._pending_gap_cycles = gap
        self._pending_instructions = access.instructions
        self.engine.schedule(offset, self._issue, (self._epoch, access))

    def sync_accounting(self, now: Optional[int] = None) -> None:
        """Credit fully-elapsed fast-forward chain gaps up to *now*.

        The fast-forward replaces one engine event per compute gap with a
        single event at the end of the chain; anything that reads
        ``task.stats.instructions`` mid-chain must call this first so the
        credit matches the per-event schedule cycle for cycle.  Also
        re-points the pending-gap proration window at whichever gap is in
        progress at *now*."""
        chain = self._chain
        task = self.current_task
        if chain is None or task is None:
            return
        if now is None:
            now = self.engine.now
        start = self._chain_start
        i = self._chain_credited
        n = len(chain)
        stats = task.stats
        while i < n and start + chain[i][0] <= now:
            stats.instructions += chain[i][1]
            i += 1
        self._chain_credited = i
        if i < n:
            end, instructions = chain[i]
            prev_end = chain[i - 1][0] if i else 0
            self._pending_gap_start = start + prev_end
            self._pending_gap_cycles = end - prev_end
            self._pending_instructions = instructions
        else:
            foff, fgap, finstr = self._chain_final
            self._pending_gap_start = start + foff
            self._pending_gap_cycles = fgap
            self._pending_instructions = finstr
            self._chain = None  # fully replayed

    def _issue(self, ctx: tuple[int, object]) -> None:
        epoch, access = ctx
        if epoch != self._epoch:
            return  # stale: the task was switched out
        task = self.current_task
        chain = self._chain
        if chain is not None:
            # The chain ends strictly before this event, so every folded
            # gap is fully elapsed: flush any uncredited remainder.
            stats = task.stats
            for i in range(self._chain_credited, len(chain)):
                stats.instructions += chain[i][1]
            self._chain = None
        if access.address is not None and not self._can_issue(task):
            # The gap elapsed but the window is full: the front end is
            # actually stalled — defer the miss until retirement frees room.
            self._deferred = access
            self._stalled = True
            self._pending_gap_cycles = 0
            task.stats.mlp_stalls += 1
            return
        self._do_issue(epoch, task, access)

    def _do_issue(self, epoch: int, task, access) -> None:
        task.stats.instructions += access.instructions
        self._pending_gap_cycles = 0

        if access.address is None:
            # Pure-compute gap (no LLC miss): keep the front end running.
            self._schedule_next_issue()
            return

        entry = _RobEntry(access.instructions)
        self._window.append(entry)
        self._inflight_instr += access.instructions
        request = MemoryRequest(
            RequestType.READ,
            access.address,
            self.controller.mapping.address_to_coordinate(access.address),
            task_id=task.task_id,
            on_complete=self._on_read_complete,
        )
        request.ctx = (epoch, task, entry)
        self.controller.enqueue(request)
        task.stats.reads_issued += 1
        self._outstanding += 1

        if access.writeback_address is not None:
            wb = MemoryRequest(
                RequestType.WRITE,
                access.writeback_address,
                self.controller.mapping.address_to_coordinate(
                    access.writeback_address
                ),
                task_id=task.task_id,
            )
            self.controller.enqueue(wb)
            task.stats.writes_issued += 1

        if self._can_issue(task):
            self._schedule_next_issue()
        else:
            self._stalled = True
            task.stats.mlp_stalls += 1

    def _can_issue(self, task) -> bool:
        """Front end may run ahead: MLP window and ROB both have room.

        Instructions *older* than the oldest outstanding miss have retired,
        so the head entry's gap does not occupy the ROB.
        """
        if self._outstanding >= task.workload.mlp:
            return False
        head_gap = self._window[0].instructions if self._window else 0
        return self._inflight_instr - head_gap < self.rob_entries

    def _on_read_complete(self, request: MemoryRequest) -> None:
        epoch, task, entry = request.ctx
        task.stats.record_read_latency(request.latency, request.refresh_stall)
        if epoch != self._epoch:
            return  # completion for a task no longer on this core
        entry.done = True
        self._outstanding -= 1
        # In-order retirement: only entries at the head of the window
        # (every older miss complete) free ROB space.
        window = self._window
        while window and window[0].done:
            retired = window.popleft()
            self._inflight_instr -= retired.instructions
        if self._stalled and self._can_issue(task):
            self._stalled = False
            deferred = self._deferred
            if deferred is not None:
                self._deferred = None
                self._do_issue(epoch, task, deferred)
            else:
                self._schedule_next_issue()

    # -- checkpoint/restore ----------------------------------------------------

    def rob_index(self, entry: _RobEntry) -> int:
        """Position of *entry* in the ROB window (for request ctx capture)."""
        for i, candidate in enumerate(self._window):
            if candidate is entry:
                return i
        raise SimulationError("ROB entry not in window")

    def rob_entry(self, index: int) -> _RobEntry:
        """ROB entry at *index* (for request ctx restore)."""
        return self._window[index]

    def snapshot_state(self) -> dict:
        """Serializable mutable state.  Call :meth:`sync_accounting` first
        so lazily credited fast-forward gaps are linearized; a chain whose
        tail extends past the barrier is captured mid-flight."""
        return {
            "current_task": (
                None if self.current_task is None else self.current_task.task_id
            ),
            "quantum_start": self.quantum_start,
            "_epoch": self._epoch,
            "_outstanding": self._outstanding,
            "_window": [[e.instructions, e.done] for e in self._window],
            "_inflight_instr": self._inflight_instr,
            "_stalled": self._stalled,
            "_deferred": encode_access(self._deferred),
            "_pending_gap_start": self._pending_gap_start,
            "_pending_gap_cycles": self._pending_gap_cycles,
            "_pending_instructions": self._pending_instructions,
            "_quantum_end": self._quantum_end,
            "_chain": (
                None
                if self._chain is None
                else [[off, instr] for off, instr in self._chain]
            ),
            "_chain_start": self._chain_start,
            "_chain_credited": self._chain_credited,
            "_chain_final": list(self._chain_final),
            "idle_cycles": self.idle_cycles,
            "_idle_since": self._idle_since,
        }

    def restore_state(self, state: dict, task_by_id: dict) -> None:
        """Inverse of :meth:`snapshot_state`; *task_by_id* resolves the
        running task reference."""
        task_id = state["current_task"]
        self.current_task = None if task_id is None else task_by_id[int(task_id)]
        self.quantum_start = int(state["quantum_start"])
        self._epoch = int(state["_epoch"])
        self._outstanding = int(state["_outstanding"])
        self._window = deque()
        for instructions, done in state["_window"]:
            entry = _RobEntry(int(instructions))
            entry.done = bool(done)
            self._window.append(entry)
        self._inflight_instr = int(state["_inflight_instr"])
        self._stalled = bool(state["_stalled"])
        self._deferred = decode_access(state["_deferred"])
        self._pending_gap_start = int(state["_pending_gap_start"])
        self._pending_gap_cycles = int(state["_pending_gap_cycles"])
        self._pending_instructions = int(state["_pending_instructions"])
        qend = state["_quantum_end"]
        self._quantum_end = None if qend is None else int(qend)
        chain = state["_chain"]
        self._chain = (
            None
            if chain is None
            else [(int(off), int(instr)) for off, instr in chain]
        )
        self._chain_start = int(state["_chain_start"])
        self._chain_credited = int(state["_chain_credited"])
        final = state["_chain_final"]
        self._chain_final = (int(final[0]), int(final[1]), int(final[2]))
        self.idle_cycles = int(state["idle_cycles"])
        since = state["_idle_since"]
        self._idle_since = None if since is None else int(since)

    def __repr__(self) -> str:
        running = self.current_task.task_id if self.current_task else "idle"
        return f"Core({self.core_id}, task={running})"


def encode_access(access) -> Optional[list]:
    """JSON-able form of a workload :class:`MemAccess` (or ``None``)."""
    if access is None:
        return None
    return [
        access.instructions,
        access.gap_cycles,
        access.address,
        access.writeback_address,
    ]


def decode_access(data):
    """Inverse of :func:`encode_access`."""
    if data is None:
        return None
    from repro.workloads.benchmark import MemAccess

    instructions, gap_cycles, address, writeback = data
    return MemAccess(
        int(instructions),
        int(gap_cycles),
        None if address is None else int(address),
        None if writeback is None else int(writeback),
    )
