"""Set-associative write-back cache with LRU replacement.

Used by the trace-driven workload front-end and directly unit-tested; the
statistical workload models (Section 3 of DESIGN.md) bypass it by
generating LLC misses directly from measured MPKI.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.telemetry.stats import StatsBase


@dataclass
class CacheStats(StatsBase):
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class _Line:
    __slots__ = ("tag", "dirty")

    def __init__(self, tag: int, dirty: bool = False):
        self.tag = tag
        self.dirty = dirty


class Cache:
    """One level of set-associative cache.

    >>> c = Cache(size_bytes=1024, assoc=2, line_bytes=64)
    >>> c.access(0, is_write=False)      # cold miss
    (False, None)
    >>> c.access(0, is_write=False)[0]   # now a hit
    True
    """

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int = 64,
                 name: str = "cache"):
        if size_bytes <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ConfigError(f"{name}: sizes must be positive")
        if size_bytes % (assoc * line_bytes) != 0:
            raise ConfigError(
                f"{name}: size {size_bytes} not divisible by assoc*line"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (assoc * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ConfigError(f"{name}: number of sets must be a power of two")
        # Each set is an OrderedDict tag -> _Line; order = LRU (front oldest).
        self._sets: list[OrderedDict[int, _Line]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    def _locate(self, address: int) -> tuple[int, int]:
        line_addr = address // self.line_bytes
        return line_addr % self.num_sets, line_addr // self.num_sets

    def access(self, address: int, is_write: bool) -> tuple[bool, Optional[int]]:
        """Access one address.  Returns ``(hit, victim_address)`` where
        *victim_address* is the address of a dirty evicted line needing
        writeback (or ``None``)."""
        set_idx, tag = self._locate(address)
        cache_set = self._sets[set_idx]
        line = cache_set.get(tag)
        if line is not None:
            cache_set.move_to_end(tag)
            if is_write:
                line.dirty = True
            self.stats.hits += 1
            return True, None

        self.stats.misses += 1
        victim_address = None
        if len(cache_set) >= self.assoc:
            victim_tag, victim = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
                victim_line_addr = victim_tag * self.num_sets + set_idx
                victim_address = victim_line_addr * self.line_bytes
        cache_set[tag] = _Line(tag, dirty=is_write)
        return False, victim_address

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU or stats."""
        set_idx, tag = self._locate(address)
        return tag in self._sets[set_idx]

    def invalidate_all(self) -> None:
        """Drop every line (no writebacks) — used between test scenarios."""
        for cache_set in self._sets:
            cache_set.clear()

    @property
    def occupied_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:
        return (
            f"Cache({self.name}: {self.size_bytes}B, {self.assoc}-way, "
            f"{self.num_sets} sets)"
        )
