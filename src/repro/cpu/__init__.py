"""CPU substrate: set-associative caches and the interval core model."""

from repro.cpu.cache import Cache, CacheStats
from repro.cpu.hierarchy import AccessResult, CacheHierarchy
from repro.cpu.core import Core

__all__ = ["Cache", "CacheStats", "CacheHierarchy", "AccessResult", "Core"]
