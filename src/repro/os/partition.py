"""Bank-aware memory-partitioning allocator — Algorithm 2 of the paper.

The allocator sits on top of the buddy allocator and maintains a *cache of
per-bank free lists*: pages pulled from the OS free list whose bank does not
match the wanted one are parked in their bank's cache instead of being
returned, so later requests for that bank are served without re-traversing
the OS free list.

Per task it honors ``possible_banks_vector`` and rotates
``lastAllocedBank`` round-robin over the allowed banks so consecutive
allocations stripe across banks (preserving BLP inside the partition).

Modes:

* ``PartitionPolicy.NONE`` — bank-oblivious baseline (plain buddy order).
* ``PartitionPolicy.SOFT`` — tasks share their allowed-bank groups; when the
  allowed banks are exhausted, allocation *spills* to any bank
  (Section 5.4.1's generalization for large-footprint tasks).
* ``PartitionPolicy.HARD`` — exclusive bank ownership; no spill: allocation
  fails with :class:`OutOfMemoryError` when the partition is full, modelling
  the page-fault catastrophe the paper warns about.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import OutOfMemoryError
from repro.os.buddy import BuddyAllocator
from repro.os.page import PhysicalMemory
from repro.os.task import Task
from repro.telemetry.events import PageAllocEvent
from repro.telemetry.hub import Telemetry


class PartitionPolicy(enum.Enum):
    NONE = "none"
    SOFT = "soft"
    HARD = "hard"


class PartitioningAllocator:
    """Algorithm 2: get_page_from_freelist with per-bank free-list caches."""

    def __init__(
        self,
        memory: PhysicalMemory,
        policy: PartitionPolicy,
        telemetry: Optional[Telemetry] = None,
    ):
        self.memory = memory
        self.policy = policy
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.buddy = BuddyAllocator(memory.total_frames)
        total_banks = memory.total_banks
        self._bank_cache: list[list[int]] = [[] for _ in range(total_banks)]
        self.cache_hits = 0
        self.cache_fills = 0
        self.spills = 0

    # -- public API -----------------------------------------------------------------

    def alloc_page(self, task: Task) -> int:
        """Allocate one page frame for *task*, honoring its bank vector."""
        if self.policy is PartitionPolicy.NONE or task.possible_banks is None:
            frame = self._alloc_any(task)
        else:
            frame = self._alloc_partitioned(task)
        bank = self.memory.bank_of_frame(frame)
        self.memory.claim(frame, task.task_id)
        task.add_frame(frame, bank)
        if self.telemetry.enabled:
            self.telemetry.emit(
                PageAllocEvent(
                    time=self.telemetry.now(),
                    task_id=task.task_id,
                    frame=frame,
                    bank=bank,
                    spilled=(
                        task.possible_banks is not None
                        and self.policy is not PartitionPolicy.NONE
                        and bank not in task.possible_banks
                    ),
                )
            )
        return frame

    def alloc_footprint(self, task: Task, num_pages: int) -> int:
        """Allocate *num_pages* pages; returns how many succeeded.

        Under SOFT partitioning all pages land somewhere (spilling);
        under HARD partitioning allocation stops at the partition boundary.
        """
        allocated = 0
        for _ in range(num_pages):
            try:
                self.alloc_page(task)
            except OutOfMemoryError:
                break
            allocated += 1
        return allocated

    def free_page(self, task: Task, frame: int) -> None:
        """Release one of *task*'s frames back to the buddy (used by the
        demand-paging evictor)."""
        self.memory.release(frame)
        self.buddy.free(frame)
        task.frames.remove(frame)
        bank = self.memory.bank_of_frame(frame)
        remaining = task.pages_per_bank.get(bank, 0) - 1
        if remaining > 0:
            task.pages_per_bank[bank] = remaining
        else:
            task.pages_per_bank.pop(bank, None)

    def free_task(self, task: Task) -> None:
        """Release every frame owned by *task* back to the buddy."""
        for frame in task.frames:
            self.memory.release(frame)
            self.buddy.free(frame)
        task.frames.clear()
        task.pages_per_bank.clear()

    def free_frames(self) -> int:
        cached = sum(len(c) for c in self._bank_cache)
        return self.buddy.free_frames() + cached

    def cached_frames_in_bank(self, flat_bank: int) -> int:
        return len(self._bank_cache[flat_bank])

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Serializable mutable state (the shared :class:`PhysicalMemory`
        is captured separately by the system layer)."""
        return {
            "buddy": self.buddy.snapshot_state(),
            "_bank_cache": [list(cache) for cache in self._bank_cache],
            "cache_hits": self.cache_hits,
            "cache_fills": self.cache_fills,
            "spills": self.spills,
        }

    def restore_state(self, state: dict) -> None:
        self.buddy.restore_state(state["buddy"])
        self._bank_cache = [
            [int(f) for f in cache] for cache in state["_bank_cache"]
        ]
        self.cache_hits = int(state["cache_hits"])
        self.cache_fills = int(state["cache_fills"])
        self.spills = int(state["spills"])

    # -- Algorithm 2 core -----------------------------------------------------------

    def _alloc_any(self, task: Task) -> int:
        """Bank-oblivious path: cached pages first, then the buddy."""
        for bank, cache in enumerate(self._bank_cache):
            if cache:
                self.cache_hits += 1
                return cache.pop()
        return self.buddy.alloc_page()

    def _alloc_partitioned(self, task: Task) -> int:
        allowed = task.possible_banks
        total_banks = self.memory.total_banks
        # Round-robin over the allowed banks starting after lastAllocedBank.
        alloc_bank = task.last_alloced_bank
        for _ in range(total_banks):
            alloc_bank = (alloc_bank + 1) % total_banks
            if alloc_bank not in allowed:
                continue
            frame = self._page_for_bank(alloc_bank)
            if frame is not None:
                task.last_alloced_bank = alloc_bank
                return frame
        # Allowed banks are exhausted.
        if self.policy is PartitionPolicy.HARD:
            raise OutOfMemoryError(
                f"hard partition of task {task.task_id} is full"
            )
        # SOFT: spill anywhere (Section 5.4.1).
        frame = self._page_any_bank()
        if frame is None:
            raise OutOfMemoryError("physical memory exhausted")
        self.spills += 1
        return frame

    def _page_for_bank(self, wanted_bank: int) -> Optional[int]:
        """A free page in *wanted_bank*: the per-bank cache first, then pull
        pages from the OS free list, caching mismatches (lines 15-33)."""
        cache = self._bank_cache[wanted_bank]
        if cache:
            self.cache_hits += 1
            return cache.pop()
        while self.buddy.has_free():
            frame = self.buddy.alloc_page()
            bank = self.memory.bank_of_frame(frame)
            if bank == wanted_bank:
                return frame
            self._bank_cache[bank].append(frame)
            self.cache_fills += 1
        return None

    def _page_any_bank(self) -> Optional[int]:
        for cache in self._bank_cache:
            if cache:
                return cache.pop()
        if self.buddy.has_free():
            return self.buddy.alloc_page()
        return None

    def __repr__(self) -> str:
        return (
            f"PartitioningAllocator({self.policy.value}, "
            f"free={self.free_frames()}, spills={self.spills})"
        )
