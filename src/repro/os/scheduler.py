"""OS process schedulers driving the cores at quantum granularity.

:class:`CfsScheduler` is the baseline: per-CPU vruntime-ordered runqueues
with a fixed time slice — with equal-weight always-runnable tasks this
degenerates to the round-robin schedule the paper uses as its baseline
(Table 1: "CFS (round-robin)").

Quanta on all cores are synchronized and, when the quantum is derived from
the refresh configuration, aligned with the same-bank refresh stretches —
the alignment the co-design exploits.
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import Engine
from repro.cpu.core import Core
from repro.errors import SchedulerError
from repro.os.cfs import CfsRunqueue
from repro.os.task import Task


class OsScheduler:
    """Base scheduler: owns runqueues and the quantum tick."""

    name = "base"

    def __init__(self, engine: Engine, cores: list[Core], quantum_cycles: int):
        if quantum_cycles <= 0:
            raise SchedulerError("quantum must be positive")
        self.engine = engine
        self.cores = cores
        self.quantum_cycles = quantum_cycles
        self.runqueues = [CfsRunqueue(core.core_id) for core in cores]
        self.context_switches = 0
        # Observers called as fn(time, core_id, task_or_None) after every
        # quantum dispatch; managed through subscribe()/unsubscribe().
        self._pick_observers: list = []
        self._started = False

    # -- pick observation --------------------------------------------------------------

    @property
    def pick_observers(self) -> tuple:
        """Read-only view of the subscribed pick observers.

        Mutate through :meth:`subscribe` / :meth:`unsubscribe`; appending
        to this view is a silent no-op, which is why it is a tuple.
        """
        return tuple(self._pick_observers)

    def subscribe(self, observer):
        """Register ``observer(time, core_id, task_or_None)`` to run after
        every quantum dispatch; returns it as the unsubscribe handle."""
        self._pick_observers.append(observer)
        return observer

    def unsubscribe(self, observer) -> None:
        """Remove a subscribed observer; unknown observers are ignored."""
        try:
            self._pick_observers.remove(observer)
        except ValueError:
            pass

    # -- task admission --------------------------------------------------------------

    def add_task(self, task: Task, cpu: Optional[int] = None) -> None:
        """Admit a task; without an explicit CPU, balance round-robin (the
        CFS load balancer keeps per-CPU queue lengths equal)."""
        if cpu is None:
            cpu = min(
                range(len(self.runqueues)), key=lambda c: self.runqueues[c].nr_running
            )
        self.runqueues[cpu].enqueue(task)

    def tasks(self) -> list[Task]:
        found = [t for rq in self.runqueues for t in rq.tasks()]
        found.extend(
            core.current_task for core in self.cores if core.current_task is not None
        )
        return found

    # -- quantum ticks ------------------------------------------------------------------

    def start(self) -> None:
        """Dispatch initial tasks and begin ticking."""
        if self._started:
            raise SchedulerError("scheduler already started")
        self._started = True
        self._tick()

    def _tick(self) -> None:
        quantum_end = self.engine.now + self.quantum_cycles
        for core, runqueue in zip(self.cores, self.runqueues):
            previous = core.preempt()
            if previous is not None:
                previous.vruntime += self.quantum_cycles / previous.weight
                runqueue.enqueue(previous)
            chosen = self.pick_next_task(runqueue)
            if chosen is not None:
                runqueue.dequeue(chosen)
                self.context_switches += 1
            core.run_task(chosen, quantum_end)
            for observer in self._pick_observers:
                observer(self.engine.now, core.core_id, chosen)
        self.engine.schedule(self.quantum_cycles, self._tick)

    # -- checkpoint/restore ------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Serializable mutable state (observers are runtime wiring and
        are not captured; the queued ``_tick`` event is captured by the
        engine snapshot)."""
        return {
            "context_switches": self.context_switches,
            "runqueues": [rq.snapshot_state() for rq in self.runqueues],
            "_started": self._started,
        }

    def restore_state(self, state: dict, task_by_id: dict) -> None:
        self.context_switches = int(state["context_switches"])
        for rq, rq_state in zip(self.runqueues, state["runqueues"]):
            rq.restore_state(rq_state, task_by_id)
        self._started = bool(state["_started"])

    # -- policy ---------------------------------------------------------------------------

    def pick_next_task(self, runqueue: CfsRunqueue) -> Optional[Task]:
        raise NotImplementedError


class CfsScheduler(OsScheduler):
    """Baseline CFS: always run the leftmost (min-vruntime) task."""

    name = "cfs"

    def pick_next_task(self, runqueue: CfsRunqueue) -> Optional[Task]:
        return runqueue.pick_first()
