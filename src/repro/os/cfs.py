"""CFS-style runqueue: tasks ordered by virtual runtime.

Linux keeps runnable tasks in a vruntime-ordered red-black tree; with the
handful of tasks per CPU used here a sorted list gives the same semantics
(leftmost = smallest vruntime) with simpler code.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import SchedulerError
from repro.os.task import Task


class CfsRunqueue:
    """Per-CPU runqueue sorted by (vruntime, task_id)."""

    def __init__(self, cpu_id: int):
        self.cpu_id = cpu_id
        self._tasks: list[Task] = []

    def __len__(self) -> int:
        return len(self._tasks)

    @property
    def nr_running(self) -> int:
        return len(self._tasks)

    def enqueue(self, task: Task) -> None:
        if task in self._tasks:
            raise SchedulerError(f"{task} is already enqueued on cpu{self.cpu_id}")
        self._tasks.append(task)

    def dequeue(self, task: Task) -> None:
        try:
            self._tasks.remove(task)
        except ValueError:
            raise SchedulerError(
                f"{task} is not enqueued on cpu{self.cpu_id}"
            ) from None

    def in_vruntime_order(self) -> Iterator[Task]:
        """Runnable tasks, leftmost (smallest vruntime) first."""
        return iter(sorted(self._tasks, key=lambda t: (t.vruntime, t.task_id)))

    def pick_first(self) -> Optional[Task]:
        """The leftmost runnable task (plain CFS pick_next_entity)."""
        best = None
        for task in self._tasks:
            if not task.runnable:
                continue
            if best is None or (task.vruntime, task.task_id) < (
                best.vruntime,
                best.task_id,
            ):
                best = task
        return best

    def min_vruntime(self) -> float:
        """Smallest vruntime on the queue (0 when empty)."""
        if not self._tasks:
            return 0.0
        return min(t.vruntime for t in self._tasks)

    def tasks(self) -> list[Task]:
        return list(self._tasks)

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        return {"_tasks": [t.task_id for t in self._tasks]}

    def restore_state(self, state: dict, task_by_id: dict) -> None:
        self._tasks = [task_by_id[int(tid)] for tid in state["_tasks"]]

    def __repr__(self) -> str:
        return f"CfsRunqueue(cpu{self.cpu_id}, nr={len(self._tasks)})"
