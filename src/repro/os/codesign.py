"""Co-design glue: bank-vector assignment and schedulability checks.

This is the policy layer that makes Algorithms 1-3 compose (paper
Section 5.3): given the task count, core count and bank geometry it
computes each task's ``possible_banks_vector`` such that

* every task keeps ``banks_per_rank - excluded`` banks per rank (6 of 8 at
  the paper's 1:4 dual-core sweet spot, 4 of 8 at 1:2);
* the tasks on each core exclude *disjoint sliding windows* of banks whose
  union covers every bank — so whichever bank the same-bank schedule is
  refreshing, **every core's runqueue holds a task with no data in it**.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.dram_configs import DramOrganization
from repro.errors import ConfigError


@dataclass(frozen=True)
class CoDesignPolicy:
    """Resolved co-design parameters for one run."""

    num_tasks: int
    num_cores: int
    organization: DramOrganization
    banks_per_task: int  # allowed banks per rank

    @property
    def excluded_per_task(self) -> int:
        return self.organization.banks_per_rank - self.banks_per_task

    @property
    def tasks_per_core(self) -> int:
        return self.num_tasks // self.num_cores


def default_banks_per_task(
    num_tasks: int, num_cores: int, banks_per_rank: int = 8
) -> int:
    """The paper's partition sizing: tasks on one core must collectively
    exclude all banks, so each excludes ``banks_per_rank / tasks_per_core``
    — leaving 6 allowed banks at 1:4 consolidation and 4 at 1:2
    (Sections 6.2 and 6.6)."""
    if num_tasks < num_cores:
        raise ConfigError("need at least one task per core")
    tasks_per_core = num_tasks // num_cores
    if tasks_per_core < 2:
        raise ConfigError(
            "co-design partitioning needs >= 2 tasks per core; with fewer, "
            "a task would need 0 allowed banks to cover all refresh stretches"
        )
    excluded = max(1, banks_per_rank // tasks_per_core)
    return banks_per_rank - excluded


def assign_bank_vectors(
    num_tasks: int,
    num_cores: int,
    organization: DramOrganization,
    banks_per_task: int | None = None,
) -> list[frozenset[int]]:
    """Per-task ``possible_banks_vector`` as flat bank indices.

    Task *t* runs on core ``t % num_cores`` (matching the scheduler's
    round-robin admission) and is the ``j = t // num_cores``-th task of
    that core; it excludes the per-rank bank window
    ``[j * stride, j * stride + excluded)`` in **every** rank and channel,
    so the exclusion windows of one core's tasks tile the whole rank.
    """
    organization.validate()
    banks_per_rank = organization.banks_per_rank
    if banks_per_task is None:
        banks_per_task = default_banks_per_task(
            num_tasks, num_cores, banks_per_rank
        )
    if not 1 <= banks_per_task < banks_per_rank:
        raise ConfigError(
            f"banks_per_task must be in [1, {banks_per_rank}), got {banks_per_task}"
        )
    excluded = banks_per_rank - banks_per_task
    tasks_per_core = -(-num_tasks // num_cores)  # ceil
    vectors: list[frozenset[int]] = []
    for t in range(num_tasks):
        j = t // num_cores
        # Spread window starts evenly so they tile the rank even when
        # tasks_per_core * excluded != banks_per_rank.
        start = (j * banks_per_rank // tasks_per_core) % banks_per_rank
        excluded_banks = {(start + k) % banks_per_rank for k in range(excluded)}
        allowed = frozenset(
            organization.banks_per_rank * (channel * organization.ranks_per_channel + rank)
            + bank
            for channel in range(organization.channels)
            for rank in range(organization.ranks_per_channel)
            for bank in range(banks_per_rank)
            if bank not in excluded_banks
        )
        vectors.append(allowed)
    return vectors


def schedulability_report(
    vectors: list[frozenset[int]],
    num_cores: int,
    organization: DramOrganization,
) -> dict[int, list[int]]:
    """For every flat bank, which cores have >= 1 task that excludes it.

    A fully schedulable assignment maps every bank to every core — the
    refresh-aware scheduler then never needs its fairness fallback (absent
    sleep states, priorities, or footprint spill).
    """
    report: dict[int, list[int]] = {}
    for flat in range(organization.total_banks):
        cores_with_clean = sorted(
            {
                t % num_cores
                for t, allowed in enumerate(vectors)
                if flat not in allowed
            }
        )
        report[flat] = cores_with_clean
    return report


def is_fully_schedulable(
    vectors: list[frozenset[int]],
    num_cores: int,
    organization: DramOrganization,
) -> bool:
    report = schedulability_report(vectors, num_cores, organization)
    return all(len(cores) == num_cores for cores in report.values())
