"""OS substrate: physical memory, allocators, tasks, and schedulers."""

from repro.os.buddy import BuddyAllocator
from repro.os.page import PhysicalMemory
from repro.os.partition import PartitionPolicy, PartitioningAllocator
from repro.os.task import Task, TaskStats
from repro.os.cfs import CfsRunqueue
from repro.os.scheduler import CfsScheduler, OsScheduler
from repro.os.refresh_aware import RefreshAwareScheduler
from repro.os.codesign import CoDesignPolicy, assign_bank_vectors
from repro.os.loadbalance import LoadBalancer
from repro.os.vm import VirtualMemory, VmStats

__all__ = [
    "BuddyAllocator",
    "PhysicalMemory",
    "PartitionPolicy",
    "PartitioningAllocator",
    "Task",
    "TaskStats",
    "CfsRunqueue",
    "OsScheduler",
    "CfsScheduler",
    "RefreshAwareScheduler",
    "CoDesignPolicy",
    "assign_bank_vectors",
    "LoadBalancer",
    "VirtualMemory",
    "VmStats",
]
