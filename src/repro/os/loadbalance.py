"""CFS load balancer (Section 2.4: "CFS runs the load-balancer in the
background to maintain an equal number of tasks in the per-CPU queues").

Periodically migrates tasks from the busiest to the idlest runqueue when
their lengths differ by two or more.  The *bank-aware* mode matters for
the co-design: a naive migration can strip a core of the only task that
excludes some bank, so the refresh-aware scheduler would be forced into
fairness fallbacks for that bank's stretches.  Bank-aware selection
prefers migrating a task whose exclusion window is duplicated on the
source core and missing on the destination core, preserving (or even
repairing) per-core stretch coverage.
"""

from __future__ import annotations

from typing import Optional

from repro.os.scheduler import OsScheduler
from repro.os.task import Task
from repro.telemetry.events import TaskMigrationEvent
from repro.telemetry.hub import Telemetry


class LoadBalancer:
    """Periodic runqueue balancing for an :class:`OsScheduler`."""

    def __init__(
        self,
        scheduler: OsScheduler,
        interval_quanta: int = 4,
        bank_aware: bool = False,
        total_banks: int = 16,
        telemetry: Optional[Telemetry] = None,
    ):
        if interval_quanta < 1:
            raise ValueError("interval_quanta must be >= 1")
        self.scheduler = scheduler
        self.interval_quanta = interval_quanta
        self.bank_aware = bank_aware
        self.total_banks = total_banks
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.migrations = 0
        self._started = False

    # -- driving ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._schedule_next()

    def _schedule_next(self) -> None:
        delay = self.scheduler.quantum_cycles * self.interval_quanta
        self.scheduler.engine.schedule(delay, self._tick)

    def _tick(self) -> None:
        self.rebalance()
        self._schedule_next()

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        return {"migrations": self.migrations, "_started": self._started}

    def restore_state(self, state: dict) -> None:
        self.migrations = int(state["migrations"])
        self._started = bool(state["_started"])

    # -- balancing ------------------------------------------------------------------

    def rebalance(self) -> int:
        """One balancing pass; returns the number of migrations made."""
        made = 0
        while True:
            queues = self.scheduler.runqueues
            busiest = max(queues, key=lambda q: q.nr_running)
            idlest = min(queues, key=lambda q: q.nr_running)
            if busiest.nr_running - idlest.nr_running < 2:
                return made
            task = self._pick_migration(busiest, idlest)
            if task is None:
                return made
            busiest.dequeue(task)
            idlest.enqueue(task)
            self.migrations += 1
            made += 1
            if self.telemetry.enabled:
                self.telemetry.emit(
                    TaskMigrationEvent(
                        time=self.scheduler.engine.now,
                        task_id=task.task_id,
                        src_cpu=busiest.cpu_id,
                        dst_cpu=idlest.cpu_id,
                    )
                )

    def _pick_migration(self, source, destination) -> Optional[Task]:
        candidates = source.tasks()
        if not candidates:
            return None
        if not self.bank_aware:
            # Migrate the task that has waited longest (max vruntime): the
            # cheapest choice cache-wise in real kernels.
            return max(candidates, key=lambda t: (t.vruntime, t.task_id))

        source_exclusions = self._exclusion_counts(candidates)
        destination_excluded = self._excluded_union(destination.tasks())

        def score(task: Task) -> tuple:
            excluded = self._excluded(task)
            # Redundant on source: every bank it excludes is excluded by
            # another source task too.
            redundant = all(source_exclusions[b] > 1 for b in excluded)
            # Useful on destination: brings exclusion of uncovered banks.
            useful = len(excluded - destination_excluded)
            return (redundant, useful, task.vruntime, task.task_id)

        return max(candidates, key=score)

    # -- helpers ----------------------------------------------------------------------

    def _excluded(self, task: Task) -> set[int]:
        if task.possible_banks is None:
            return set()
        return set(range(self.total_banks)) - set(task.possible_banks)

    def _exclusion_counts(self, tasks) -> dict[int, int]:
        counts = {b: 0 for b in range(self.total_banks)}
        for task in tasks:
            for bank in self._excluded(task):
                counts[bank] += 1
        return counts

    def _excluded_union(self, tasks) -> set[int]:
        union: set[int] = set()
        for task in tasks:
            union |= self._excluded(task)
        return union
