"""Task (task_struct analogue) and per-task statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.telemetry.stats import StatsBase


@dataclass
class TaskStats(StatsBase):
    """Counters used for IPC, memory latency, and fairness reporting."""

    instructions: int = 0
    scheduled_cycles: int = 0
    quanta: int = 0
    reads_issued: int = 0
    writes_issued: int = 0
    reads_completed: int = 0
    read_latency_sum: int = 0
    refresh_stall_sum: int = 0
    mlp_stalls: int = 0

    def record_read_latency(self, latency: int, refresh_stall: int) -> None:
        self.reads_completed += 1
        self.read_latency_sum += latency
        self.refresh_stall_sum += refresh_stall

    @property
    def ipc(self) -> float:
        """Instructions per scheduled CPU cycle."""
        if self.scheduled_cycles == 0:
            return 0.0
        return self.instructions / self.scheduled_cycles

    @property
    def avg_read_latency(self) -> float:
        if self.reads_completed == 0:
            return 0.0
        return self.read_latency_sum / self.reads_completed


class Task:
    """A schedulable task with bank-partitioned memory.

    ``possible_banks`` is the flat-bank-index form of Algorithm 2/3's
    ``possible_banks_vector``: the banks this task is *allowed* to allocate
    in (``None`` = unrestricted, the bank-oblivious baseline).
    ``pages_per_bank`` counts where its pages actually landed — including
    spill pages outside the vector — which is what the refresh-aware
    scheduler's data-presence test and the best-effort generalization
    (Section 5.4.1) consult.
    """

    def __init__(
        self,
        name: str,
        workload,
        possible_banks: Optional[frozenset[int]] = None,
        weight: float = 1.0,
        task_id: Optional[int] = None,
    ):
        # An explicit, caller-assigned task_id keeps a simulation a pure
        # function of its RunSpec: a process-global counter would depend
        # on allocation history (RPR002).  System passes the task's index.
        # Ids must be >= 0 — PhysicalMemory uses -1 as the free-frame
        # sentinel.
        if task_id is None or task_id < 0:
            raise ConfigError(
                f"Task {name!r} needs an explicit task_id >= 0 "
                "(deterministic replay forbids a process-global counter)"
            )
        self.task_id = task_id
        self.name = name
        self.workload = workload
        self.possible_banks = (
            frozenset(possible_banks) if possible_banks is not None else None
        )
        self.weight = weight
        self.vruntime = 0.0
        self.last_alloced_bank = -1  # Algorithm 2 round-robin pointer
        self.frames: list[int] = []
        self.pages_per_bank: dict[int, int] = {}
        self.stats = TaskStats()
        self.runnable = True
        self._scheduled_at: Optional[int] = None
        self.current_core: Optional[int] = None
        # Per-task deterministic RNG, seeded by the system builder.
        self.rng = None
        # Demand-paged address space (set by repro.os.vm.VirtualMemory);
        # None = the footprint is pre-allocated up front.
        self.vm = None

    # -- memory accounting ------------------------------------------------------

    def add_frame(self, frame: int, bank: int) -> None:
        self.frames.append(frame)
        self.pages_per_bank[bank] = self.pages_per_bank.get(bank, 0) + 1

    def has_data_in_bank(self, flat_bank: int) -> bool:
        return self.pages_per_bank.get(flat_bank, 0) > 0

    def fraction_in_bank(self, flat_bank: int) -> float:
        """Fraction of this task's pages residing in *flat_bank*."""
        total = len(self.frames)
        if total == 0:
            return 0.0
        return self.pages_per_bank.get(flat_bank, 0) / total

    # -- scheduling hooks (called by Core) ----------------------------------------

    def on_scheduled(self, now: int, core_id: int) -> None:
        self._scheduled_at = now
        self.current_core = core_id
        self.stats.quanta += 1

    def on_descheduled(self, now: int) -> None:
        if self._scheduled_at is not None:
            self.stats.scheduled_cycles += now - self._scheduled_at
        self._scheduled_at = None
        self.current_core = None

    # -- checkpoint/restore -------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Serializable mutable state, including the task's RNG, workload
        cursor and (when demand-paged) page table.  ``possible_banks`` is
        construction-derived from the spec and deliberately not captured."""
        rng_state = None
        if self.rng is not None:
            version, internal, gauss_next = self.rng.getstate()
            rng_state = [version, list(internal), gauss_next]
        return {
            "vruntime": self.vruntime,
            "last_alloced_bank": self.last_alloced_bank,
            "frames": list(self.frames),
            "pages_per_bank": [
                [bank, pages] for bank, pages in sorted(self.pages_per_bank.items())
            ],
            "stats": self.stats.to_dict(),
            "runnable": self.runnable,
            "_scheduled_at": self._scheduled_at,
            "current_core": self.current_core,
            "rng": rng_state,
            "workload": (
                self.workload.snapshot_state()
                if hasattr(self.workload, "snapshot_state")
                else None
            ),
            "vm": None if self.vm is None else self.vm.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        self.vruntime = float(state["vruntime"])
        self.last_alloced_bank = int(state["last_alloced_bank"])
        self.frames = [int(f) for f in state["frames"]]
        self.pages_per_bank = {
            int(bank): int(pages) for bank, pages in state["pages_per_bank"]
        }
        self.stats = TaskStats.from_dict(state["stats"])
        self.runnable = bool(state["runnable"])
        scheduled_at = state["_scheduled_at"]
        self._scheduled_at = None if scheduled_at is None else int(scheduled_at)
        core = state["current_core"]
        self.current_core = None if core is None else int(core)
        rng_state = state["rng"]
        if rng_state is not None and self.rng is not None:
            version, internal, gauss_next = rng_state
            self.rng.setstate(
                (version, tuple(int(v) for v in internal), gauss_next)
            )
        workload_state = state["workload"]
        if workload_state is not None and hasattr(self.workload, "restore_state"):
            self.workload.restore_state(workload_state)
        vm_state = state["vm"]
        if vm_state is not None and self.vm is not None:
            self.vm.restore_state(vm_state)

    def __repr__(self) -> str:
        return f"Task(#{self.task_id} {self.name!r}, vruntime={self.vruntime:.0f})"
