"""Classic binary buddy allocator (Linux-style, Section 2.3).

Maintains free lists per order; allocation splits larger blocks, freeing
coalesces with the buddy block when both halves are free.  The allocator is
bank-oblivious — the *baseline* configuration of the paper — and is also the
backing store the bank-aware partitioning allocator (Algorithm 2) pulls
pages from.
"""

from __future__ import annotations

from repro.errors import AllocationError, OutOfMemoryError


class BuddyAllocator:
    """Buddy allocator over a contiguous range of page frames.

    Free lists hold block base frames, kept sorted ascending so allocation
    is deterministic and favors low addresses (like Linux's free-list
    ordering after boot).
    """

    MAX_ORDER = 11  # Linux default: blocks up to 2^10 pages

    def __init__(self, total_frames: int, max_order: int | None = None):
        if total_frames <= 0:
            raise AllocationError("total_frames must be positive")
        self.total_frames = total_frames
        self.max_order = max_order if max_order is not None else self.MAX_ORDER
        if self.max_order < 1:
            raise AllocationError("max_order must be >= 1")
        self._free: list[list[int]] = [[] for _ in range(self.max_order)]
        # block_order[frame] = order of the allocated block based there;
        # -1 when the frame is not an allocated block base.
        self._allocated_order: dict[int, int] = {}
        self._free_set: set[tuple[int, int]] = set()  # (order, base)
        self._seed_initial_blocks()

    def _seed_initial_blocks(self) -> None:
        base = 0
        remaining = self.total_frames
        while remaining > 0:
            order = min(self.max_order - 1, remaining.bit_length() - 1)
            # The block must also be naturally aligned to its size.
            while order > 0 and (base % (1 << order) != 0 or (1 << order) > remaining):
                order -= 1
            self._insert_free(order, base)
            base += 1 << order
            remaining -= 1 << order

    # -- free-list plumbing ---------------------------------------------------

    def _insert_free(self, order: int, base: int) -> None:
        lst = self._free[order]
        # Keep ascending order; blocks are few, linear insert is fine.
        lo, hi = 0, len(lst)
        while lo < hi:
            mid = (lo + hi) // 2
            if lst[mid] < base:
                lo = mid + 1
            else:
                hi = mid
        lst.insert(lo, base)
        self._free_set.add((order, base))

    def _remove_free(self, order: int, base: int) -> None:
        self._free[order].remove(base)
        self._free_set.remove((order, base))

    # -- public API --------------------------------------------------------------

    def alloc(self, order: int = 0) -> int:
        """Allocate a block of 2^order frames; returns its base frame."""
        if not 0 <= order < self.max_order:
            raise AllocationError(f"order {order} out of range")
        for o in range(order, self.max_order):
            if self._free[o]:
                base = self._free[o][0]
                self._remove_free(o, base)
                # Split down to the requested order, returning the low half
                # and freeing each high half (buddy).
                while o > order:
                    o -= 1
                    buddy = base + (1 << o)
                    self._insert_free(o, buddy)
                self._allocated_order[base] = order
                return base
        raise OutOfMemoryError(f"no free block of order {order}")

    def alloc_page(self) -> int:
        """Allocate a single page frame."""
        return self.alloc(0)

    def free(self, base: int, order: int | None = None) -> None:
        """Free a previously allocated block, coalescing with buddies."""
        recorded = self._allocated_order.pop(base, None)
        if recorded is None:
            raise AllocationError(f"frame {base} was not an allocated block base")
        if order is not None and order != recorded:
            self._allocated_order[base] = recorded
            raise AllocationError(
                f"block at {base} has order {recorded}, not {order}"
            )
        order = recorded
        while order < self.max_order - 1:
            buddy = base ^ (1 << order)
            if (order, buddy) not in self._free_set:
                break
            self._remove_free(order, buddy)
            base = min(base, buddy)
            order += 1
        self._insert_free(order, base)

    def free_frames(self) -> int:
        """Total number of free page frames."""
        return sum(len(lst) << order for order, lst in enumerate(self._free))

    # -- checkpoint/restore ---------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "_free": [list(lst) for lst in self._free],
            "_allocated_order": [
                [base, order]
                for base, order in sorted(self._allocated_order.items())
            ],
        }

    def restore_state(self, state: dict) -> None:
        self._free = [[int(b) for b in lst] for lst in state["_free"]]
        self._allocated_order = {
            int(base): int(order) for base, order in state["_allocated_order"]
        }
        self._free_set = {
            (order, base)
            for order, lst in enumerate(self._free)
            for base in lst
        }

    def has_free(self) -> bool:
        return any(self._free)

    def free_blocks(self) -> list[tuple[int, int]]:
        """All free blocks as (order, base), for inspection/tests."""
        return [
            (order, base)
            for order, lst in enumerate(self._free)
            for base in lst
        ]

    def __repr__(self) -> str:
        return (
            f"BuddyAllocator({self.free_frames()}/{self.total_frames} frames free)"
        )
