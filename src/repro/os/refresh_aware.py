"""DRAM refresh-aware process scheduling — Algorithm 3 of the paper.

``pick_next_task`` walks the runqueue in vruntime order and returns the
first task with **no data allocated in the bank the memory controller will
refresh during the next quantum** (learned from the exposed same-bank
refresh schedule).  After ``eta_thresh`` candidates have been inspected
without success, fairness wins and the leftmost task runs anyway.

The *best-effort* mode implements the Section 5.4.1 generalization for
large-footprint tasks whose data spilled outside their partition: instead
of the boolean "no data in the refresh bank" test it picks the candidate
with the minimal *fraction* of its pages in that bank.
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import Engine
from repro.cpu.core import Core
from repro.dram.refresh.base import RefreshScheduler
from repro.errors import SchedulerError
from repro.os.cfs import CfsRunqueue
from repro.os.scheduler import OsScheduler
from repro.os.task import Task


class RefreshAwareScheduler(OsScheduler):
    name = "refresh_aware"

    def __init__(
        self,
        engine: Engine,
        cores: list[Core],
        quantum_cycles: int,
        refresh_scheduler: RefreshScheduler,
        eta_thresh: int | None = None,
        best_effort: bool = False,
    ):
        super().__init__(engine, cores, quantum_cycles)
        if not refresh_scheduler.is_predictable():
            raise SchedulerError(
                "refresh-aware scheduling requires a predictable refresh "
                f"schedule; {type(refresh_scheduler).__name__} is not"
            )
        self.refresh_scheduler = refresh_scheduler
        # None = unlimited: scan the entire runqueue before giving up.
        self.eta_thresh = eta_thresh
        self.best_effort = best_effort
        self.clean_picks = 0
        self.fallback_picks = 0
        # True while the most recent pick was the eta_thresh fairness
        # fallback (read by the system's pick observer to tag the event).
        self.last_pick_fallback = False

    # -- checkpoint/restore ------------------------------------------------------------

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["clean_picks"] = self.clean_picks
        state["fallback_picks"] = self.fallback_picks
        state["last_pick_fallback"] = self.last_pick_fallback
        return state

    def restore_state(self, state: dict, task_by_id: dict) -> None:
        super().restore_state(state, task_by_id)
        # .get defaults keep cross-scheduler restores working: a checkpoint
        # captured under plain CFS has no refresh-aware counters.
        self.clean_picks = int(state.get("clean_picks", 0))
        self.fallback_picks = int(state.get("fallback_picks", 0))
        self.last_pick_fallback = bool(state.get("last_pick_fallback", False))

    def next_refresh_bank(self) -> int:
        """Flat bank index the MC refreshes during the upcoming quantum.

        Sampled mid-quantum so a small misalignment between quantum and
        stretch boundaries still resolves to the dominant stretch.
        """
        probe_time = self.engine.now + self.quantum_cycles // 2
        return self.refresh_scheduler.stretch_bank_at(probe_time)

    def pick_next_task(self, runqueue: CfsRunqueue) -> Optional[Task]:
        self.last_pick_fallback = False
        refresh_bank = self.next_refresh_bank()
        first_entity: Optional[Task] = None
        best_fraction: Optional[tuple[float, Task]] = None
        count = 0
        for task in runqueue.in_vruntime_order():
            if not task.runnable:
                continue
            count += 1
            if first_entity is None:
                first_entity = task
            if self.best_effort:
                fraction = task.fraction_in_bank(refresh_bank)
                if best_fraction is None or fraction < best_fraction[0]:
                    best_fraction = (fraction, task)
                if fraction == 0.0:
                    self.clean_picks += 1
                    return task
            else:
                if not task.has_data_in_bank(refresh_bank):
                    self.clean_picks += 1
                    return task
            if self.eta_thresh is not None and count >= self.eta_thresh:
                break
        # eta_thresh reached (or queue exhausted): fairness fallback.
        if first_entity is None:
            return None
        self.fallback_picks += 1
        self.last_pick_fallback = True
        if self.best_effort and best_fraction is not None:
            return best_fraction[1]
        return first_entity
