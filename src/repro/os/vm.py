"""Demand-paged virtual memory.

Implements the page-fault behaviour Section 5.2.1 warns about: under
hard partitioning, a task whose footprint exceeds its bank partition
page-faults *even though other banks have free memory* — "catastrophic to
performance".  Soft partitioning spills instead and avoids the faults.

Each task gets a :class:`VirtualMemory`: a VPN -> frame page table filled
on first touch through the (partition-aware) allocator.  When the
allocator cannot supply a frame, the LRU resident page of the same task is
evicted (swapped out) and the access pays a major-fault penalty; minor
faults (fresh allocation) pay a small one.  Penalties are charged as extra
compute cycles on the faulting access, modelling kernel fault-handling and
swap latency.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.errors import AllocationError, OutOfMemoryError
from repro.os.partition import PartitioningAllocator
from repro.os.task import Task
from repro.telemetry.stats import StatsBase


@dataclass
class VmStats(StatsBase):
    minor_faults: int = 0
    major_faults: int = 0
    evictions: int = 0
    hits: int = 0

    @property
    def faults(self) -> int:
        return self.minor_faults + self.major_faults


class VirtualMemory:
    """Per-task demand-paged address space of ``footprint_pages`` pages."""

    def __init__(
        self,
        task: Task,
        allocator: PartitioningAllocator,
        footprint_pages: int,
        minor_fault_cycles: int = 2_000,
        major_fault_cycles: int = 100_000,
        resident_limit: Optional[int] = None,
    ):
        if footprint_pages < 1:
            raise AllocationError("footprint must be at least one page")
        self.task = task
        self.allocator = allocator
        self.footprint_pages = footprint_pages
        self.minor_fault_cycles = minor_fault_cycles
        self.major_fault_cycles = major_fault_cycles
        #: optional cap on resident pages (an RSS limit); None = bounded
        #: only by what the allocator can supply.
        self.resident_limit = resident_limit
        # VPN -> frame; ordered by recency (front = LRU victim candidate).
        self._table: OrderedDict[int, int] = OrderedDict()
        self.stats = VmStats()
        task.vm = self

    @property
    def resident_pages(self) -> int:
        return len(self._table)

    def translate(self, vpn: int) -> tuple[int, int]:
        """Resolve *vpn* to a physical frame, faulting it in if needed.

        Returns ``(frame, penalty_cycles)``.
        """
        vpn %= self.footprint_pages
        frame = self._table.get(vpn)
        if frame is not None:
            self._table.move_to_end(vpn)
            self.stats.hits += 1
            return frame, 0
        return self._fault(vpn)

    def translate_resident(self, vpn: int) -> Optional[int]:
        """Resolve without faulting: the frame if resident, else ``None``."""
        vpn %= self.footprint_pages
        frame = self._table.get(vpn)
        if frame is not None:
            self._table.move_to_end(vpn)
        return frame

    # -- fault path -----------------------------------------------------------------

    def _fault(self, vpn: int) -> tuple[int, int]:
        if (
            self.resident_limit is not None
            and len(self._table) >= self.resident_limit
        ):
            return self._evict_and_retry(vpn)
        try:
            frame = self.allocator.alloc_page(self.task)
        except OutOfMemoryError:
            return self._evict_and_retry(vpn)
        self._table[vpn] = frame
        self.stats.minor_faults += 1
        return frame, self.minor_fault_cycles

    def _evict_and_retry(self, vpn: int) -> tuple[int, int]:
        if not self._table:
            raise OutOfMemoryError(
                f"task {self.task.task_id}: no frame available and nothing "
                "resident to evict"
            )
        victim_vpn, victim_frame = self._table.popitem(last=False)  # LRU
        self.allocator.free_page(self.task, victim_frame)
        self.stats.evictions += 1
        frame = self.allocator.alloc_page(self.task)
        self._table[vpn] = frame
        self.stats.major_faults += 1
        return frame, self.major_fault_cycles

    def prefault_all(self) -> int:
        """Touch every page without charging penalties (models the paper's
        fast-forward past initialization: the working set is resident when
        the region of interest begins).  Stops quietly when the allocator
        (or the resident limit) cannot hold more; returns pages mapped.

        Counters are reset afterwards so measured faults reflect only
        runtime (capacity) behaviour.
        """
        mapped = 0
        for vpn in range(self.footprint_pages):
            if vpn in self._table:
                mapped += 1
                continue
            if (
                self.resident_limit is not None
                and len(self._table) >= self.resident_limit
            ):
                break
            try:
                frame = self.allocator.alloc_page(self.task)
            except OutOfMemoryError:
                break
            self._table[vpn] = frame
            mapped += 1
        self.stats = VmStats()
        return mapped

    # -- checkpoint/restore -----------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Page table in LRU order (front = eviction candidate) + stats."""
        return {
            "_table": [[vpn, frame] for vpn, frame in self._table.items()],
            "stats": self.stats.to_dict(),
        }

    def restore_state(self, state: dict) -> None:
        self._table = OrderedDict(
            (int(vpn), int(frame)) for vpn, frame in state["_table"]
        )
        self.stats = VmStats.from_dict(state["stats"])

    def release_all(self) -> None:
        """Drop every resident page (process exit)."""
        for frame in list(self._table.values()):
            self.allocator.free_page(self.task, frame)
        self._table.clear()

    def __repr__(self) -> str:
        return (
            f"VirtualMemory(task={self.task.task_id}, "
            f"{self.resident_pages}/{self.footprint_pages} resident, "
            f"{self.stats.faults} faults)"
        )
