"""Physical memory: frames, ownership, and bank accounting.

One frame = one OS page = one DRAM row (4KB by default), so the
frame-to-bank mapping is exactly the hardware address mapping the co-design
exposes to the OS.
"""

from __future__ import annotations

from repro.dram.address import AddressMapping
from repro.errors import AllocationError


class PhysicalMemory:
    """Frame-granular view of DRAM used by the allocators."""

    def __init__(self, mapping: AddressMapping):
        self.mapping = mapping
        self.total_frames = mapping.total_frames
        # owner task_id per frame, -1 = free.  A flat array keeps the
        # allocator hot path cheap.
        self._owner = [-1] * self.total_frames

    @property
    def total_banks(self) -> int:
        return self.mapping.org.total_banks

    @property
    def frames_per_bank(self) -> int:
        return self.mapping.rows_per_bank

    def bank_of_frame(self, frame: int) -> int:
        """Flat bank index hosting *frame* (get_bank_id_from_page)."""
        return self.mapping.frame_to_bank_index(frame)

    def claim(self, frame: int, task_id: int) -> None:
        if self._owner[frame] != -1:
            raise AllocationError(
                f"frame {frame} already owned by task {self._owner[frame]}"
            )
        self._owner[frame] = task_id

    def release(self, frame: int) -> None:
        if self._owner[frame] == -1:
            raise AllocationError(f"frame {frame} is already free")
        self._owner[frame] = -1

    def owner(self, frame: int) -> int:
        return self._owner[frame]

    def frames_owned_by(self, task_id: int) -> list[int]:
        return [f for f, o in enumerate(self._owner) if o == task_id]

    def used_frames(self) -> int:
        return sum(1 for o in self._owner if o != -1)

    # -- checkpoint/restore ---------------------------------------------------

    def snapshot_state(self) -> dict:
        return {"_owner": list(self._owner)}

    def restore_state(self, state: dict) -> None:
        self._owner = [int(o) for o in state["_owner"]]

    def __repr__(self) -> str:
        return (
            f"PhysicalMemory({self.total_frames} frames, "
            f"{self.used_frames()} used)"
        )
