"""DRAM timing and organization presets (Table 1 of the paper).

Timing values are stored in their native units (memory-bus cycles for
JEDEC per-command parameters, nanoseconds/microseconds/milliseconds for
refresh parameters) and converted to CPU cycles by
:class:`repro.dram.timing.DramTiming` at simulation-config time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields

from repro.errors import ConfigError
from repro.units import KB


class FgrMode(enum.Enum):
    """DDR4 Fine Granularity Refresh modes (JEDEC DDR4, paper Section 6.3).

    In 2x/4x modes tREFI is divided by 2/4 but tRFC shrinks only by
    1.35x/1.63x (Mukundan et al., ISCA 2013), so finer modes issue more
    commands with disproportionately long refresh cycles.
    """

    X1 = 1
    X2 = 2
    X4 = 4

    @property
    def trefi_divisor(self) -> int:
        return self.value

    @property
    def trfc_divisor(self) -> float:
        return {FgrMode.X1: 1.0, FgrMode.X2: 1.35, FgrMode.X4: 1.63}[self]


@dataclass(frozen=True)
class DramTimingSpec:
    """Per-command DRAM timing in memory-bus cycles, plus bus frequency.

    Defaults correspond to DDR3-1600 (CL-11) as used in Table 1.
    """

    name: str = "DDR3-1600"
    bus_mhz: float = 800.0  # memory clock (data rate = 2x)
    tCL: int = 11  # CAS latency (read)
    tCWL: int = 8  # CAS write latency
    tRCD: int = 11  # RAS-to-CAS delay
    tRP: int = 11  # row precharge
    tRAS: int = 28  # row active time
    tBL: int = 4  # burst length on the bus (BL8 at DDR)
    tCCD: int = 4  # CAS-to-CAS delay
    tRTP: int = 6  # read-to-precharge
    tWR: int = 12  # write recovery
    tWTR: int = 6  # write-to-read turnaround
    tRRD: int = 5  # activate-to-activate, same rank
    tFAW: int = 24  # four-activate window
    tRTRS: int = 2  # rank-to-rank switch

    @property
    def tRC(self) -> int:
        """Activate-to-activate on the same bank."""
        return self.tRAS + self.tRP

    def to_dict(self) -> dict:
        from repro.serialize import to_jsonable

        return {f.name: to_jsonable(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "DramTimingSpec":
        from repro.serialize import dataclass_from_dict

        return dataclass_from_dict(cls, data)

    def validate(self) -> None:
        for name in (
            "tCL",
            "tCWL",
            "tRCD",
            "tRP",
            "tRAS",
            "tBL",
            "tCCD",
            "tRTP",
            "tWR",
            "tWTR",
            "tRRD",
            "tFAW",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{self.name}: {name} must be positive")
        if self.tRAS < self.tRCD:
            raise ConfigError(f"{self.name}: tRAS must cover tRCD")


DDR3_1600 = DramTimingSpec(name="DDR3-1600")
# DDR4-1600 shares per-command timing at this speed grade; the difference
# exercised by the paper is the FGR refresh modes.
DDR4_1600 = DramTimingSpec(name="DDR4-1600")


@dataclass(frozen=True)
class DensityConfig:
    """Per-device-density refresh parameters (Table 1, "Refresh Config").

    ``trfc_ab_ns`` is the all-bank (rank-level) refresh cycle time; the
    per-bank refresh cycle time is ``trfc_ab_ns / trfc_ab_to_pb_ratio``
    (ratio 2.3, from Chang et al. HPCA 2014, as adopted by the paper).
    """

    density_gbit: int
    trfc_ab_ns: float
    rows_per_bank: int
    trefi_ab_us: float = 7.8
    trfc_ab_to_pb_ratio: float = 2.3

    @property
    def trfc_pb_ns(self) -> float:
        return self.trfc_ab_ns / self.trfc_ab_to_pb_ratio

    def validate(self) -> None:
        if self.density_gbit <= 0:
            raise ConfigError("density must be positive")
        if self.trfc_ab_ns <= 0 or self.trefi_ab_us <= 0:
            raise ConfigError("refresh timings must be positive")
        if self.rows_per_bank <= 0:
            raise ConfigError("rows_per_bank must be positive")


#: Refresh parameters per chip density.  16/24/32 Gb values are straight
#: from Table 1; 8 Gb (used by Figures 3-5) follows the same progression
#: (tRFC=350ns per the paper's Section 3.1, 128K rows/bank).
DENSITIES: dict[int, DensityConfig] = {
    8: DensityConfig(density_gbit=8, trfc_ab_ns=350.0, rows_per_bank=128 * 1024),
    16: DensityConfig(density_gbit=16, trfc_ab_ns=530.0, rows_per_bank=256 * 1024),
    24: DensityConfig(density_gbit=24, trfc_ab_ns=710.0, rows_per_bank=384 * 1024),
    32: DensityConfig(density_gbit=32, trfc_ab_ns=890.0, rows_per_bank=512 * 1024),
}


def density(gbit: int) -> DensityConfig:
    """Look up the :class:`DensityConfig` for a chip density in Gbit."""
    try:
        return DENSITIES[gbit]
    except KeyError:
        raise ConfigError(
            f"unknown density {gbit}Gb; known: {sorted(DENSITIES)}"
        ) from None


@dataclass(frozen=True)
class DramOrganization:
    """Channel/rank/bank geometry (Table 1: 1 channel, 2 ranks/DIMM,
    8 banks/rank, 4KB rows)."""

    channels: int = 1
    ranks_per_channel: int = 2
    banks_per_rank: int = 8
    row_size_bytes: int = 4 * KB
    cacheline_bytes: int = 64
    #: > 1 enables SALP-style subarray-granularity refresh (the Section 7
    #: extension): a per-bank refresh blocks only one subarray.
    subarrays_per_bank: int = 1

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def columns_per_row(self) -> int:
        return self.row_size_bytes // self.cacheline_bytes

    def to_dict(self) -> dict:
        from repro.serialize import to_jsonable

        return {f.name: to_jsonable(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "DramOrganization":
        from repro.serialize import dataclass_from_dict

        return dataclass_from_dict(cls, data)

    def validate(self) -> None:
        if min(self.channels, self.ranks_per_channel, self.banks_per_rank) <= 0:
            raise ConfigError("geometry fields must be positive")
        if self.row_size_bytes % self.cacheline_bytes != 0:
            raise ConfigError("row size must be a multiple of the cache line")
        for name in ("channels", "ranks_per_channel", "banks_per_rank"):
            value = getattr(self, name)
            if value & (value - 1):
                raise ConfigError(f"{name} must be a power of two, got {value}")
        if self.subarrays_per_bank < 1:
            raise ConfigError("subarrays_per_bank must be >= 1")
