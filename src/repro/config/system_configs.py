"""Full-system configuration (Table 1) and simulation scaling knobs."""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.config.dram_configs import (
    DensityConfig,
    DramOrganization,
    DramTimingSpec,
    DDR3_1600,
    FgrMode,
    density,
)
from repro.errors import ConfigError
from repro.units import KB, MB, ms


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (Table 1: 2 cores @ 3.2GHz, 8-wide,
    128-entry ROB).

    The interval core model consumes ``base_cpi`` (CPI in the absence of
    LLC misses) and a per-workload MLP bound; the ROB size caps MLP.
    """

    num_cores: int = 2
    freq_mhz: float = 3200.0
    issue_width: int = 8
    rob_entries: int = 128

    def validate(self) -> None:
        if self.num_cores <= 0 or self.freq_mhz <= 0:
            raise ConfigError("core count and frequency must be positive")

    def to_dict(self) -> dict:
        from repro.serialize import to_jsonable

        return {f.name: to_jsonable(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "CoreConfig":
        from repro.serialize import dataclass_from_dict

        return dataclass_from_dict(cls, data)


@dataclass(frozen=True)
class CacheConfig:
    """Cache hierarchy parameters (Table 1)."""

    l1_size_bytes: int = 32 * KB
    l1_assoc: int = 4
    l1_hit_cycles: int = 2
    l2_size_per_core_bytes: int = 1 * MB
    l2_assoc: int = 16
    l2_hit_cycles: int = 20
    line_bytes: int = 64

    def validate(self) -> None:
        for name in ("l1_size_bytes", "l2_size_per_core_bytes", "line_bytes"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")

    def to_dict(self) -> dict:
        from repro.serialize import to_jsonable

        return {f.name: to_jsonable(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "CacheConfig":
        from repro.serialize import dataclass_from_dict

        return dataclass_from_dict(cls, data)


@dataclass(frozen=True)
class OsConfig:
    """OS parameters: scheduler quantum and allocator mode.

    ``quantum_ps`` of ``None`` means "derive from the refresh schedule":
    the co-design aligns the quantum with the per-bank refresh stretch
    (tREFW / total banks — 4 ms for 64 ms retention and 16 banks, matching
    the CFS time slices the paper observed).

    ``eta_thresh`` is Algorithm 3's fairness valve: how many vruntime-order
    candidates the refresh-aware pick may skip before falling back to the
    leftmost task.  ``None`` (default) scans the whole runqueue — the
    paper's normal operation; 1 disables refresh awareness, 2-3 degrade it
    gracefully (Section 5.4).
    """

    quantum_ps: int | None = None
    eta_thresh: int | None = None
    page_bytes: int = 4 * KB
    #: Demand paging: allocate pages on first touch instead of up front;
    #: fault penalties are charged as extra compute cycles.
    #: Run the CFS load balancer (bank-aware under refresh-aware
    #: scheduling so migrations preserve per-core stretch coverage).
    load_balance: bool = False
    load_balance_interval_quanta: int = 4
    demand_paging: bool = False
    #: Warm start: prefault the footprint at build time (the paper
    #: fast-forwards past initialization), so measured faults are capacity
    #: evictions only.  False = cold start, first touches fault.
    prefault: bool = True
    minor_fault_cycles: int = 2_000
    major_fault_cycles: int = 100_000

    def validate(self) -> None:
        if self.quantum_ps is not None and self.quantum_ps <= 0:
            raise ConfigError("quantum must be positive")
        if self.eta_thresh is not None and self.eta_thresh < 1:
            raise ConfigError("eta_thresh must be >= 1")

    def to_dict(self) -> dict:
        from repro.serialize import to_jsonable

        return {f.name: to_jsonable(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "OsConfig":
        from repro.serialize import dataclass_from_dict

        return dataclass_from_dict(cls, data)


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a simulated system.

    Scaling knobs (see DESIGN.md Section 3):

    ``refresh_scale``
        Divides the retention window tREFW *and* rows-per-bank by the same
        factor, keeping tREFI/tRFC/per-command timing at real values.  All
        refresh overhead *fractions* are preserved; wall-clock simulation
        cost drops by the same factor.  1 = paper-scale.
    ``capacity_scale``
        Divides bank capacity and task footprints by the same factor,
        preserving footprint/capacity ratios for the allocator.
    """

    cores: CoreConfig = field(default_factory=CoreConfig)
    caches: CacheConfig = field(default_factory=CacheConfig)
    os: OsConfig = field(default_factory=OsConfig)
    dram_timing: DramTimingSpec = DDR3_1600
    organization: DramOrganization = field(default_factory=DramOrganization)
    density_gbit: int = 32
    trefw_ps: int = ms(64)
    fgr_mode: FgrMode = FgrMode.X1
    refresh_scale: int = 256
    capacity_scale: int = 1024
    read_queue_depth: int = 64
    write_queue_depth: int = 64
    write_drain_low: int = 32
    write_drain_high: int = 54
    row_policy: str = "open"  # Table 1: open-row; "closed" = auto-precharge
    address_layout: str = "interleaved"  # see repro.dram.address.LAYOUTS
    seed: int = 1

    @property
    def density_config(self) -> DensityConfig:
        return density(self.density_gbit)

    @property
    def trefw_sim_ps(self) -> int:
        """Scaled retention window used by the simulation."""
        return self.trefw_ps // self.refresh_scale

    @property
    def rows_per_bank_sim(self) -> int:
        """Scaled number of rows per bank used by the simulation."""
        return max(1, self.density_config.rows_per_bank // self.refresh_scale)

    @property
    def bank_capacity_bytes(self) -> int:
        """Simulated per-bank capacity after ``capacity_scale``.

        Real capacity is rows_per_bank * row_size; both scaling knobs
        shrink it (refresh_scale shrinks rows, capacity_scale shrinks the
        modelled footprints to match).
        """
        real = self.density_config.rows_per_bank * self.organization.row_size_bytes
        return max(self.os.page_bytes, real // self.capacity_scale)

    def scale_footprint(self, footprint_bytes: int) -> int:
        """Scale a real benchmark footprint into simulated bytes."""
        return max(self.os.page_bytes, footprint_bytes // self.capacity_scale)

    @property
    def quantum_ps(self) -> int:
        """Scheduler quantum: explicit, or tREFW_sim / total_banks."""
        if self.os.quantum_ps is not None:
            return self.os.quantum_ps
        return self.trefw_sim_ps // self.organization.total_banks

    def with_(self, **kwargs) -> "SystemConfig":
        """Return a copy with the given fields replaced."""
        try:
            return replace(self, **kwargs)
        except TypeError as exc:
            raise ConfigError(f"invalid config override: {exc}") from None

    def to_dict(self) -> dict:
        """Canonical JSON-able view (inverse of :meth:`from_dict`)."""
        from repro.serialize import to_jsonable

        return {f.name: to_jsonable(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "SystemConfig":
        """Rebuild a validated config from :meth:`to_dict` output."""
        from repro.serialize import dataclass_from_dict

        if not isinstance(data, dict):
            raise ConfigError(
                f"SystemConfig: expected a dict, got {type(data).__name__}"
            )
        data = dict(data)
        try:
            data["cores"] = CoreConfig.from_dict(data.pop("cores"))
            data["caches"] = CacheConfig.from_dict(data.pop("caches"))
            data["os"] = OsConfig.from_dict(data.pop("os"))
            data["dram_timing"] = DramTimingSpec.from_dict(data.pop("dram_timing"))
            data["organization"] = DramOrganization.from_dict(data.pop("organization"))
            data["fgr_mode"] = FgrMode(data.pop("fgr_mode"))
        except KeyError as exc:
            raise ConfigError(f"SystemConfig: missing field {exc}") from None
        config = dataclass_from_dict(cls, data)
        config.validate()
        return config

    def content_hash(self) -> str:
        """Stable content hash over every resolved field."""
        from repro.serialize import content_hash

        return content_hash(self.to_dict())

    def validate(self) -> None:
        self.cores.validate()
        self.caches.validate()
        self.os.validate()
        self.dram_timing.validate()
        self.organization.validate()
        self.density_config.validate()
        if self.refresh_scale < 1 or self.capacity_scale < 1:
            raise ConfigError("scale factors must be >= 1")
        if self.trefw_ps <= 0:
            raise ConfigError("tREFW must be positive")
        if not 0 < self.write_drain_low < self.write_drain_high <= self.write_queue_depth:
            raise ConfigError("write drain watermarks must satisfy 0 < low < high <= depth")
        if self.row_policy not in ("open", "closed"):
            raise ConfigError(f"row_policy must be 'open' or 'closed', got {self.row_policy!r}")
        from repro.dram.address import LAYOUTS

        if self.address_layout not in LAYOUTS:
            raise ConfigError(
                f"unknown address_layout {self.address_layout!r}; "
                f"known: {sorted(LAYOUTS)}"
            )


def default_system_config(**overrides) -> SystemConfig:
    """The paper's default evaluated configuration (Table 1), with
    simulation scaling applied.  Pass keyword overrides for any field."""
    try:
        config = SystemConfig(**overrides)
    except TypeError as exc:
        raise ConfigError(f"invalid config override: {exc}") from None
    config.validate()
    return config
