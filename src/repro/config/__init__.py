"""Configuration presets mirroring Table 1 of the paper."""

from repro.config.dram_configs import (
    DensityConfig,
    DramOrganization,
    DramTimingSpec,
    DDR3_1600,
    DDR4_1600,
    DENSITIES,
    density,
    FgrMode,
)
from repro.config.system_configs import (
    CoreConfig,
    CacheConfig,
    OsConfig,
    SystemConfig,
    default_system_config,
)

__all__ = [
    "DensityConfig",
    "DramOrganization",
    "DramTimingSpec",
    "DDR3_1600",
    "DDR4_1600",
    "DENSITIES",
    "density",
    "FgrMode",
    "CoreConfig",
    "CacheConfig",
    "OsConfig",
    "SystemConfig",
    "default_system_config",
]
