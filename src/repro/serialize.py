"""Canonical JSON serialization and content hashing.

Every configuration and result object in the run pipeline round-trips
through plain JSON-able dicts (``to_dict`` / ``from_dict``).  This module
provides the shared machinery:

:func:`to_jsonable`
    Recursively convert a value to JSON-able primitives, preferring an
    object's own ``to_dict``.  Raises :class:`~repro.errors.ConfigError`
    for values that cannot be represented (the clear failure the sweep
    cache needs instead of a bare ``TypeError`` deep inside ``json``).
:func:`canonical_json`
    Deterministic JSON text (sorted keys, no whitespace) — the hashing
    pre-image.
:func:`content_hash`
    Stable hex digest of the canonical JSON; used as the memo key and the
    on-disk cache filename.
:func:`dataclass_from_dict`
    Strict flat-dataclass reconstruction (unknown keys are a
    :class:`~repro.errors.ConfigError`, so stale cache entries fail
    loudly enough to be recomputed rather than mis-parsed).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json

from repro.errors import ConfigError

#: Length of the truncated sha256 hex digest used as a content key.  64
#: bits of collision resistance is ample for sweep-cache populations.
HASH_LEN = 16


def to_jsonable(value):
    """Convert *value* to JSON-able primitives (dict/list/str/num/bool/None).

    Objects exposing ``to_dict`` serialize themselves; enums serialize to
    their ``value``; other dataclasses are converted field-by-field.
    Anything else raises :class:`ConfigError`.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, enum.Enum):
        return value.value
    if hasattr(value, "to_dict"):
        return to_jsonable(value.to_dict())
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, dict):
        out = {}
        for key, v in value.items():
            if not isinstance(key, str):
                raise ConfigError(
                    f"cannot serialize dict key {key!r}: keys must be strings"
                )
            out[key] = to_jsonable(v)
        return out
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    raise ConfigError(
        f"value {value!r} of type {type(value).__name__} is not "
        "JSON-serializable; config overrides must be primitives, enums, "
        "or dataclasses with to_dict()"
    )


def canonical_json(value) -> str:
    """Deterministic JSON text for *value* (the content-hash pre-image)."""
    return json.dumps(
        to_jsonable(value), sort_keys=True, separators=(",", ":")
    )


def content_hash(value) -> str:
    """Stable content hash of *value*'s canonical JSON form."""
    digest = hashlib.sha256(canonical_json(value).encode("utf-8"))
    return digest.hexdigest()[:HASH_LEN]


def dataclass_from_dict(cls, data: dict):
    """Reconstruct a flat dataclass from *data*, rejecting unknown keys."""
    if not isinstance(data, dict):
        raise ConfigError(f"{cls.__name__}: expected a dict, got {type(data).__name__}")
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - names
    if unknown:
        raise ConfigError(
            f"{cls.__name__}: unknown field(s) {sorted(unknown)}"
        )
    return cls(**data)
