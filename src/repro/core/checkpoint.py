"""Checkpoint persistence: snapshots of a paused simulation on disk.

A checkpoint file carries everything needed to continue a run in a fresh
process::

    {"schema": <CHECKPOINT_SCHEMA>.<SPEC_SCHEMA>,
     "spec": <RunSpec.to_dict()>,       # the run being continued
     "cycle": <barrier cycle>,
     "state": <System.snapshot_state()>}

:func:`save_checkpoint`/:func:`load_checkpoint` handle single files (the
CLI's ``--checkpoint-dir``/``--resume`` flow); :class:`CheckpointStore`
is the content-addressed variant keyed by ``(prefix-spec hash, cycle)``
that :class:`~repro.experiments.runner.SweepRunner` uses to share one
warm-up checkpoint across every scenario of a warm-started sweep.

Writes are atomic (temp file + ``os.replace``) and reads are
corruption-tolerant, following :class:`~repro.experiments.cache.ResultCache`.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.core.runspec import SPEC_SCHEMA, RunSpec
from repro.errors import ConfigError, ReproError

#: Version tag for the snapshot payload layout.  Combined with
#: SPEC_SCHEMA so either bump retires existing checkpoints.
CHECKPOINT_SCHEMA = 1

SCHEMA_TAG = f"{CHECKPOINT_SCHEMA}.{SPEC_SCHEMA}"


def checkpoint_payload(spec: RunSpec, cycle: int, state: dict) -> dict:
    return {
        "schema": SCHEMA_TAG,
        "spec": spec.to_dict(),
        "cycle": int(cycle),
        "state": state,
    }


def save_checkpoint(
    path: str | os.PathLike, spec: RunSpec, cycle: int, state: dict
) -> pathlib.Path:
    """Atomically write one checkpoint file; returns its path."""
    path = pathlib.Path(path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(checkpoint_payload(spec, cycle, state), fh)
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return path


def load_checkpoint(path: str | os.PathLike) -> tuple[RunSpec, int, dict]:
    """Read a checkpoint file back as ``(spec, cycle, state)``.

    Raises :class:`ConfigError` on a missing, truncated or stale file —
    a resume must fail loudly, unlike a cache miss.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        raise ConfigError(f"cannot read checkpoint {path}: {exc}") from None
    if not isinstance(data, dict) or data.get("schema") != SCHEMA_TAG:
        raise ConfigError(
            f"checkpoint {path}: schema "
            f"{data.get('schema') if isinstance(data, dict) else '?'!r} "
            f"does not match {SCHEMA_TAG!r} (re-create it)"
        )
    try:
        spec = RunSpec.from_dict(data["spec"])
        cycle = int(data["cycle"])
        state = data["state"]
    except (KeyError, TypeError, ReproError) as exc:
        raise ConfigError(f"checkpoint {path}: malformed payload ({exc})") from None
    if not isinstance(state, dict):
        raise ConfigError(f"checkpoint {path}: state is not a dict")
    return spec, cycle, state


class CheckpointStore:
    """Content-addressed checkpoint store keyed by (spec hash, cycle).

    Layout mirrors the result cache::

        <root>/ckpt-v<SCHEMA_TAG>/<hh>/<spec-hash>-<cycle>.json

    ``get`` is corruption-tolerant (a bad entry is a miss, dropped and
    recomputed); ``put`` failures degrade to "no store".  Instances hold
    only a path, so they pickle across the sweep worker pool.
    """

    def __init__(self, root: str | os.PathLike | None = None):
        if root is None:
            from repro.experiments.cache import default_cache_dir

            root = default_cache_dir()
        self.root = pathlib.Path(root) / f"ckpt-v{SCHEMA_TAG}"
        self.hits = 0
        self.misses = 0

    def path(self, key: str, cycle: int) -> pathlib.Path:
        return self.root / key[:2] / f"{key}-{int(cycle)}.json"

    def get(self, key: str, cycle: int) -> dict | None:
        """The stored snapshot state for ``(key, cycle)``, or None."""
        path = self.path(key, cycle)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            if data.get("schema") != SCHEMA_TAG:
                raise ValueError(f"stale schema {data.get('schema')!r}")
            state = data["state"]
            if not isinstance(state, dict):
                raise ValueError("state is not a dict")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            self._discard(path)
            return None
        self.hits += 1
        return state

    def put(self, key: str, spec: RunSpec, cycle: int, state: dict) -> None:
        """Store a snapshot atomically; failures are non-fatal."""
        try:
            save_checkpoint(self.path(key, cycle), spec, cycle, state)
        except OSError:
            pass

    @staticmethod
    def _discard(path: pathlib.Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
