"""Top-level simulation API.

:func:`run_simulation` is the one-call entry point used by the examples and
the benchmark harness:

>>> from repro import run_simulation
>>> result = run_simulation(workload="WL-6", scenario="codesign")
>>> result.hmean_ipc > 0
True

Internally a run is a pure function of a serializable
:class:`~repro.core.runspec.RunSpec`: :func:`make_run_spec` resolves
workload/scenario/config into a spec, :func:`run_spec` executes it.  The
experiment layer builds specs in bulk and fans them out across processes.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

from repro.config.system_configs import SystemConfig, default_system_config
from repro.core.results import RunResult
from repro.core.runspec import RunSpec
from repro.core.system import SCENARIOS, Scenario, System, scenario as get_scenario
from repro.dram.timing import DramTiming
from repro.errors import ConfigError
from repro.telemetry.hub import Telemetry
from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.mixes import WORKLOAD_MIXES, workload_mix


def resolve_workload(
    workload: str | Sequence[BenchmarkSpec],
) -> tuple[str, list[BenchmarkSpec]]:
    """Accept either a Table 2 mix name or an explicit spec list."""
    if isinstance(workload, str):
        return workload, workload_mix(workload)
    specs = list(workload)
    if not specs:
        raise ConfigError("workload spec list must not be empty")
    return "custom", specs


def build_system(
    workload: str | Sequence[BenchmarkSpec] = "WL-6",
    scenario: str | Scenario = "codesign",
    config: Optional[SystemConfig] = None,
    banks_per_task: int | None = None,
    **config_overrides,
) -> System:
    """Construct (but do not run) a fully wired :class:`System`."""
    if config is None:
        config = default_system_config(**config_overrides)
    elif config_overrides:
        config = config.with_(**config_overrides)
        config.validate()
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    name, specs = resolve_workload(workload)
    return System(
        config, specs, scenario, workload_name=name, banks_per_task=banks_per_task
    )


def make_run_spec(
    workload: str | Sequence[BenchmarkSpec] = "WL-6",
    scenario: str | Scenario = "codesign",
    config: Optional[SystemConfig] = None,
    num_windows: float = 2.0,
    warmup_windows: float = 0.25,
    banks_per_task: int | None = None,
    sample_windows: int | None = None,
    **config_overrides,
) -> RunSpec:
    """Resolve workload/scenario/config into a serializable :class:`RunSpec`.

    The same arguments :func:`run_simulation` accepts; the returned spec
    fully determines the run (mix names are expanded to explicit
    :class:`BenchmarkSpec` tuples, the config is fully resolved).
    """
    if config is None:
        config = default_system_config(**config_overrides)
    elif config_overrides:
        config = config.with_(**config_overrides)
        config.validate()
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    name, specs = resolve_workload(workload)
    spec = RunSpec(
        workload_name=name,
        specs=tuple(specs),
        scenario=scenario,
        config=config,
        num_windows=num_windows,
        warmup_windows=warmup_windows,
        banks_per_task=banks_per_task,
        sample_windows=sample_windows,
    )
    spec.validate()
    return spec


def build_system_from_spec(
    spec: RunSpec, telemetry: Optional[Telemetry] = None
) -> System:
    """Construct (but do not run) the :class:`System` a spec describes.

    ``telemetry`` carries runtime-only event sinks (``--trace``); it is
    deliberately *not* part of the spec or its content hash because sinks
    observe a run without changing its result.
    """
    return System(
        spec.config,
        list(spec.specs),
        spec.scenario,
        workload_name=spec.workload_name,
        banks_per_task=spec.banks_per_task,
        telemetry=telemetry,
    )


def prefix_spec_of(spec: RunSpec) -> RunSpec:
    """The warm-up prefix spec of a warm-started run: the same run with
    ``warmup_scenario`` promoted to the scenario.  Every target scenario
    sharing a warm-up prefix maps to the same prefix spec — and therefore
    the same checkpoint-store key."""
    if spec.warmup_scenario is None:
        raise ConfigError("spec has no warmup_scenario")
    return spec.with_(
        scenario=get_scenario(spec.warmup_scenario),
        warmup_scenario=None,
        resume_from=None,
    )


def warm_start_state(spec: RunSpec, store=None) -> tuple[dict, str]:
    """The measurement-boundary snapshot of *spec*'s warm-up prefix.

    Runs the prefix (warm-up under ``spec.warmup_scenario``), capturing
    the machine state at the measurement boundary; with a
    :class:`~repro.core.checkpoint.CheckpointStore` the capture is reused
    across calls keyed by the prefix spec's content hash.  Returns
    ``(state, provenance)`` where provenance is ``"<hash>@<cycle>"``.

    The cold (store-miss) path takes the identical snapshot, so a
    warm-started result is bit-identical whether or not the store hit.
    """
    prefix = prefix_spec_of(spec)
    key = prefix.content_hash()
    cycle = int(
        DramTiming.from_config(prefix.config).trefw * prefix.warmup_windows
    )
    if store is not None:
        state = store.get(key, cycle)
        if state is not None:
            return state, f"{key}@{cycle}"
    captured: dict = {}

    def capture(at: int, state: dict) -> bool:
        captured["cycle"] = at
        captured["state"] = state
        return True  # halt: only the prefix is needed

    system = build_system_from_spec(prefix)
    out = system.run(
        num_windows=prefix.num_windows,
        warmup_windows=prefix.warmup_windows,
        sample_windows=prefix.sample_windows,
        checkpoint_sink=capture,
        checkpoint_measure_start=True,
    )
    assert out is None and captured["cycle"] == cycle
    if store is not None:
        store.put(key, prefix, cycle, captured["state"])
    return captured["state"], f"{key}@{cycle}"


def run_spec(
    spec: RunSpec,
    telemetry: Optional[Telemetry] = None,
    checkpoint_store=None,
) -> RunResult:
    """Execute one :class:`RunSpec` — a pure, deterministic function of the
    spec's content (the engine seeds every RNG from ``config.seed``).
    Attached event sinks observe the run but never change its result.

    A spec with ``warmup_scenario`` set is executed in two phases: the
    warm-up prefix runs (or is fetched from ``checkpoint_store``) under
    the warm-up scenario, and the measured interval resumes from its
    measurement-boundary snapshot under the target scenario."""
    if spec.warmup_scenario is not None:
        state, _ = warm_start_state(spec, checkpoint_store)
        system = build_system_from_spec(spec, telemetry=telemetry)
        return system.run(resume_state=state)
    system = build_system_from_spec(spec, telemetry=telemetry)
    return system.run(
        num_windows=spec.num_windows,
        warmup_windows=spec.warmup_windows,
        sample_windows=spec.sample_windows,
    )


def _run_simulation(
    workload: str | Sequence[BenchmarkSpec] = "WL-6",
    scenario: str | Scenario = "codesign",
    config: Optional[SystemConfig] = None,
    num_windows: float = 2.0,
    warmup_windows: float = 0.25,
    banks_per_task: int | None = None,
    sample_windows: int | None = None,
    telemetry: Optional[Telemetry] = None,
    **config_overrides,
) -> RunResult:
    """Simulate one workload under one scenario.

    Parameters
    ----------
    workload:
        A Table 2 mix name (``"WL-1"`` .. ``"WL-10"``) or an explicit list
        of :class:`BenchmarkSpec` (one task per entry).
    scenario:
        A scenario name from :data:`repro.core.system.SCENARIOS` —
        ``"all_bank"``, ``"per_bank"``, ``"codesign"``, ... — or a
        :class:`Scenario`.
    config:
        Optional :class:`SystemConfig`; keyword overrides (``density_gbit``,
        ``trefw_ps``, ``refresh_scale``, ...) are applied on top.
    num_windows / warmup_windows:
        Measured and warm-up duration in (scaled) retention windows.
    """
    return run_spec(
        make_run_spec(
            workload,
            scenario,
            config,
            num_windows=num_windows,
            warmup_windows=warmup_windows,
            banks_per_task=banks_per_task,
            sample_windows=sample_windows,
            **config_overrides,
        ),
        telemetry=telemetry,
    )


def run_simulation(*args, **kwargs) -> RunResult:
    """Deprecated alias of the one-call entry point.

    .. deprecated::
        Import :func:`repro.api.run` instead — :mod:`repro.api` is the
        single supported public surface.  This shim forwards unchanged
        and will be removed after a deprecation cycle.
    """
    warnings.warn(
        "repro.core.simulator.run_simulation() is deprecated; "
        "use repro.api.run() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_simulation(*args, **kwargs)


def sweep_specs(
    workloads: Sequence[str | Sequence[BenchmarkSpec]],
    scenarios: Sequence[str | Scenario],
    config: Optional[SystemConfig] = None,
    num_windows: float = 2.0,
    warmup_windows: float = 0.25,
    banks_per_task: int | None = None,
    sample_windows: int | None = None,
    warmup_scenario: str | None = None,
    **config_overrides,
) -> list[RunSpec]:
    """Decompose a sweep into its per-run jobs: one :class:`RunSpec` per
    ``workload x scenario`` cell, in row-major submission order.

    This is the job-decomposition step shared by the local sweep CLI,
    :func:`repro.api.sweep` and the sweep service: a sweep *is* its spec
    list, and every downstream layer (cache, dedup table, worker
    backends) keys on the individual specs' content hashes.  Duplicate
    cells (same content hash) are collapsed, keeping first position.
    """
    if not workloads:
        raise ConfigError("sweep_specs: workloads must not be empty")
    if not scenarios:
        raise ConfigError("sweep_specs: scenarios must not be empty")
    specs: list[RunSpec] = []
    seen: set[str] = set()
    for workload in workloads:
        for scenario in scenarios:
            spec = make_run_spec(
                workload,
                scenario,
                config,
                num_windows=num_windows,
                warmup_windows=warmup_windows,
                banks_per_task=banks_per_task,
                sample_windows=sample_windows,
                **config_overrides,
            )
            if warmup_scenario is not None:
                spec = spec.with_(warmup_scenario=warmup_scenario)
                spec.validate()
            key = spec.content_hash()
            if key not in seen:
                seen.add(key)
                specs.append(spec)
    return specs


def compare_scenarios(
    workload: str | Sequence[BenchmarkSpec],
    scenarios: Sequence[str],
    config: Optional[SystemConfig] = None,
    num_windows: float = 2.0,
    warmup_windows: float = 0.25,
    **config_overrides,
) -> dict[str, RunResult]:
    """Run the same workload under several scenarios (same seed/config)."""
    return {
        name: _run_simulation(
            workload,
            name,
            config,
            num_windows=num_windows,
            warmup_windows=warmup_windows,
            **config_overrides,
        )
        for name in scenarios
    }


def available_scenarios() -> list[str]:
    return sorted(SCENARIOS)


def available_workloads() -> list[str]:
    return list(WORKLOAD_MIXES)
