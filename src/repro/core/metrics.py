"""Performance metrics: IPC aggregation and comparison helpers.

The paper reports improvements in the **harmonic mean of per-task IPC**
relative to the all-bank-refresh baseline (Section 6.1), and average memory
access latency in memory cycles (Figure 11).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean; zero if any value is zero or the sequence is empty."""
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        return 0.0
    return len(values) / sum(1.0 / v for v in values)


def harmonic_mean_ipc(tasks: Iterable) -> float:
    """Harmonic mean of per-task IPC (the paper's workload metric)."""
    return harmonic_mean([t.stats.ipc for t in tasks])


def speedup(value: float, baseline: float) -> float:
    """Relative improvement of *value* over *baseline* (0.10 = +10%)."""
    if baseline <= 0:
        return 0.0
    return value / baseline - 1.0


def degradation(value: float, reference: float) -> float:
    """Relative loss of *value* versus *reference* (0.10 = -10%)."""
    if reference <= 0:
        return 0.0
    return 1.0 - value / reference


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        if v <= 0:
            return 0.0
        product *= v
    return product ** (1.0 / len(values))


def fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index over per-task allocations (1.0 = perfectly
    fair); used to check the eta_thresh fairness valve."""
    if not values:
        return 0.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 0.0
    return total * total / (len(values) * squares)
