"""Simulation core: event engine, full-system wiring, metrics, results."""

from repro.core.engine import Engine, Event

__all__ = ["Engine", "Event"]
