"""Discrete-event simulation engine.

Time is measured in integer **CPU cycles**.  Events are callbacks scheduled
at absolute times; ties are broken by insertion order, which makes every run
fully deterministic.

Hot-path design (see docs/PERFORMANCE.md):

* **Bucketed calendar queue with a head fast path.**  Entries at the same
  absolute time share one insertion-ordered list (a *bucket*).  The
  earliest bucket is pinned in ``_head`` and served without touching any
  other structure; later buckets live in ``_buckets`` (time -> list)
  ordered by a plain int min-heap of their times.  Heap comparisons are
  C-level int compares, the time-then-insertion-order tie-break falls out
  of list order, and the dominant schedule-soon/fire-next pattern never
  touches the dict or heap at all.  Invariants: every scheduled time has
  exactly one bucket; ``_times`` holds exactly the keys of ``_buckets``
  (no stale entries); ``_head_time`` is smaller than every heap time.
* **Fire-and-forget entries are bare callables.**  :meth:`Engine.schedule`
  stores the callback itself in the bucket — no per-event object at all —
  and returns ``None``.  The drain loop is a uniform ``entry()`` call.
  When a caller needs to cancel, it asks for a handle explicitly with
  :meth:`Engine.schedule_event`; arg-bearing callbacks are wrapped in a
  pooled :class:`Event` whose ``__call__`` does the bookkeeping.  This
  split keeps the dominant path allocation-free and branch-free.
* **Event free-list pool.**  Fired internal arg-carrier :class:`Event`
  wrappers are recycled through ``_pool`` instead of becoming garbage.
  Only events the engine creates for itself (arg-bearing
  :meth:`Engine.schedule`/:meth:`Engine.schedule_at`) are recyclable —
  no caller ever sees them, so reuse is invisible.  Handles returned by
  :meth:`Engine.schedule_event` are allocated fresh and never pooled
  (``Event.recyclable`` is False): cancelling after the event fired is
  a no-op forever, with no stale-handle hazard.  A pooled event may
  briefly keep its last ``arg`` alive; the pool is capped, so the
  retained set is small and bounded.
* **Liveness = ``fn is not None``** (for :class:`Event` entries; a bare
  callable entry is always live).  A pending event has its callback set;
  firing and cancelling both clear it.  ``pending_events`` and
  ``peek_time`` test this single field, so cancelled stubs can linger in
  buckets without skewing any observable until :meth:`Engine._compact`
  sweeps them out.  Compaction mutates ``_buckets``/``_times`` strictly
  in place, so it is safe to trigger from a callback while a run loop
  holds local aliases to both.
* **Batched counters.**  The run loops count processed events per bucket
  and flush once on exit, so ``events_processed`` is only guaranteed
  current between :meth:`run`/:meth:`run_until` calls (``step`` updates
  it per event).

The engine is not re-entrant: callbacks must not call :meth:`run`,
:meth:`run_until` or :meth:`step` (rule RPR008 enforces this for library
code).  If a callback raises, the exception propagates; the remainder of
the partially drained bucket is kept and resumes exactly where it
stopped on the next run call.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

from repro.errors import SimulationError

#: Cancelled stubs are cheap; only compact once they outnumber the live
#: events and are numerous enough for the O(n) sweep to pay for itself.
_COMPACT_MIN = 64

#: Free-list cap — enough to absorb the steady-state event population of a
#: full-system run without hoarding memory after bursts.
_POOL_MAX = 4096


class Event:
    """A scheduled callback with a cancellable handle and/or an argument.

    Only the engine constructs these (via :meth:`Engine.schedule_event`
    or an arg-bearing :meth:`Engine.schedule`); buckets store either an
    Event or the bare callback itself, and the drain loop just calls the
    entry — :meth:`__call__` unwraps and does the pool bookkeeping.

    Events handed out by :meth:`Engine.schedule_event` are never recycled
    (``recyclable`` is False), so a retained handle stays a safe no-op
    forever after the event fires or is cancelled.  Only the engine's
    internal arg-carrier events go through the free-list pool.
    """

    __slots__ = ("engine", "fn", "arg", "cancelled", "recyclable")

    def __init__(
        self,
        fn: Optional[Callable],
        arg: Any,
        engine: "Engine",
        recyclable: bool = True,
    ):
        self.engine = engine
        self.fn = fn
        self.arg = arg
        self.cancelled = False
        self.recyclable = recyclable

    def __call__(self) -> None:
        """Fire (run-loop internal).  The run loops count every drained
        entry optimistically; a cancelled stub undoes its own count."""
        fn = self.fn
        if fn is None:
            engine = self.engine
            engine._events_processed -= 1
            if self.cancelled:
                self.cancelled = False
                engine._cancelled -= 1
                if self.recyclable:
                    pool = engine._pool
                    if len(pool) < _POOL_MAX:
                        pool.append(self)
            return
        arg = self.arg
        self.fn = None
        if self.recyclable:
            pool = self.engine._pool
            if len(pool) < _POOL_MAX:
                pool.append(self)
        if arg is None:
            fn()
        else:
            self.arg = None
            fn(arg)

    def cancel(self) -> None:
        """Prevent this event's callback from running.

        Safe to call repeatedly and after the event fired (both no-ops).
        Handles are never recycled, so a late cancel can never affect a
        different, later-scheduled event.
        """
        if self.fn is None:
            return
        self.fn = None
        self.arg = None
        self.cancelled = True
        engine = self.engine
        cancelled = engine._cancelled + 1
        engine._cancelled = cancelled
        if cancelled > _COMPACT_MIN and cancelled * 2 > engine._queued_entries():
            engine._compact()

    def __repr__(self) -> str:
        if self.cancelled:
            state = "cancelled"
        else:
            state = "pending" if self.fn is not None else "fired"
        return f"Event({state})"


class Engine:
    """A minimal, deterministic event-driven simulator core.

    >>> eng = Engine()
    >>> hits = []
    >>> eng.schedule(10, lambda: hits.append(eng.now))
    >>> eng.run_until(100)
    >>> hits
    [10]
    """

    __slots__ = (
        "now",
        "_head_time",
        "_head",
        "_buckets",
        "_times",
        "_events_processed",
        "_cancelled",
        "_pool",
        "_run_list",
        "_run_index",
        "_run_time",
        "_spare",
        "_profiler",
    )

    def __init__(self):
        self.now: int = 0
        # Earliest bucket, pinned outside the dict/heap (None = no head).
        self._head_time: Optional[int] = None
        self._head: list[Callable] = []
        # All later buckets: time -> entries in insertion order, with an
        # int min-heap over exactly those times.
        self._buckets: dict[int, list[Callable]] = {}
        self._times: list[int] = []
        self._events_processed: int = 0
        self._cancelled: int = 0
        self._pool: list[Event] = []
        # Bucket currently being drained (already detached) + resume index
        # and its time (maintained by step() and by an exception unwind;
        # the run loops resume from and reset them).
        self._run_list: Optional[list[Callable]] = None
        self._run_index: int = 0
        self._run_time: int = 0
        self._spare: Optional[list[Callable]] = None
        # Dispatch profiler (repro.obs.profiler) or None.  The run loops
        # test this once per call, so the unprofiled hot path pays a
        # single attribute read.
        self._profiler = None

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: int, fn: Callable, arg: Any = None) -> None:
        """Schedule *fn* to run *delay* (integer) cycles from now.

        Fire-and-forget: no handle is returned.  Use
        :meth:`schedule_event` when the caller needs to cancel.  With
        *arg*, the callback fires as ``fn(arg)`` — the hot paths use this
        to pass a bound method plus its argument instead of allocating a
        closure per event.
        """
        # Mirrors _insert, inlined: this is the hottest function in the
        # simulator and a second call frame is measurable.
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        if time.__class__ is not int:
            # Match schedule_at's int() coercion: float delays must not
            # mint float bucket keys (5.000001 != 5 would split a bucket
            # and change ordering between otherwise identical runs).  The
            # class check is ~5x cheaper than an unconditional int() on
            # this, the hottest line in the simulator.
            time = int(time)
        if arg is not None:
            pool = self._pool
            if pool:
                event = pool.pop()
                event.fn = fn
                event.arg = arg
            else:
                event = Event(fn, arg, self)
            fn = event
        head_time = self._head_time
        if head_time is None:
            times = self._times
            if not times or time < times[0]:
                self._head_time = time  # repro: noqa[RPR011] head cache; snapshot folds it into _buckets
                self._head.append(fn)
            else:
                bucket = self._buckets.get(time)
                if bucket is None:
                    self._buckets[time] = [fn]
                    heappush(times, time)  # repro: noqa[RPR004] int keys are totally ordered; ties merge into one bucket
                else:
                    bucket.append(fn)
        elif time == head_time:
            self._head.append(fn)
        elif time > head_time:
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = [fn]
                heappush(self._times, time)  # repro: noqa[RPR004] int keys are totally ordered; ties merge into one bucket
            else:
                bucket.append(fn)
        else:
            # New earliest time: demote the head bucket into the calendar.
            self._buckets[head_time] = self._head
            heappush(self._times, head_time)  # repro: noqa[RPR004] int keys are totally ordered; ties merge into one bucket
            self._head = [fn]  # repro: noqa[RPR011] head cache; snapshot folds it into _buckets
            self._head_time = time

    def schedule_event(self, delay: int, fn: Callable, arg: Any = None) -> Event:
        """Like :meth:`schedule`, but returns a cancellable handle.

        The handle is a fresh, never-recycled :class:`Event`, so holding
        it past the fire time and cancelling late is always a safe no-op.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(fn, arg, self, recyclable=False)
        self._insert(self.now + int(delay), event)
        return event

    def schedule_at(self, time: int, fn: Callable, arg: Any = None) -> None:
        """Schedule *fn* to run at absolute *time* (fire-and-forget)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        if time.__class__ is not int:
            # Same float-key guard as schedule(); see the comment there.
            time = int(time)
        if arg is not None:
            pool = self._pool
            if pool:
                event = pool.pop()
                event.fn = fn
                event.arg = arg
            else:
                event = Event(fn, arg, self)
            fn = event
        # Mirrors _insert, inlined: schedule_at is the controller hot
        # path's scheduling call and a second frame is measurable.
        head_time = self._head_time
        if head_time is None:
            times = self._times
            if not times or time < times[0]:
                self._head_time = time
                self._head.append(fn)
            else:
                bucket = self._buckets.get(time)
                if bucket is None:
                    self._buckets[time] = [fn]
                    heappush(times, time)  # repro: noqa[RPR004] int keys are totally ordered; ties merge into one bucket
                else:
                    bucket.append(fn)
        elif time == head_time:
            self._head.append(fn)
        elif time > head_time:
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = [fn]
                heappush(self._times, time)  # repro: noqa[RPR004] int keys are totally ordered; ties merge into one bucket
            else:
                bucket.append(fn)
        else:
            self._buckets[head_time] = self._head
            heappush(self._times, head_time)  # repro: noqa[RPR004] int keys are totally ordered; ties merge into one bucket
            self._head = [fn]
            self._head_time = time

    def _insert(self, time: int, entry: Callable) -> None:
        """Append *entry* to the bucket for absolute *time* (cold mirror
        of the install branch inlined in :meth:`schedule`)."""
        head_time = self._head_time
        if head_time is None:
            times = self._times
            if not times or time < times[0]:
                self._head_time = time
                self._head.append(entry)
            else:
                bucket = self._buckets.get(time)
                if bucket is None:
                    self._buckets[time] = [entry]
                    heappush(times, time)  # repro: noqa[RPR004] int keys are totally ordered; ties merge into one bucket
                else:
                    bucket.append(entry)
        elif time == head_time:
            self._head.append(entry)
        elif time > head_time:
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = [entry]
                heappush(self._times, time)  # repro: noqa[RPR004] int keys are totally ordered; ties merge into one bucket
            else:
                bucket.append(entry)
        else:
            self._buckets[head_time] = self._head
            heappush(self._times, head_time)  # repro: noqa[RPR004] int keys are totally ordered; ties merge into one bucket
            self._head = [entry]
            self._head_time = time

    # -- execution ----------------------------------------------------------

    def _take_next_bucket(self) -> Optional[list[Callable]]:
        """Detach the earliest bucket for draining (head first, then heap)."""
        head_time = self._head_time
        if head_time is not None:
            bucket = self._head
            self._head_time = None
            spare = self._spare
            if spare is None:
                self._head = []
            else:
                self._head = spare
                self._spare = None  # repro: noqa[RPR011] recycled list allocation, carries no events
            self._run_time = head_time  # repro: noqa[RPR011] mid-drain scratch; snapshot refuses while a bucket is draining
            return bucket
        if self._times:
            time = heappop(self._times)
            self._run_time = time
            return self._buckets.pop(time)
        return None

    def _retire_run_list(self) -> None:
        """Recycle a fully drained bucket (cold path: step/peek_time).

        Fired Events pooled themselves in ``__call__``; only cancelled
        stubs that were never drained still need reclaiming here."""
        run_list = self._run_list
        pool = self._pool
        for entry in run_list:
            if entry.__class__ is Event and entry.cancelled:
                entry.cancelled = False
                self._cancelled -= 1  # repro: noqa[RPR011] stub bookkeeping; snapshot drops stubs, restore resets to 0
                if entry.recyclable and len(pool) < _POOL_MAX:
                    pool.append(entry)
        run_list.clear()
        if self._spare is None:
            self._spare = run_list
        self._run_list = None  # repro: noqa[RPR011] mid-drain scratch; snapshot refuses while a bucket is draining
        self._run_index = 0  # repro: noqa[RPR011] mid-drain scratch; snapshot refuses while a bucket is draining

    def _drop_dead_bucket(self, bucket: list[Callable]) -> None:
        """Reclaim a bucket that contains only cancelled stubs."""
        pool = self._pool
        for entry in bucket:
            entry.cancelled = False
            self._cancelled -= 1
            if entry.recyclable and len(pool) < _POOL_MAX:
                pool.append(entry)
        bucket.clear()

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        run_list = self._run_list
        if run_list is not None:
            for entry in run_list[self._run_index:]:
                if entry.__class__ is not Event or entry.fn is not None:
                    return self._run_time
            self._retire_run_list()
        if self._head_time is not None:
            head = self._head
            if any(e.__class__ is not Event or e.fn is not None for e in head):
                return self._head_time
            self._head_time = None
            self._drop_dead_bucket(head)
        times = self._times
        buckets = self._buckets
        while times:
            time = times[0]
            bucket = buckets[time]
            if any(e.__class__ is not Event or e.fn is not None for e in bucket):
                return time
            heappop(times)
            del buckets[time]
            self._drop_dead_bucket(bucket)
        return None

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when no events remain."""
        pool = self._pool
        while True:
            run_list = self._run_list
            if run_list is None:
                run_list = self._take_next_bucket()
                if run_list is None:
                    return False
                self._run_list = run_list
                self._run_index = 0
            index = self._run_index
            length = len(run_list)
            time = self._run_time
            while index < length:
                entry = run_list[index]
                index += 1
                if entry.__class__ is Event:
                    fn = entry.fn
                    if fn is None:
                        # Cancelled stub: reclaim in place.
                        if entry.cancelled:
                            entry.cancelled = False
                            self._cancelled -= 1
                            if entry.recyclable and len(pool) < _POOL_MAX:
                                pool.append(entry)
                        continue
                    self._run_index = index
                    self.now = time
                    self._events_processed += 1
                    arg = entry.arg
                    entry.fn = None
                    if entry.recyclable and len(pool) < _POOL_MAX:
                        pool.append(entry)
                    if arg is None:
                        fn()
                    else:
                        entry.arg = None
                        fn(arg)
                    return True
                self._run_index = index
                self.now = time
                self._events_processed += 1
                entry()
                return True
            self._run_index = index
            self._retire_run_list()

    def set_profiler(self, profiler) -> None:
        """Install (or with ``None`` remove) a dispatch profiler.

        The profiler must expose ``clock()`` (a monotonic float clock,
        injected so this module never reads wall time itself) and
        ``record(fn, elapsed)``; see
        :class:`repro.obs.profiler.EngineProfiler`.  While installed,
        :meth:`run` and :meth:`run_until` divert to an instrumented
        drain loop; event order, times and counts are identical.
        """
        self._profiler = profiler  # repro: noqa[RPR011] runtime observer, not simulator state; reattached by the host

    def _run_profiled(self, end_time: Optional[int]) -> None:
        """Instrumented drain loop used while a profiler is installed.

        Mirrors :meth:`run` / :meth:`run_until` (``end_time=None`` means
        drain everything) but times every callback through the injected
        profiler clock.  Slower than the plain loops (per-entry state
        writes, two clock reads per event) — only ever active for
        explicitly profiled runs.
        """
        profiler = self._profiler
        clock = profiler.clock
        record = profiler.record
        pool = self._pool
        while True:
            next_time = self.peek_time()
            if next_time is None or (end_time is not None and next_time > end_time):
                break
            run_list = self._run_list
            if run_list is None:
                run_list = self._take_next_bucket()
                self._run_list = run_list
                self._run_index = 0
            index = self._run_index
            n = len(run_list)
            time = self._run_time
            while index < n:
                entry = run_list[index]
                index += 1
                # Keep the resume state exact per entry so an exception
                # unwinds to the same place the plain loops would.
                self._run_index = index
                if entry.__class__ is Event:
                    fn = entry.fn
                    if fn is None:
                        if entry.cancelled:
                            entry.cancelled = False
                            self._cancelled -= 1
                            if entry.recyclable and len(pool) < _POOL_MAX:
                                pool.append(entry)
                        continue
                    self.now = time
                    self._events_processed += 1
                    arg = entry.arg
                    entry.fn = None
                    if entry.recyclable and len(pool) < _POOL_MAX:
                        pool.append(entry)
                    start = clock()
                    if arg is None:
                        fn()
                    else:
                        entry.arg = None
                        fn(arg)
                    record(fn, clock() - start)
                else:
                    self.now = time
                    self._events_processed += 1
                    start = clock()
                    entry()
                    record(entry, clock() - start)
            self._retire_run_list()
        if end_time is not None and end_time > self.now:
            self.now = end_time

    def run_until(self, end_time: int) -> None:
        """Run every event scheduled strictly before or at *end_time*, then
        advance the clock to *end_time*."""
        if self._profiler is not None:
            self._run_profiled(end_time)
            return
        buckets = self._buckets
        times = self._times
        run_list = self._run_list
        index = self._run_index
        if run_list is not None:
            if index < len(run_list) and self._run_time > end_time:
                # A bucket detached by step() extends past the horizon;
                # leave it pending.
                if end_time > self.now:
                    self.now = end_time
                return
            self._run_list = None
            self._run_index = 0
        else:
            run_list = []
        n = len(run_list)
        processed = n - index
        pool = self._pool
        try:
            while True:
                while index < n:
                    entry = run_list[index]
                    index += 1
                    # Inlined Event.__call__ (the arg-carrier unwrap is
                    # the hottest indirection in a full-system run; the
                    # bookkeeping order — pool before fire — must match
                    # Event.__call__ exactly so exception unwinds agree).
                    if entry.__class__ is Event:
                        fn = entry.fn
                        if fn is None:
                            processed -= 1
                            if entry.cancelled:
                                entry.cancelled = False
                                self._cancelled -= 1
                                if entry.recyclable and len(pool) < _POOL_MAX:
                                    pool.append(entry)
                            continue
                        arg = entry.arg
                        entry.fn = None
                        if entry.recyclable and len(pool) < _POOL_MAX:
                            pool.append(entry)
                        if arg is None:
                            fn()
                        else:
                            entry.arg = None
                            fn(arg)
                    else:
                        entry()
                run_list.clear()
                index = 0
                n = 0
                head_time = self._head_time
                if head_time is not None:
                    if head_time > end_time:
                        break
                    self._head_time = None
                    nxt = self._head
                    self._head = run_list
                    run_list = nxt
                    self.now = head_time
                elif times and times[0] <= end_time:
                    time = heappop(times)
                    self._spare = run_list
                    run_list = buckets.pop(time)
                    self.now = time
                else:
                    break
                n = len(run_list)
                processed += n
        finally:
            self._events_processed += processed - (n - index)
            if index < n:
                self._run_list = run_list
                self._run_index = index
                self._run_time = self.now
        if end_time > self.now:
            self.now = end_time

    def run(self) -> None:
        """Run until the event queue drains."""
        if self._profiler is not None:
            self._run_profiled(None)
            return
        buckets = self._buckets
        times = self._times
        run_list = self._run_list
        index = self._run_index
        if run_list is None:
            run_list = []
        else:
            self._run_list = None
            self._run_index = 0
        n = len(run_list)
        processed = n - index
        pool = self._pool
        try:
            while True:
                while index < n:
                    entry = run_list[index]
                    index += 1
                    # Inlined Event.__call__; see run_until for why the
                    # bookkeeping order must match it exactly.
                    if entry.__class__ is Event:
                        fn = entry.fn
                        if fn is None:
                            processed -= 1
                            if entry.cancelled:
                                entry.cancelled = False
                                self._cancelled -= 1
                                if entry.recyclable and len(pool) < _POOL_MAX:
                                    pool.append(entry)
                            continue
                        arg = entry.arg
                        entry.fn = None
                        if entry.recyclable and len(pool) < _POOL_MAX:
                            pool.append(entry)
                        if arg is None:
                            fn()
                        else:
                            entry.arg = None
                            fn(arg)
                    else:
                        entry()
                run_list.clear()
                index = 0
                n = 0
                head_time = self._head_time
                if head_time is not None:
                    self._head_time = None
                    nxt = self._head
                    self._head = run_list
                    run_list = nxt
                    self.now = head_time
                elif times:
                    time = heappop(times)
                    self._spare = run_list
                    run_list = buckets.pop(time)
                    self.now = time
                else:
                    break
                n = len(run_list)
                processed += n
        finally:
            self._events_processed += processed - (n - index)
            if index < n:
                self._run_list = run_list
                self._run_index = index
                self._run_time = self.now

    # -- checkpoint/restore -------------------------------------------------

    def snapshot_state(self, encode_entry: Callable) -> dict:
        """Serialize the clock, counters and every live queued entry.

        Callables cannot serialize, so each entry is passed through
        *encode_entry(fn, arg)* which must return a JSON-able descriptor
        (the system layer maps bound methods to (owner, method, arg)
        descriptors).  Bucket order — and therefore the documented
        same-cycle insertion-order tie-break — is preserved exactly.
        Cancelled stubs are dropped; cancellable handles returned by
        :meth:`schedule_event` cannot be captured (the handle's identity
        would not survive the round trip), so *encode_entry* should
        reject anything it does not recognise.

        Only legal between run calls (never from inside a callback).
        """
        if self._run_list is not None:
            raise SimulationError("cannot snapshot a partially drained bucket")
        pairs: list[tuple[int, list[Callable]]] = []
        if self._head_time is not None:
            pairs.append((self._head_time, self._head))
        for time in sorted(self._times):
            pairs.append((time, self._buckets[time]))
        pairs.sort(key=lambda item: item[0])
        buckets = []
        for time, bucket in pairs:
            entries = []
            for entry in bucket:
                if entry.__class__ is Event:
                    if entry.fn is None:
                        continue  # cancelled/fired stub
                    entries.append(encode_entry(entry.fn, entry.arg))
                else:
                    entries.append(encode_entry(entry, None))
            if entries:
                buckets.append([time, entries])
        return {
            "now": self.now,
            "_events_processed": self._events_processed,
            "_buckets": buckets,
        }

    def restore_state(self, state: dict, decode_entry: Callable) -> None:
        """Rebuild the queue from a :meth:`snapshot_state` payload.

        *decode_entry(descriptor)* must return ``(fn, arg)`` — or ``None``
        to drop the entry (used when restoring into a system whose
        refresh policy differs from the snapshot's).  Entries are
        re-inserted in snapshot order, so same-cycle ordering is
        bit-identical to the captured run.
        """
        if self._run_list is not None:
            raise SimulationError("cannot restore over a partially drained bucket")
        self.clear_pending()
        self.now = int(state["now"])
        self._events_processed = int(state["_events_processed"])
        for time, entries in state["_buckets"]:
            time = int(time)
            if time < self.now:
                raise SimulationError(
                    f"snapshot bucket at t={time} precedes its clock {self.now}"
                )
            for descriptor in entries:
                decoded = decode_entry(descriptor)
                if decoded is None:
                    continue
                fn, arg = decoded
                if arg is not None:
                    fn = Event(fn, arg, self)
                self._insert(time, fn)

    # -- maintenance --------------------------------------------------------

    def _compact(self) -> None:
        """Sweep cancelled stubs out and rebuild the time heap in place."""
        pool = self._pool
        reclaimed = 0
        if self._head_time is not None:
            head = self._head
            live = [
                e for e in head
                if e.__class__ is not Event or not e.cancelled
            ]
            if len(live) != len(head):
                for entry in head:
                    if entry.__class__ is Event and entry.cancelled:
                        entry.cancelled = False
                        reclaimed += 1
                        if entry.recyclable and len(pool) < _POOL_MAX:
                            pool.append(entry)
                head[:] = live
                if not live:
                    self._head_time = None
        buckets = self._buckets
        for time in list(buckets):
            bucket = buckets[time]
            live = [
                e for e in bucket
                if e.__class__ is not Event or not e.cancelled
            ]
            if len(live) == len(bucket):
                continue
            for entry in bucket:
                if entry.__class__ is Event and entry.cancelled:
                    entry.cancelled = False
                    reclaimed += 1
                    if entry.recyclable and len(pool) < _POOL_MAX:
                        pool.append(entry)
            if live:
                buckets[time] = live
            else:
                del buckets[time]
        # Rebuild the heap *in place*: run()/run_until() hold a local alias
        # to this exact list (and to _buckets), and cancel() can trigger a
        # compaction from inside a callback mid-run.  Rebinding self._times
        # would desynchronise the alias from the bucket dict.
        times = self._times
        times[:] = buckets
        heapify(times)
        # Stubs in a detached bucket mid-drain stay counted until their
        # run list retires.
        self._cancelled -= reclaimed

    def clear_pending(self) -> int:
        """Drop every queued event (test/driver helper); returns the number
        of live events discarded.  The clock and counters are untouched."""
        dropped = self.pending_events
        self._head_time = None
        self._head.clear()
        self._buckets.clear()
        self._times.clear()
        self._run_list = None
        self._run_index = 0
        self._cancelled = 0
        return dropped

    # -- introspection ------------------------------------------------------

    def _queued_entries(self) -> int:
        """Total queued entries, cancelled stubs included.

        O(number of buckets), not O(number of entries) — this is the
        cheap denominator for the compaction trigger (compact once stubs
        exceed half the queue)."""
        count = len(self._head)
        for bucket in self._buckets.values():
            count += len(bucket)
        run_list = self._run_list
        if run_list is not None:
            count += len(run_list) - self._run_index
        return count

    @property
    def events_processed(self) -> int:
        """Total number of (non-cancelled) events executed so far.

        Updated in batches by :meth:`run`/:meth:`run_until`; only
        guaranteed current between run calls."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events currently queued.

        Computed on demand — the hot paths keep no counter."""
        count = 0
        run_list = self._run_list
        if run_list is not None:
            count += sum(
                1 for e in run_list[self._run_index:]
                if e.__class__ is not Event or e.fn is not None
            )
        count += sum(
            1 for e in self._head
            if e.__class__ is not Event or e.fn is not None
        )
        for bucket in self._buckets.values():
            count += sum(
                1 for e in bucket
                if e.__class__ is not Event or e.fn is not None
            )
        return count

    def __repr__(self) -> str:
        return f"Engine(now={self.now}, pending={self.pending_events})"
