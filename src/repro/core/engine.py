"""Discrete-event simulation engine.

Time is measured in integer **CPU cycles**.  Events are callbacks scheduled
at absolute times; ties are broken by insertion order, which makes every run
fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback.  Returned by :meth:`Engine.schedule` so the
    caller can cancel it with :meth:`Event.cancel`."""

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event's callback from running."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, seq={self.seq}, {state})"


class Engine:
    """A minimal, deterministic event-driven simulator core.

    >>> eng = Engine()
    >>> hits = []
    >>> _ = eng.schedule(10, lambda: hits.append(eng.now))
    >>> eng.run_until(100)
    >>> hits
    [10]
    """

    def __init__(self):
        self.now: int = 0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._events_processed: int = 0

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: int, fn: Callable[[], None]) -> Event:
        """Schedule *fn* to run *delay* cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn)

    def schedule_at(self, time: int, fn: Callable[[], None]) -> Event:
        """Schedule *fn* to run at absolute *time*."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        event = Event(int(time), self._seq, fn)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    # -- execution ----------------------------------------------------------

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when no events remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.fn()
            return True
        return False

    def run_until(self, end_time: int) -> None:
        """Run every event scheduled strictly before or at *end_time*, then
        advance the clock to *end_time*."""
        heap = self._heap
        while heap:
            event = heap[0]
            if event.time > end_time:
                break
            heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.fn()
        if end_time > self.now:
            self.now = end_time

    def run(self) -> None:
        """Run until the event queue drains."""
        while self.step():
            pass

    @property
    def events_processed(self) -> int:
        """Total number of (non-cancelled) events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events currently queued (including cancelled stubs)."""
        return len(self._heap)

    def __repr__(self) -> str:
        return f"Engine(now={self.now}, pending={self.pending_events})"
