"""First-class, serializable description of one simulation run.

A :class:`RunSpec` captures *everything* a run depends on — the resolved
task list, the full scenario, the fully resolved :class:`SystemConfig`
and the measurement windows — so that executing a run is a pure function
``RunSpec -> RunResult`` (see :func:`repro.core.simulator.run_spec`).

Because the spec is pure data it can be:

* hashed — :meth:`RunSpec.content_hash` is the key for both the
  in-memory memo and the on-disk result cache;
* shipped across process boundaries — the parallel
  :class:`~repro.experiments.runner.SweepRunner` fans specs out over a
  ``ProcessPoolExecutor``;
* stored and replayed — ``to_dict``/``from_dict`` round-trip through
  JSON exactly.

Workload mix names are resolved to explicit :class:`BenchmarkSpec` tuples
at construction time, so a cached result can never silently alias a
different task list (e.g. after a Table 2 mix definition changes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config.system_configs import SystemConfig
from repro.core.system import Scenario
from repro.errors import ConfigError
from repro.workloads.benchmark import BenchmarkSpec

#: Version tag for the serialized spec layout.  Bump on field changes so
#: stale cache entries are recomputed instead of mis-parsed.
SPEC_SCHEMA = 4


@dataclass(frozen=True)
class RunSpec:
    """Pure-data description of one simulation run."""

    workload_name: str
    specs: tuple[BenchmarkSpec, ...]
    scenario: Scenario
    config: SystemConfig
    num_windows: float = 2.0
    warmup_windows: float = 0.25
    banks_per_task: int | None = None
    #: Timeseries samples per retention window attached to the result
    #: (None = no sampling).  Part of the spec — and hence the content
    #: hash — because it changes what the result contains.
    sample_windows: int | None = None
    #: Warm-start: run the warmup phase under this scenario, checkpoint
    #: at the measurement boundary, and resume the measured interval
    #: under ``scenario``.  Sweeps over scenarios that share the same
    #: ``warmup_scenario`` reuse one cached warmup checkpoint.
    warmup_scenario: str | None = None
    #: Provenance of a resumed run (``"<prefix-hash>@<cycle>"``); set by
    #: the resume pipeline so a continuation never aliases a cold run in
    #: the result cache.
    resume_from: str | None = None

    def validate(self) -> None:
        if not self.specs:
            raise ConfigError("RunSpec: task spec list must not be empty")
        for spec in self.specs:
            spec.validate()
        self.config.validate()
        if self.num_windows <= 0:
            raise ConfigError("RunSpec: num_windows must be positive")
        if self.warmup_windows < 0:
            raise ConfigError("RunSpec: warmup_windows cannot be negative")
        if self.banks_per_task is not None and self.banks_per_task < 1:
            raise ConfigError("RunSpec: banks_per_task must be >= 1")
        if self.sample_windows is not None and self.sample_windows < 1:
            raise ConfigError("RunSpec: sample_windows must be >= 1")
        if self.warmup_scenario is not None:
            from repro.core.system import SCENARIOS

            if self.warmup_scenario not in SCENARIOS:
                raise ConfigError(
                    f"RunSpec: unknown warmup_scenario "
                    f"{self.warmup_scenario!r}; known: {sorted(SCENARIOS)}"
                )

    def with_(self, **kwargs) -> "RunSpec":
        """Return a copy with the given fields replaced."""
        try:
            return replace(self, **kwargs)
        except TypeError as exc:
            raise ConfigError(f"invalid RunSpec override: {exc}") from None

    def to_dict(self) -> dict:
        # The warm-start fields are emitted only when set, so the content
        # hash of every pre-existing spec (and its cached result) is
        # unchanged by their introduction.
        data = {
            "workload_name": self.workload_name,
            "specs": [s.to_dict() for s in self.specs],
            "scenario": self.scenario.to_dict(),
            "config": self.config.to_dict(),
            "num_windows": self.num_windows,
            "warmup_windows": self.warmup_windows,
            "banks_per_task": self.banks_per_task,
            "sample_windows": self.sample_windows,
        }
        if self.warmup_scenario is not None:
            data["warmup_scenario"] = self.warmup_scenario
        if self.resume_from is not None:
            data["resume_from"] = self.resume_from
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        if not isinstance(data, dict):
            raise ConfigError(
                f"RunSpec: expected a dict, got {type(data).__name__}"
            )
        data = dict(data)
        try:
            specs = tuple(BenchmarkSpec.from_dict(s) for s in data.pop("specs"))
            scenario = Scenario.from_dict(data.pop("scenario"))
            config = SystemConfig.from_dict(data.pop("config"))
        except KeyError as exc:
            raise ConfigError(f"RunSpec: missing field {exc}") from None
        except TypeError as exc:
            raise ConfigError(f"RunSpec: malformed payload ({exc})") from None
        from repro.serialize import dataclass_from_dict

        spec = dataclass_from_dict(
            cls, {**data, "specs": specs, "scenario": scenario, "config": config}
        )
        spec.validate()
        return spec

    def content_hash(self) -> str:
        """Stable content hash over the complete spec.

        Raises :class:`ConfigError` when any embedded value is not
        serializable (rather than a bare ``TypeError`` from ``json``).
        """
        from repro.serialize import content_hash

        return content_hash(self.to_dict())
