"""Schedule tracing: who ran on which core during which refresh stretch.

Attach a :class:`ScheduleTracer` to a built (not yet run) system and it
records every quantum dispatch together with the bank the refresh
scheduler is working on — the direct visual of the paper's Figure 9:

>>> from repro.core.simulator import build_system
>>> from repro.core.trace import ScheduleTracer
>>> system = build_system("WL-6", "codesign", refresh_scale=512)
>>> tracer = ScheduleTracer(system)
>>> _ = system.run(num_windows=1.0)
>>> print(tracer.timeline())  # doctest: +SKIP

The tracer is a consumer of the structured event stream: it subscribes a
:class:`~repro.telemetry.sinks.CallbackSink` to the system's
:class:`~repro.telemetry.hub.Telemetry` hub and keeps only the
:class:`~repro.telemetry.events.SchedulerPickEvent` records (which the
system enriches with the refresh schedule's view of each quantum).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.telemetry.events import SchedulerPickEvent, TraceEvent
from repro.telemetry.sinks import CallbackSink


@dataclass(frozen=True)
class PickRecord:
    """One quantum dispatch decision."""

    time: int
    core_id: int
    task_id: Optional[int]
    task_name: str
    refresh_bank: Optional[int]  # None when the schedule is unpredictable
    conflict: bool  # picked task has data in the refreshed bank


class ScheduleTracer:
    """Records (quantum, core, task, refreshed bank) tuples for a system."""

    def __init__(self, system):
        self.system = system
        self.records: list[PickRecord] = []
        self._sink = system.telemetry.subscribe(CallbackSink(self._observe))

    def detach(self) -> None:
        """Stop recording (unsubscribes from the event stream)."""
        self.system.telemetry.unsubscribe(self._sink)

    def _observe(self, event: TraceEvent) -> None:
        if not isinstance(event, SchedulerPickEvent):
            return
        self.records.append(
            PickRecord(
                time=event.time,
                core_id=event.core_id,
                task_id=event.task_id,
                task_name=event.task_name,
                refresh_bank=event.refresh_bank,
                conflict=event.conflict,
            )
        )

    # -- analysis ----------------------------------------------------------------

    def conflicts(self) -> list[PickRecord]:
        """Dispatches where the chosen task has data in the refresh bank
        (these are exactly the quanta that can suffer refresh stalls)."""
        return [r for r in self.records if r.conflict]

    def conflict_free_fraction(self) -> float:
        if not self.records:
            return 0.0
        return 1.0 - len(self.conflicts()) / len(self.records)

    def quanta(self) -> list[int]:
        return sorted({r.time for r in self.records})

    # -- rendering -----------------------------------------------------------------

    def timeline(self, max_quanta: int = 32) -> str:
        """ASCII timeline: one row per core plus the refresh row, one
        column per quantum (Figure 9 in text form).  Conflicting
        dispatches are marked with ``*``."""
        times = self.quanta()[:max_quanta]
        if not times:
            return "(no records)"
        num_cores = len(self.system.cores)
        # Tasks are labelled t<n> with n positional within this system, so
        # identical benchmark copies stay distinguishable.
        task_labels = {
            task.task_id: f"t{i}" for i, task in enumerate(self.system.tasks)
        }
        width = max(len(label) for label in task_labels.values()) + 2

        def cell(text: str) -> str:
            return text.rjust(width)

        header = cell("q#") + "".join(cell(str(i)) for i in range(len(times)))
        lines = [header]
        by_key = {(r.time, r.core_id): r for r in self.records}
        for core in range(num_cores):
            row = [cell(f"c{core}")]
            for t in times:
                record = by_key.get((t, core))
                if record is None or record.task_id is None:
                    row.append(cell("-"))
                else:
                    mark = "*" if record.conflict else ""
                    row.append(cell(task_labels.get(record.task_id, "??") + mark))
            lines.append("".join(row))
        refresh_row = [cell("ref")]
        for t in times:
            any_record = next((r for r in self.records if r.time == t), None)
            bank = any_record.refresh_bank if any_record else None
            refresh_row.append(cell(f"b{bank}" if bank is not None else "?"))
        lines.append("".join(refresh_row))
        lines.append("(* = task has data in the bank being refreshed)")
        return "\n".join(lines)
