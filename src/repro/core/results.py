"""Result containers produced by a simulation run.

Both containers round-trip losslessly through plain JSON dicts
(``to_dict`` / ``from_dict``) so results can live in the on-disk sweep
cache and cross process boundaries; equality after a round trip is exact
(JSON preserves float bit patterns via shortest-repr).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.core.metrics import harmonic_mean
from repro.dram.power import EnergyBreakdown
from repro.errors import ConfigError
from repro.telemetry.timeseries import Timeseries

#: Version tag for the serialized result layout.  Bump whenever a field is
#: added/removed/renamed so stale disk-cache entries are recomputed.
RESULT_SCHEMA = 4


@dataclass
class TaskResult:
    """Frozen snapshot of one task's performance."""

    task_id: int
    name: str
    instructions: int
    scheduled_cycles: int
    quanta: int
    reads_completed: int
    avg_read_latency_cycles: float
    refresh_stall_cycles: int

    @property
    def ipc(self) -> float:
        if self.scheduled_cycles == 0:
            return 0.0
        return self.instructions / self.scheduled_cycles

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "TaskResult":
        from repro.serialize import dataclass_from_dict

        return dataclass_from_dict(cls, data)


@dataclass
class RunResult:
    """Everything measured during one simulation run."""

    scenario: str
    workload: str
    density_gbit: int
    trefw_ms: float
    simulated_cycles: int
    tasks: list[TaskResult] = field(default_factory=list)
    reads_completed: int = 0
    writes_completed: int = 0
    avg_read_latency_cycles: float = 0.0
    cpu_per_mem_cycle: int = 4
    row_hit_rate: float = 0.0
    refresh_commands: int = 0
    refresh_stall_cycles: int = 0
    refresh_stalled_reads: int = 0
    context_switches: int = 0
    scheduler_clean_picks: int = 0
    scheduler_fallback_picks: int = 0
    bus_utilization: float = 0.0
    #: DRAM energy estimate over the measured interval (None when the
    #: result was constructed directly, e.g. in unit tests).
    energy: EnergyBreakdown | None = None
    #: Windowed samples (IPC, queue depth, refresh-stall fraction) when
    #: the spec requested them (``RunSpec.sample_windows``), else None.
    timeseries: Timeseries | None = None
    #: Invariant-monitor findings (``repro.obs.monitors``) when the run was
    #: monitored — an empty list means "monitored, clean".  ``None`` means
    #: the run was not monitored, and the field is then omitted from
    #: ``to_dict`` entirely so unmonitored result JSON is byte-identical
    #: to the pre-monitor layout.
    monitor_violations: list | None = None
    #: Trace id of the traced service submission that produced this
    #: result (``repro.tracing``).  ``None`` — the untraced default —
    #: is omitted from ``to_dict`` so cached result JSON and content
    #: hashes are byte-identical with and without the tracing layer.
    trace_id: str | None = None

    @property
    def hmean_ipc(self) -> float:
        """Harmonic mean of per-task IPC — the paper's headline metric."""
        return harmonic_mean([t.ipc for t in self.tasks])

    @property
    def avg_read_latency_mem_cycles(self) -> float:
        """Average read latency in memory-bus cycles (Figure 11 units)."""
        return self.avg_read_latency_cycles / self.cpu_per_mem_cycle

    @property
    def refresh_stall_fraction(self) -> float:
        """Fraction of completed reads whose start was delayed by refresh."""
        if self.reads_completed == 0:
            return 0.0
        return self.refresh_stalled_reads / self.reads_completed

    def task_ipc(self, name: str) -> list[float]:
        return [t.ipc for t in self.tasks if t.name == name]

    def to_dict(self) -> dict:
        """Canonical JSON-able view (inverse of :meth:`from_dict`)."""
        data = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name
            not in ("tasks", "energy", "timeseries", "monitor_violations",
                    "trace_id")
        }
        data["tasks"] = [t.to_dict() for t in self.tasks]
        data["energy"] = self.energy.to_dict() if self.energy is not None else None
        data["timeseries"] = (
            self.timeseries.to_dict() if self.timeseries is not None else None
        )
        if self.monitor_violations is not None:
            data["monitor_violations"] = [
                v.to_dict() for v in self.monitor_violations
            ]
        if self.trace_id is not None:
            data["trace_id"] = self.trace_id
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        from repro.serialize import dataclass_from_dict

        if not isinstance(data, dict):
            raise ConfigError(
                f"RunResult: expected a dict, got {type(data).__name__}"
            )
        data = dict(data)
        try:
            data["tasks"] = [TaskResult.from_dict(t) for t in data.pop("tasks", [])]
            energy = data.pop("energy", None)
            data["energy"] = (
                EnergyBreakdown.from_dict(energy) if energy is not None else None
            )
            timeseries = data.pop("timeseries", None)
            data["timeseries"] = (
                Timeseries.from_dict(timeseries) if timeseries is not None else None
            )
            violations = data.pop("monitor_violations", None)
            if violations is not None:
                from repro.obs.monitors import MonitorViolation

                violations = [MonitorViolation.from_dict(v) for v in violations]
            data["monitor_violations"] = violations
        except (TypeError, AttributeError) as exc:
            raise ConfigError(f"RunResult: malformed payload ({exc})") from None
        return dataclass_from_dict(cls, data)

    def summary(self) -> str:
        lines = [
            f"scenario={self.scenario} workload={self.workload} "
            f"density={self.density_gbit}Gb tREFW={self.trefw_ms}ms",
            f"  hmean IPC          : {self.hmean_ipc:.4f}",
            f"  avg read latency   : {self.avg_read_latency_mem_cycles:.1f} mem cycles",
            f"  row hit rate       : {self.row_hit_rate:.2%}",
            f"  reads / writes     : {self.reads_completed} / {self.writes_completed}",
            f"  refresh commands   : {self.refresh_commands}",
            f"  refresh-stalled rd : {self.refresh_stalled_reads} "
            f"({self.refresh_stall_fraction:.2%})",
        ]
        return "\n".join(lines)
