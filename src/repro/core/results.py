"""Result containers produced by a simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import harmonic_mean


@dataclass
class TaskResult:
    """Frozen snapshot of one task's performance."""

    task_id: int
    name: str
    instructions: int
    scheduled_cycles: int
    quanta: int
    reads_completed: int
    avg_read_latency_cycles: float
    refresh_stall_cycles: int

    @property
    def ipc(self) -> float:
        if self.scheduled_cycles == 0:
            return 0.0
        return self.instructions / self.scheduled_cycles


@dataclass
class RunResult:
    """Everything measured during one simulation run."""

    scenario: str
    workload: str
    density_gbit: int
    trefw_ms: float
    simulated_cycles: int
    tasks: list[TaskResult] = field(default_factory=list)
    reads_completed: int = 0
    writes_completed: int = 0
    avg_read_latency_cycles: float = 0.0
    cpu_per_mem_cycle: int = 4
    row_hit_rate: float = 0.0
    refresh_commands: int = 0
    refresh_stall_cycles: int = 0
    refresh_stalled_reads: int = 0
    context_switches: int = 0
    scheduler_clean_picks: int = 0
    scheduler_fallback_picks: int = 0
    bus_utilization: float = 0.0
    #: DRAM energy estimate over the measured interval (None when the
    #: result was constructed directly, e.g. in unit tests).
    energy: object = None

    @property
    def hmean_ipc(self) -> float:
        """Harmonic mean of per-task IPC — the paper's headline metric."""
        return harmonic_mean([t.ipc for t in self.tasks])

    @property
    def avg_read_latency_mem_cycles(self) -> float:
        """Average read latency in memory-bus cycles (Figure 11 units)."""
        return self.avg_read_latency_cycles / self.cpu_per_mem_cycle

    @property
    def refresh_stall_fraction(self) -> float:
        """Fraction of completed reads whose start was delayed by refresh."""
        if self.reads_completed == 0:
            return 0.0
        return self.refresh_stalled_reads / self.reads_completed

    def task_ipc(self, name: str) -> list[float]:
        return [t.ipc for t in self.tasks if t.name == name]

    def summary(self) -> str:
        lines = [
            f"scenario={self.scenario} workload={self.workload} "
            f"density={self.density_gbit}Gb tREFW={self.trefw_ms}ms",
            f"  hmean IPC          : {self.hmean_ipc:.4f}",
            f"  avg read latency   : {self.avg_read_latency_mem_cycles:.1f} mem cycles",
            f"  row hit rate       : {self.row_hit_rate:.2%}",
            f"  reads / writes     : {self.reads_completed} / {self.writes_completed}",
            f"  refresh commands   : {self.refresh_commands}",
            f"  refresh-stalled rd : {self.refresh_stalled_reads} "
            f"({self.refresh_stall_fraction:.2%})",
        ]
        return "\n".join(lines)
